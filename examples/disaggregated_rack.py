#!/usr/bin/env python3
"""Prefetching in a disaggregated-memory rack (§4, Figure 6 left).

Four compute nodes run four different applications against local memories
sized at half their footprints, fetching misses from the remote pool over
a ~3 us fabric.  The script compares:

- no prefetching;
- a decentralized Hebbian prefetcher per node (the paper's design), with
  its landing delay derived from the Hebbian network's modeled inference
  latency;
- the same, but with the LSTM's modeled >150 us inference — its
  prefetches land too late to matter (§5.2 timeliness);
- one switch-centralized model fed all nodes' misses interleaved.

Run:  python examples/disaggregated_rack.py
"""

from __future__ import annotations

from repro.harness.fig6 import Fig6Config, modeled_inference_ns, run_disaggregated
from repro.harness.reporting import print_table


def main() -> None:
    config = Fig6Config(n_nodes=4, accesses_per_node=8_000, seed=0)
    print("modeled inference latency: "
          f"hebbian {modeled_inference_ns('hebbian') / 1000:.1f} us, "
          f"lstm {modeled_inference_ns('lstm') / 1000:.1f} us")
    comparison = run_disaggregated(config)

    print_table(
        ["configuration", "mean access ns", "total misses", "speedup"],
        [
            ["no prefetch", comparison.baseline.mean_access_ns,
             comparison.baseline.total_misses, 1.0],
            [f"per-node hebbian (lands after "
             f"{comparison.hebbian_delay_accesses} accesses)",
             comparison.decentralized_hebbian.mean_access_ns,
             comparison.decentralized_hebbian.total_misses,
             comparison.hebbian_speedup],
            [f"per-node lstm (lands after "
             f"{comparison.lstm_delay_accesses} accesses)",
             comparison.decentralized_lstm.mean_access_ns,
             comparison.decentralized_lstm.total_misses,
             comparison.lstm_speedup],
            ["switch-centralized hebbian",
             comparison.centralized_hebbian.mean_access_ns,
             comparison.centralized_hebbian.total_misses,
             comparison.centralized_speedup],
        ],
        title="Disaggregated rack: placement and timeliness")

    print("\nPer-node breakdown (decentralized hebbian):")
    print_table(
        ["node", "application", "miss rate", "mean access ns"],
        [[n.node_id, n.trace_name, n.miss_rate, n.mean_access_ns]
         for n in comparison.decentralized_hebbian.nodes])


if __name__ == "__main__":
    main()
