#!/usr/bin/env python3
"""Catastrophic interference and hippocampal replay (the Figure 3 story).

Trains the LSTM prefetch model online on one access pattern, then switches
to a different one, and prints the model's confidence on both patterns as
learning progresses — first without replay (the old pattern is forgotten),
then with interleaved replay at a 0.1x learning rate (it survives).

Run:  python examples/continual_learning.py
"""

from __future__ import annotations

from repro.harness.interference import InterferenceConfig, run_interference
from repro.harness.models import experiment_lstm


def ascii_curve(label: str, steps: list[int], values: list[float],
                width: int = 40) -> None:
    print(f"  {label}")
    for step, value in zip(steps, values):
        bar = "#" * int(round(value * width))
        print(f"    step {step:5d}  {value:5.2f}  {bar}")


def main() -> None:
    config = InterferenceConfig(n_accesses=1000, working_set=50,
                                probe_len=100, probe_every=250, seed=0)

    for replay in (False, True):
        arm = "WITH interleaved replay (0.1x lr)" if replay else "NO replay"
        run = run_interference(lambda v: experiment_lstm(v, seed=0),
                               "stride", "pointer_chase",
                               replay=replay, config=config)
        print(f"\n=== {arm} ===")
        print("Confidence on the OLD pattern (stride) — the paper's red curve:")
        ascii_curve("old", *run.curve_a.as_arrays())
        summary = run.summary
        print(f"  old pattern: {summary.conf_a_before:.2f} after learning it "
              f"-> {summary.conf_a_after:.2f} after learning the new one "
              f"(forgetting {summary.forgetting:+.2f})")
        print(f"  new pattern learned to {summary.conf_b_after:.2f}")
        if replay:
            print(f"  replayed {run.replayed_pairs} stored transitions from "
                  "the hippocampal store")


if __name__ == "__main__":
    main()
