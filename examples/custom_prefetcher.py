#!/usr/bin/env python3
"""Writing your own prefetch policy against the library's interfaces.

Implements a tiny "history Markov" policy from scratch (any object with a
``name`` and an ``on_miss(event) -> list[pages]`` method is a prefetcher),
then races it against the library's baselines and the CLS prefetcher on a
workload that alternates phases — also demonstrating the replay machinery
keeping the CLS prefetcher sharp when an old phase returns.

Run:  python examples/custom_prefetcher.py
"""

from __future__ import annotations

from collections import defaultdict

from repro.baselines import MarkovPrefetcher, NextLinePrefetcher
from repro.core import CLSPrefetcher, CLSPrefetcherConfig
from repro.harness.models import experiment_hebbian_config
from repro.harness.reporting import print_table
from repro.memsim import MissEvent, SimConfig, baseline_misses, simulate
from repro.patterns import PatternSpec, Trace, pointer_chase, stride


class PairHistoryPrefetcher:
    """Predicts the page that followed the last (prev, cur) page pair.

    A second-order correlation table — about the simplest policy that can
    track pointer chases, written here exactly as a library user would.
    """

    name = "pair-history"

    def __init__(self, degree: int = 2):
        self.degree = degree
        self._table: dict[tuple[int, int], dict[int, int]] = defaultdict(dict)
        self._prev: tuple[int, int] | None = None

    def on_miss(self, event: MissEvent) -> list[int]:
        if self._prev is not None:
            successors = self._table[self._prev]
            successors[event.page] = successors.get(event.page, 0) + 1
            first = self._prev[1]
            self._prev = (first, event.page)
        else:
            self._prev = (event.page, event.page)
        ranked = sorted(self._table.get(self._prev, {}).items(),
                        key=lambda kv: kv[1], reverse=True)
        return [page for page, _ in ranked[: self.degree]]


def phased_trace() -> Trace:
    """pointer-chase -> stride -> pointer-chase (the same chase returns)."""
    chase = pointer_chase(PatternSpec(n=2_500, working_set=150,
                                      element_size=4096, seed=7))
    scan = stride(PatternSpec(n=2_500, working_set=150, element_size=4096,
                              base=0x9000_0000, seed=8))
    return chase.concat(scan).concat(chase)


def main() -> None:
    trace = phased_trace()
    sim_config = SimConfig(memory_fraction=0.4)
    baseline = baseline_misses(trace, sim_config)

    contenders = [
        NextLinePrefetcher(degree=2),
        MarkovPrefetcher(degree=2),
        PairHistoryPrefetcher(degree=2),
        CLSPrefetcher(CLSPrefetcherConfig(
            model="hebbian", vocab_size=512, encoder="page",
            hebbian=experiment_hebbian_config(512),
            prefetch_length=2, prefetch_width=2, min_confidence=0.25,
            replay_policy="full", replay_per_step=2)),
    ]

    rows = []
    for prefetcher in contenders:
        run = simulate(trace, prefetcher, sim_config)
        rows.append([prefetcher.name, run.demand_misses,
                     run.percent_misses_removed(baseline),
                     run.stats.prefetch_accuracy])

    print(f"phased trace: {len(trace)} accesses "
          f"({trace.footprint_pages()} pages), baseline misses "
          f"{baseline.demand_misses}")
    print_table(
        ["prefetcher", "demand misses", "misses removed %", "accuracy"],
        rows,
        title="Custom policy vs library baselines vs CLS prefetcher")
    print(
        "\nNote: on a small, perfectly repeating structure, exact-"
        "memorization tables (markov / pair-history) are hard to beat —\n"
        "their state grows with the footprint, though, while the CLS "
        "model's size is fixed (Table 2) and its learned weights survive\n"
        "phase changes via replay.  That trade is the paper's point, not "
        "winning this microbenchmark.")


if __name__ == "__main__":
    main()
