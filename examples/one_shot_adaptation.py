#!/usr/bin/env python3
"""One-shot adaptation via hippocampal recall (Figure 4's fast path).

The workload switches from one pointer structure to a brand-new one
mid-trace.  Three prefetchers race through it:

- the plain Hebbian prefetcher (the slow "neocortical" learner);
- the same plus the hippocampal recall memory, which memorizes each
  transition in ONE shot and answers from it while the slow learner is
  still consolidating;
- the LSTM baseline.

The windowed miss-removal curves after the switch show the
complementary-learning-systems story directly: recall adapts within the
first window, gradient learners need several windows — and then win
steady state.  The brain runs both; so does the CLS prefetcher.

Run:  python examples/one_shot_adaptation.py
"""

from __future__ import annotations

from collections import defaultdict

from repro.harness.ablations import ablation_adaptation
from repro.harness.reporting import print_table


def bar(value: float, scale: float = 0.8) -> str:
    return "#" * max(0, int(round(value * scale)))


def main() -> None:
    rows = ablation_adaptation(n_per_phase=3_000, window=600, seed=0)
    curves: dict[str, list[float]] = defaultdict(list)
    for row in rows:
        curves[row["model"]].append(row["misses_removed_pct"])

    print("Windowed % of misses removed after the phase switch "
          "(600-access windows):\n")
    n_windows = len(next(iter(curves.values())))
    for window in range(n_windows):
        print(f"window {window}:")
        for model, values in curves.items():
            print(f"  {model:15s} {values[window]:5.1f}  {bar(values[window])}")
        print()

    print_table(
        ["model", "first window", "last window"],
        [[model, values[0], values[-1]] for model, values in curves.items()],
        title="Immediate vs consolidated adaptation")

    print("\nThe recall path (a one-shot Willshaw pattern-completion memory)"
          "\nis already serving useful prefetches in the first window; the"
          "\ngradient learners need consolidation time, then win steady"
          "\nstate — Figure 4's fast/slow complementarity.")


if __name__ == "__main__":
    main()
