#!/usr/bin/env python3
"""Quickstart: prefetch a pointer-chasing workload with the CLS prefetcher.

Builds a linked-list traversal trace (the pattern classic stride
prefetchers cannot handle), runs it through the paged-memory simulator
with memory sized at 50% of the trace footprint (the paper's Figure 5
setup), and compares no prefetching, a classic stride prefetcher, and the
hippocampal-neocortical (CLS) prefetcher with its sparse Hebbian learner.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.baselines import StridePrefetcher
from repro.core import CLSPrefetcher, CLSPrefetcherConfig
from repro.harness.models import experiment_hebbian_config
from repro.harness.reporting import print_table
from repro.memsim import SimConfig, baseline_misses, simulate
from repro.patterns import PatternSpec, pointer_chase


def main() -> None:
    # A pseudorandom linked-list traversal over 200 pages, revisited many
    # times — learnable structure with no arithmetic stride.
    trace = pointer_chase(PatternSpec(n=8_000, working_set=200,
                                      element_size=4096, seed=42))
    sim_config = SimConfig(memory_fraction=0.5)

    baseline = baseline_misses(trace, sim_config)
    stride_run = simulate(trace, StridePrefetcher(degree=2), sim_config)
    cls_run = simulate(
        trace,
        CLSPrefetcher(CLSPrefetcherConfig(
            model="hebbian",          # the paper's proposal; try "lstm" too
            vocab_size=512,
            encoder="page",           # pointer structures favour identity
                                      # encoding over deltas (§5.3)
            prefetch_length=2,        # predict two misses ahead (§5.2)
            prefetch_width=2,         # two candidates per step
            min_confidence=0.25,      # only prefetch when confident (§5.2)
            hebbian=experiment_hebbian_config(512),  # deployment tuning
        )),
        sim_config,
    )

    print(f"trace: {trace.name}, {len(trace)} accesses, "
          f"{trace.footprint_pages()} pages footprint, "
          f"memory = {baseline.capacity_pages} pages")
    print_table(
        ["prefetcher", "demand misses", "misses removed %",
         "prefetch accuracy"],
        [
            ["none", baseline.demand_misses, 0.0, 0.0],
            ["stride (classic)", stride_run.demand_misses,
             stride_run.percent_misses_removed(baseline),
             stride_run.stats.prefetch_accuracy],
            ["cls-hebbian", cls_run.demand_misses,
             cls_run.percent_misses_removed(baseline),
             cls_run.stats.prefetch_accuracy],
        ],
        title="Pointer chase: classic rules vs online Hebbian learning")
    print("\nThe stride prefetcher finds nothing to prefetch; the CLS "
          "prefetcher learns the traversal online and removes a large "
          "share of misses.")


if __name__ == "__main__":
    main()
