#!/usr/bin/env python3
"""Prefetching for CPU-GPU unified virtual memory (§4, Figure 6 right).

Simulates SIMT streams advancing in lockstep against a shared device
memory: all far-faults raised in a round are serviced as one batch (the
UVM driver's behaviour), and a single CPU-side prefetcher observes every
fault.  The script shows the two §4 design conclusions for this system:

1. isolating the interleaved access streams (per-stream model state in
   the driver) beats one shared model;
2. this system is throughput-bound, so *prefetch width* (§5.2) keeps
   buying speedup — unlike the latency-bound disaggregated rack.

Run:  python examples/uvm_gpu.py
"""

from __future__ import annotations

from repro.harness.fig6 import Fig6Config, run_uvm
from repro.harness.reporting import print_table


def main() -> None:
    config = Fig6Config(n_streams=8, accesses_per_stream=2_500, seed=0)
    comparison = run_uvm(config, widths=(1, 2, 4))

    rows = [
        ["no prefetch", comparison.baseline.total_time_ns / 1e6,
         comparison.baseline.total_faults,
         comparison.baseline.throughput_accesses_per_us, 1.0],
        ["shared model, width 1",
         comparison.shared.total_time_ns / 1e6,
         comparison.shared.total_faults,
         comparison.shared.throughput_accesses_per_us,
         comparison.shared.speedup_over(comparison.baseline)],
    ]
    for width, result in sorted(comparison.per_stream_by_width.items()):
        rows.append([f"per-stream model, width {width}",
                     result.total_time_ns / 1e6,
                     result.total_faults,
                     result.throughput_accesses_per_us,
                     result.speedup_over(comparison.baseline)])

    print_table(
        ["driver prefetcher", "total time ms", "far faults",
         "accesses/us", "speedup"],
        rows,
        title=f"UVM with {config.n_streams} SIMT streams "
              "(device memory = 50% of footprint)")

    print("\nWider prefetch output removes more faults per batch — the "
          "throughput-optimized operating point §4 prescribes for UVM.")


if __name__ == "__main__":
    main()
