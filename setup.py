"""Legacy setup shim.

The execution environment has no network and no ``wheel`` package, so the
PEP 517 editable path (which shells out to ``bdist_wheel``) fails.  This
shim lets ``pip install -e . --no-use-pep517`` (and plain
``pip install -e .`` on older pips) work offline.  All real metadata lives
in ``pyproject.toml``.
"""

from setuptools import setup

setup()
