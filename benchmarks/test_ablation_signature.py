"""A11 (§5.3): input-representation scaling — one-hot vs signature codes.

§5.3: one-hot/embedding input layers "can become expensive" and compute
"grows linearly with the number of embedding vectors".  Signature codes
(k active bits of a fixed-width hash) make the Hebbian input layer's size
independent of the vocabulary.  This ablation measures the trade at two
vocabulary sizes: parameters saved vs accuracy given up.
"""

from __future__ import annotations

import numpy as np

from repro.harness.reporting import print_table
from repro.nn.costs import hebbian_parameter_count
from repro.nn.hebbian import HebbianConfig, SparseHebbianNetwork


def run_comparison(seed: int = 0) -> list[dict]:
    rng = np.random.default_rng(2)
    cycle = [int(x) for x in rng.permutation(100)]
    rows = []
    for vocab in (128, 4096):
        for mode in ("onehot", "signature"):
            extra = ({"signature_dim": 256, "signature_k": 8,
                      "recurrent_strength": 0.1}
                     if mode == "signature" else {})
            config = HebbianConfig(vocab_size=vocab, hidden_dim=500,
                                   input_mode=mode, seed=seed, **extra)
            net = SparseHebbianNetwork(config)
            for _ in range(12):
                for class_id in cycle:
                    net.step(class_id)
            rows.append({
                "vocab": vocab,
                "input_mode": mode,
                "parameters": hebbian_parameter_count(config),
                "confidence": net.evaluate_sequence(cycle * 2),
            })
    return rows


def test_ablation_signature_inputs(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print_table(
        ["vocab", "input mode", "parameters", "100-cycle confidence"],
        [[r["vocab"], r["input_mode"], r["parameters"], r["confidence"]]
         for r in rows],
        title="A11 (§5.3) — one-hot vs signature input codes")

    def row(vocab, mode):
        return next(r for r in rows
                    if (r["vocab"], r["input_mode"]) == (vocab, mode))

    # at large vocab, signatures cut parameters substantially...
    assert (row(4096, "signature")["parameters"]
            < 0.6 * row(4096, "onehot")["parameters"])
    # ...while still learning the pattern (at reduced confidence)
    assert row(4096, "signature")["confidence"] > 0.3
    assert row(128, "signature")["confidence"] > 0.4
    # one-hot remains the accuracy champion where it is affordable
    assert row(128, "onehot")["confidence"] > row(128, "signature")["confidence"]
