"""PR 4 perf smoke: span-batched simulation engine + trace cache.

Measures and records in ``BENCH_PR4.json`` (repo root):

1. **``simulate()`` throughput** for null / stride / cls-hebbian
   prefetchers across the Figure 5 applications — the loops PR 4
   span-batches (bulk hit-run resolution on the array-backed PageCache,
   vectorized next-miss search).  The "before" numbers are commit
   ``4d28496`` (PR 3 head) measured by *paired alternating* subprocess
   runs on the same machine: base and PR 4 runs interleaved, best of 9
   per side, because this machine's throughput swings 30-60% between
   identical back-to-back runs and sequential before/after timing is
   meaningless at that noise level.
2. **Span-length distribution** per workload (``span_length_stats``) —
   the mean hit-run length is the whole story of where batching pays
   (resnet spans ~144) and where it cannot (graph500 spans ~8 with
   miss runs ~1.2; see EXPERIMENTS.md).
3. **Trace-materialization cache** — cold-start parity (cached and
   uncached materialization produce identical traces) and the warm-start
   speedup of serving a resnet trace from ``.npz`` instead of
   regenerating it.

The demand-miss count of every cell is asserted **exactly**: the batched
engine claims bit-identity with the scalar reference engine, so the
simulated outcome must not move at all.  Throughput assertions are
deliberately loose floors (shared CI machines vary, and the stored
"before" numbers come from a different machine than CI); the honest
same-machine paired numbers live in the JSON, including the workloads
where batching *loses* (graph500, stride-resnet) — kept visible rather
than cherry-picked away.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.baselines.classic import StridePrefetcher
from repro.core.cls_prefetcher import CLSPrefetcher, CLSPrefetcherConfig
from repro.harness.trace_cache import configure, materialize
from repro.memsim.prefetcher import NullPrefetcher
from repro.memsim.simulator import SimConfig, simulate, span_length_stats
from repro.patterns.applications import AppSpec, generate_application

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_PR4.json"

SIM_TRACE_N = 200_000
SEED = 1

#: Pre-PR 4 throughput (M accesses/s) at commit 4d28496, from paired
#: alternating runs (best of 9 per side, n=200k seed=1, delay=4).
BEFORE_M_PER_S = {
    "null-resnet": 1.193, "null-pagerank": 2.214,
    "null-mcf": 1.560, "null-graph500": 1.379,
    "stride-resnet": 0.357, "stride-pagerank": 2.071,
    "stride-mcf": 1.513, "stride-graph500": 1.181,
    "cls-resnet": 0.037, "cls-pagerank": 0.455,
}

#: Demand misses pinned exactly — PR 4 claims bit-identity, not mere
#: statistical equivalence (same numbers asserted against the scalar
#: engine in tests/memsim/test_simulator_batched.py).
EXPECTED_DEMAND_MISSES = {
    "null-resnet": 94_304, "null-pagerank": 1_953,
    "null-mcf": 3_125, "null-graph500": 21_265,
    "stride-resnet": 92_921, "stride-pagerank": 1_492,
    "stride-mcf": 2_305, "stride-graph500": 20_802,
    "cls-resnet": 89_118, "cls-pagerank": 1_803,
}

_APPS = ("resnet", "pagerank", "mcf", "graph500")


def _make_prefetcher(family: str):
    if family == "null":
        return NullPrefetcher()
    if family == "stride":
        return StridePrefetcher()
    # Same CLS config the bit-identity suite pins (vocab 64, miss-history
    # training, seed 3) — and the one the paired "before" runs measured.
    return CLSPrefetcher(CLSPrefetcherConfig(
        model="hebbian", vocab_size=64, observe_hits=False, seed=3))


def _cells():
    for app in _APPS:
        yield f"null-{app}", "null", app
    for app in _APPS:
        yield f"stride-{app}", "stride", app
    # CLS on the two apps where inference is not the entire runtime.
    yield "cls-resnet", "cls", "resnet"
    yield "cls-pagerank", "cls", "pagerank"


def bench_simulate(traces: dict) -> tuple[dict, dict[str, int]]:
    sim_cfg = SimConfig(memory_fraction=0.5, prefetch_delay_accesses=4)
    out: dict = {"protocol": "best of 3, fresh prefetcher per run; before = "
                            "4d28496 via paired alternating runs (best of 9)",
                 "sim": "memory_fraction=0.5 delay=4",
                 "traces": f"n={SIM_TRACE_N} seed={SEED}"}
    misses: dict[str, int] = {}
    for name, family, app in _cells():
        trace = traces[app]
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            result = simulate(trace, _make_prefetcher(family), sim_cfg)
            best = min(best, time.perf_counter() - t0)
        misses[name] = result.demand_misses
        after = len(trace) / best / 1e6
        before = BEFORE_M_PER_S[name]
        out[name] = {
            "before_m_accesses_per_s": before,
            "after_m_accesses_per_s": round(after, 4),
            "speedup": round(after / before, 2),
            "demand_misses": result.demand_misses,
        }
    return out, misses


def bench_spans(traces: dict) -> list[dict]:
    sim_cfg = SimConfig(memory_fraction=0.5, prefetch_delay_accesses=4)
    rows = []
    for app in _APPS:
        rows.append(span_length_stats(traces[app], NullPrefetcher(), sim_cfg))
    rows.append(span_length_stats(traces["resnet"], StridePrefetcher(),
                                  sim_cfg))
    for row in rows:
        row["mean_span"] = round(row["mean_span"], 1)
    return rows


def bench_trace_cache(tmp_path: Path) -> dict:
    # memcached is the costliest generator in the suite (~0.7 s at this
    # scale vs ~20 ms for resnet) and the ablation-encoding grid
    # regenerates it per cell — the exact waste the cache removes.
    spec = AppSpec(n=SIM_TRACE_N, seed=SEED)
    t0 = time.perf_counter()
    uncached = generate_application("memcached", spec)
    generate_s = time.perf_counter() - t0

    previous = configure(tmp_path)
    try:
        cold = materialize("memcached", spec)  # generates + stores
        best_warm = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            warm = materialize("memcached", spec)
            best_warm = min(best_warm, time.perf_counter() - t0)
    finally:
        configure(previous)

    # Cold-start parity: the cache never changes what a trace contains.
    for a, b in ((cold, uncached), (warm, uncached)):
        np.testing.assert_array_equal(a.addresses, b.addresses)
        np.testing.assert_array_equal(a.timestamps, b.timestamps)
    return {
        "trace": f"memcached n={SIM_TRACE_N} seed={SEED}",
        "generate_ms": round(generate_s * 1e3, 2),
        "warm_load_ms": round(best_warm * 1e3, 2),
        "warm_speedup": round(generate_s / best_warm, 2),
        "cold_start_parity": "identical addresses+timestamps",
    }


def test_perf_simulate_batched(tmp_path):
    traces = {app: generate_application(app, AppSpec(n=SIM_TRACE_N, seed=SEED))
              for app in _APPS}
    sim, misses = bench_simulate(traces)
    spans = bench_spans(traces)
    cache = bench_trace_cache(tmp_path)

    report = {
        "pr": 4,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "before_commit": "4d28496 (PR 3 head), same machine, paired "
                         "alternating runs",
        "simulate": sim,
        "span_lengths": spans,
        "trace_cache": cache,
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(json.dumps(report, indent=2))
    print(f"\nwrote {BENCH_PATH}")

    # Bit-identity guard: the batched engine must simulate the exact
    # outcome the scalar reference engine does, on every cell.
    assert misses == EXPECTED_DEMAND_MISSES

    # Loose floors only — the honest paired numbers live in the JSON.
    # Where batching pays (long spans): well above 1x even under noise.
    assert sim["null-resnet"]["speedup"] >= 1.8
    assert sim["null-pagerank"]["speedup"] >= 1.8
    assert sim["stride-pagerank"]["speedup"] >= 1.3
    assert sim["stride-mcf"]["speedup"] >= 1.3
    # Where it cannot (short spans / always-full queue): bounded loss.
    assert sim["null-graph500"]["speedup"] >= 0.5
    assert sim["stride-resnet"]["speedup"] >= 0.3
    assert sim["stride-graph500"]["speedup"] >= 0.3
    # Trace cache: warm load must beat regeneration.
    assert cache["warm_speedup"] >= 2.0
