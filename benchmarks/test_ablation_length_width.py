"""A2 (§5.2): prefetch length/width vs timeliness.

§5.2: "if the time between misses is less than the inference latency,
even a perfect model will always prefetch too late ... a more effective
method is to predict a sequence of misses further into the future."
This ablation sweeps (length, width) under two landing delays.
"""

from __future__ import annotations

from repro.harness.ablations import ablation_length_width
from repro.harness.reporting import print_table


def test_ablation_length_width_timeliness(benchmark):
    rows = benchmark.pedantic(
        lambda: ablation_length_width(n_accesses=10_000,
                                      lengths=(1, 2, 4), widths=(1, 2, 4),
                                      delays=(0, 4)),
        rounds=1, iterations=1)
    print_table(
        ["delay", "length", "width", "misses removed %", "accuracy"],
        [[r["delay_accesses"], r["length"], r["width"],
          r["misses_removed_pct"], r["prefetch_accuracy"]] for r in rows],
        title="A2 (§5.2) — length/width sweep on pointer_chase")

    def cell(delay, length, width):
        return next(r for r in rows if (r["delay_accesses"], r["length"],
                                        r["width"]) == (delay, length, width))

    # under delay, length-1 prefetching is crippled; longer length recovers
    late_l1 = cell(4, 1, 1)["misses_removed_pct"]
    late_l4 = cell(4, 4, 1)["misses_removed_pct"]
    assert late_l4 > late_l1 + 5.0
    # with no delay, width adds coverage on top of length
    timely_w1 = cell(0, 2, 1)["misses_removed_pct"]
    timely_w4 = cell(0, 2, 4)["misses_removed_pct"]
    assert timely_w4 >= timely_w1 - 1.0
