"""A9 (§5.2): rollout vs direct lag-L prediction, under landing delay.

§5.2's co-design in its sharpest form: rollout prediction's horizon is
limited by inference cost (L inferences per trigger) and collapses once
the landing delay exceeds it; direct lag-L training reaches any horizon
with ONE inference, and with prefetch chaining its coverage is
delay-immune up to L.
"""

from __future__ import annotations

from repro.harness.ablations import ablation_prediction_mode
from repro.harness.reporting import print_table


def test_ablation_prediction_mode(benchmark):
    rows = benchmark.pedantic(ablation_prediction_mode, rounds=1, iterations=1)
    print_table(
        ["delay", "mode", "misses removed %", "accuracy",
         "inferences/trigger"],
        [[r["delay_accesses"], r["mode"], r["misses_removed_pct"],
          r["prefetch_accuracy"], r["inferences_per_trigger"]] for r in rows],
        title="A9 (§5.2) — rollout vs direct multi-step prediction")

    def removed(delay, mode):
        return next(r for r in rows if (r["delay_accesses"], r["mode"])
                    == (delay, mode))["misses_removed_pct"]

    # with no delay, rollout's full window coverage is competitive
    assert removed(0, "rollout L=4") > 20.0
    # at delay 6, rollout (horizon 4) collapses...
    assert removed(6, "rollout L=4") < 5.0
    # ...direct lag-6 still lands prefetches at 1/4 the inference cost...
    assert removed(6, "direct L=6") > 10.0
    # ...and chaining makes coverage delay-immune
    assert removed(6, "direct L=6 + chain") > 25.0
    assert (abs(removed(0, "direct L=6 + chain")
                - removed(6, "direct L=6 + chain")) < 3.0)
