"""PR 10 perf smoke: the online train-and-serve daemon.

Measures and records in ``BENCH_PR10.json`` (repo root):

- **Query latency vs offered load** (threaded): paced open-loop
  submission at several offered events/s; p50/p99 ticket latency per
  load level.  Levels above the box's capacity queue up and report
  honestly large tails — the curve's knee is the finding, not a bug.
- **Swap-pause histogram** (real clock, lockstep): the time the serve
  loop spends inside a hot-swap (fleet release → redeploy → re-acquire),
  with a small fixed-bucket histogram alongside p50/p99.
- **Daemon throughput at 1/100/1000 tenants** (lockstep): events/s
  through the full stage → train → finish pipeline, stacked fleet path.
- **The never-blocks assertion** (threaded): with a trainer deliberately
  sleeping 10 ms per training step (holding no locks), median query
  latency must stay far under one pause — queries are never blocked on
  training.  This is asserted, not just recorded.

Numbers move 20-60% between runs on this class of container (see the
PR 4 bench header); the recorded cells are one honest measurement, not
a best-of distribution.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.serve import FaultPlan, PrefetchService, ServeConfig
from repro.serve.loop import ThreadScheduler

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_PR10.json"

VOCAB = 64
PAUSE_BUCKET_EDGES_MS = (0.1, 0.25, 0.5, 1.0, 2.0, 5.0)


def _addresses(i: int, tenant: int) -> int:
    return 4096 * ((3 * i + tenant) % 64)


def _latency_cell(offered_eps: float, n_events: int,
                  tenants: int = 4) -> dict:
    service = PrefetchService(ServeConfig(vocab_size=VOCAB, seed=1))
    sched = ThreadScheduler()
    for actor in service.actors():
        sched.add(actor)
    sched.start()
    tickets = []
    period = 1.0 / offered_eps
    try:
        start = time.perf_counter()
        for i in range(n_events):
            tenant = i % tenants
            service.submit_miss(tenant, _addresses(i, tenant), i)
            tickets.append(service.query(tenant))
            remaining = start + (i + 1) * period - time.perf_counter()
            if remaining > 0:
                time.sleep(remaining)
        for ticket in tickets:
            assert ticket.wait(60.0), "query unanswered after 60 s"
    finally:
        sched.stop()
    lat = service.latency_percentiles()
    return {"offered_eps": offered_eps, "queries": int(lat["n"]),
            "p50_ms": round(lat["p50_ms"], 4),
            "p99_ms": round(lat["p99_ms"], 4)}


def _swap_pause_cell(n_events: int = 3000, tenants: int = 4) -> dict:
    """Lockstep under the real clock, with a tight staleness backstop so
    swaps happen constantly."""
    service = PrefetchService(
        ServeConfig(vocab_size=VOCAB, max_staleness=8, seed=2))
    for i in range(n_events):
        tenant = i % tenants
        service.submit_miss(tenant, _addresses(i, tenant), i)
        service.serve_once()                # stage
        while service.train_once():
            pass
        service.serve_once()                # finish (swap happens here)
    pauses_ms = np.array(
        [p for t in range(tenants)
         for p in service.lane(t).swap_pauses]) * 1e3
    assert pauses_ms.size > 0, "no swaps happened; tighten max_staleness"
    histogram: dict[str, int] = {}
    lower = 0.0
    for edge in PAUSE_BUCKET_EDGES_MS:
        histogram[f"<{edge}ms"] = int(
            ((pauses_ms >= lower) & (pauses_ms < edge)).sum())
        lower = edge
    histogram[f">={lower}ms"] = int((pauses_ms >= lower).sum())
    return {"swaps": int(pauses_ms.size),
            "p50_ms": round(float(np.percentile(pauses_ms, 50)), 4),
            "p99_ms": round(float(np.percentile(pauses_ms, 99)), 4),
            "histogram": histogram}


def _throughput_cell(tenants: int, events_per_tenant: int) -> dict:
    service = PrefetchService(
        ServeConfig(vocab_size=VOCAB, ring_capacity=100_000,
                    max_batch=256, seed=3))
    events = [(tenant, _addresses(i, tenant), i)
              for i in range(events_per_tenant)
              for tenant in range(tenants)]
    # Steady-state cell: lanes (and the fleet's growth to N slots) are
    # created up front, outside the timed region — cold-tenant
    # onboarding is a different workload than serving throughput.
    for tenant in range(tenants):
        service.lane(tenant)
    start = time.perf_counter()
    for tenant, address, timestamp in events:
        service.submit_miss(tenant, address, timestamp)
    progressed = True
    while progressed:
        progressed = False
        while service.serve_once():
            progressed = True
        while service.train_once():
            progressed = True
    elapsed = time.perf_counter() - start
    assert service.counters()["events_started"] == len(events)
    return {"tenants": tenants,
            "events": len(events),
            "serve_events_per_sec": round(len(events) / elapsed, 1)}


def _never_blocks_cell(n_events: int = 300, tenants: int = 2) -> dict:
    pause_s = 0.01
    service = PrefetchService(
        ServeConfig(vocab_size=VOCAB, seed=4),
        faults=FaultPlan(trainer_pause_s=pause_s))
    sched = ThreadScheduler()
    for actor in service.actors():
        sched.add(actor)
    sched.start()
    try:
        for i in range(n_events):
            tenant = i % tenants
            service.submit_miss(tenant, _addresses(i, tenant), i)
            ticket = service.query(tenant)
            assert ticket.wait(30.0), "query unanswered after 30 s"
    finally:
        sched.stop()
    assert service.counters()["train_steps"] > 0, \
        "trainer never ran; the never-blocks claim would be vacuous"
    lat = service.latency_percentiles()
    # THE claim of this PR: the daemon never blocks a query on training.
    # With every training step sleeping 10 ms, a query path that ever
    # waited on the trainer would show it in the median.
    assert lat["p50_ms"] < pause_s * 1e3, (
        f"median query latency {lat['p50_ms']:.2f} ms inherits the "
        f"{pause_s * 1e3:.0f} ms trainer pause — the query path blocked "
        f"on training")
    return {"trainer_pause_ms": pause_s * 1e3,
            "p50_ms": round(lat["p50_ms"], 4),
            "p99_ms": round(lat["p99_ms"], 4),
            "asserted": "p50 < one trainer pause"}


def test_perf_serve():
    import os

    cpu_count = os.cpu_count() or 1
    report = {
        "pr": 10,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": cpu_count,
        "protocol": (
            "single honest run per cell (no best-of); CLS hebbian "
            f"vocab={VOCAB}, delta encoder, rollout 2x2; latency cells "
            "are threaded open-loop paced submission (levels above box "
            "capacity queue up and report large tails honestly); "
            "swap-pause and throughput cells run the deterministic "
            "lockstep pipeline under the real clock; throughput cells "
            "pre-create lanes (steady-state serving, not cold-tenant "
            "onboarding) and are trainer-bound: background shadow "
            "training is scalar per-event by design; never_blocks is "
            "threaded with a 10 ms sleeping trainer and asserts "
            "p50 < one pause"),
        "serve_latency": [
            _latency_cell(200.0, 400),
            _latency_cell(1000.0, 1500),
            _latency_cell(4000.0, 3000),
        ],
        "swap_pause": _swap_pause_cell(),
        "serve_throughput": [
            _throughput_cell(1, 3000),
            _throughput_cell(100, 30),
            _throughput_cell(1000, 8),
        ],
        "never_blocks": _never_blocks_cell(),
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {BENCH_PATH}")
