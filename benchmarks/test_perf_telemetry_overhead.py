"""PR 5 perf smoke: telemetry overhead on the BENCH_PR4 workloads.

Writes ``BENCH_PR5.json`` (repo root) with two measurements:

1. **Disabled-telemetry overhead** — the PR 5 simulator refactor
   (class-based engines with segment-capable ``run(start, stop)``) vs
   the pre-telemetry engine at commit ``c5dbf70`` (PR 4 head), by
   *paired alternating* subprocess runs: each iteration times the
   baseline tree then this tree on the same freshly-generated trace,
   best-of-N per side.  With no sink configured, ``simulate()`` must run
   one ``[0, n)`` segment through the identical hoisted-locals loops, so
   the acceptance bar is tight: **median overhead ≤ 2%** across the
   BENCH_PR4 simulate() cells.  The baseline tree is a git worktree of
   ``c5dbf70`` (``git worktree add /tmp/base_pr5 c5dbf70``; override the
   location with ``BASE_PR5_WORKTREE``).  Without one, the comparison is
   skipped and the JSON records why — the same-machine requirement can't
   be faked from stored numbers.
2. **Enabled-sink cost** (informational, same tree): windowed
   observation at interval 1000 vs no sink.  Observation runs between
   engine segments, so its cost is per-window accounting, not per-access
   work.

Per-cell numbers stay loose (this machine's throughput swings run to
run); the paired protocol and the median make the headline honest.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.cls_prefetcher import CLSPrefetcher, CLSPrefetcherConfig
from repro.memsim.simulator import SimConfig, simulate
from repro.patterns.applications import AppSpec, generate_application
from repro.telemetry import Telemetry

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_PR5.json"
BASE_WORKTREE = Path(os.environ.get("BASE_PR5_WORKTREE", "/tmp/base_pr5"))

SIM_TRACE_N = 200_000
SEED = 1
ROUNDS = 3   # timed runs inside one subprocess; best-of
PAIRS = 3    # alternating base/new subprocess pairs per cell

#: The BENCH_PR4 simulate() cells (cls limited to the two apps where
#: model inference does not dwarf the simulator loop being measured).
CELLS = [
    ("null-resnet", "null", "resnet"),
    ("null-pagerank", "null", "pagerank"),
    ("null-mcf", "null", "mcf"),
    ("null-graph500", "null", "graph500"),
    ("stride-resnet", "stride", "resnet"),
    ("stride-pagerank", "stride", "pagerank"),
    ("stride-mcf", "stride", "mcf"),
    ("stride-graph500", "stride", "graph500"),
    ("cls-resnet", "cls", "resnet"),
    ("cls-pagerank", "cls", "pagerank"),
]

#: Runs one cell under whichever tree PYTHONPATH selects and prints the
#: best wall time.  Identical source both sides: the baseline simulate()
#: has no ``telemetry`` parameter, so the call stays parameter-free.
_CHILD = """
import sys, time
from repro.baselines.classic import StridePrefetcher
from repro.core.cls_prefetcher import CLSPrefetcher, CLSPrefetcherConfig
from repro.memsim.prefetcher import NullPrefetcher
from repro.memsim.simulator import SimConfig, simulate
from repro.patterns.applications import AppSpec, generate_application

family, app, rounds = sys.argv[1], sys.argv[2], int(sys.argv[3])
trace = generate_application(app, AppSpec(n={n}, seed={seed}))
cfg = SimConfig(memory_fraction=0.5, prefetch_delay_accesses=4)

def make():
    if family == "null":
        return NullPrefetcher()
    if family == "stride":
        return StridePrefetcher()
    return CLSPrefetcher(CLSPrefetcherConfig(
        model="hebbian", vocab_size=64, observe_hits=False, seed=3))

best = float("inf")
misses = None
for _ in range(rounds):
    pf = make()
    t0 = time.perf_counter()
    result = simulate(trace, pf, cfg)
    best = min(best, time.perf_counter() - t0)
    misses = result.demand_misses
print(best, misses)
""".format(n=SIM_TRACE_N, seed=SEED)


def _time_cell(src: Path, family: str, app: str,
               rounds: int) -> tuple[float, int]:
    env = dict(os.environ, PYTHONPATH=str(src))
    out = subprocess.run(
        [sys.executable, "-c", _CHILD, family, app, str(rounds)],
        capture_output=True, text=True, env=env, check=True,
        cwd=REPO_ROOT)
    seconds, misses = out.stdout.split()
    return float(seconds), int(misses)


def bench_disabled_overhead() -> dict:
    base_src = BASE_WORKTREE / "src"
    if not (base_src / "repro" / "__init__.py").is_file():
        return {"skipped": f"no baseline worktree at {BASE_WORKTREE} "
                           "(git worktree add /tmp/base_pr5 c5dbf70)"}
    out: dict = {
        "protocol": f"{PAIRS} alternating base/new subprocess pairs per "
                    f"cell, best of {ROUNDS} runs per subprocess, best "
                    "across pairs per side; baseline = c5dbf70 (PR 4 "
                    "head) worktree",
        "traces": f"n={SIM_TRACE_N} seed={SEED}",
    }
    overheads = []
    for name, family, app in CELLS:
        # Alternating pairs: a slow-machine drift window hits adjacent
        # base and new subprocesses alike instead of one whole side, and
        # the best-across-pairs statistic discards the drift entirely.
        rounds = 2 if name == "cls-resnet" else ROUNDS
        base_s = new_s = float("inf")
        base_misses = new_misses = -1
        for _ in range(PAIRS):
            seconds, base_misses = _time_cell(base_src, family, app, rounds)
            base_s = min(base_s, seconds)
            seconds, new_misses = _time_cell(REPO_ROOT / "src", family, app,
                                             rounds)
            new_s = min(new_s, seconds)
        assert new_misses == base_misses, (name, new_misses, base_misses)
        overhead = 100.0 * (new_s - base_s) / base_s
        overheads.append(overhead)
        out[name] = {
            "base_m_accesses_per_s": round(SIM_TRACE_N / base_s / 1e6, 4),
            "new_m_accesses_per_s": round(SIM_TRACE_N / new_s / 1e6, 4),
            "overhead_pct": round(overhead, 2),
            "demand_misses": new_misses,
        }
    out["median_overhead_pct"] = round(statistics.median(overheads), 2)
    return out


def bench_enabled_cost() -> dict:
    """Same-tree cost of an enabled windowed sink (informational)."""
    trace = generate_application("pagerank",
                                 AppSpec(n=SIM_TRACE_N, seed=SEED))
    cfg = SimConfig(memory_fraction=0.5, prefetch_delay_accesses=4)

    def run(sink: Telemetry | None) -> float:
        best = float("inf")
        for _ in range(ROUNDS):
            pf = CLSPrefetcher(CLSPrefetcherConfig(
                model="hebbian", vocab_size=64, observe_hits=False, seed=3))
            t0 = time.perf_counter()
            simulate(trace, pf, cfg, telemetry=sink)
            best = min(best, time.perf_counter() - t0)
        return best

    off = run(None)
    on = run(Telemetry(interval=1000))
    return {
        "workload": f"cls-pagerank n={SIM_TRACE_N}",
        "interval": 1000,
        "n_windows": SIM_TRACE_N // 1000,
        "off_s": round(off, 4),
        "on_s": round(on, 4),
        "enabled_overhead_pct": round(100.0 * (on - off) / off, 2),
    }


@pytest.mark.benchmark
def test_perf_telemetry_overhead():
    disabled = bench_disabled_overhead()
    enabled = bench_enabled_cost()

    report = {
        "pr": 5,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "disabled_overhead": disabled,
        "enabled_cost": enabled,
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print()
    print(json.dumps(report, indent=2))
    print(f"\nwrote {BENCH_PATH}")

    # Observation at a 1000-access interval must stay a small tax — it
    # only runs between segments (window accounting, counter polling).
    assert enabled["enabled_overhead_pct"] <= 25.0

    if "skipped" in disabled:
        pytest.skip(disabled["skipped"])
    # The acceptance bar: disabled telemetry is free.  Median across the
    # cells, because single-cell numbers on a shared machine are noise.
    assert disabled["median_overhead_pct"] <= 2.0
