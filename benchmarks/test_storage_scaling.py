"""§2.1's storage claims: >1 GB research models vs the ~1 MB deployment.

The paper: "A state-of-the-art LSTM-based cache prefetcher [40] requires
over 1 GB of storage using 32-bit parameters ... we aggressively compress
it to nearly 1 MB by reducing its input-embedding dimension, and the
number of output classes."  §5.3 adds that embedding tables alone exceed
500 MB at research scale.  This bench reconstructs those sizes from the
architecture arithmetic and places the Hebbian network next to them.
"""

from __future__ import annotations

from repro.harness.models import paper_hebbian_config
from repro.harness.reporting import print_table
from repro.nn.costs import hebbian_parameter_count
from repro.nn.lstm import LSTMConfig

#: Shi et al. [40]-scale configuration: ~2^18 delta classes, wide
#: embeddings, large recurrent state — the "research ideal" the paper
#: measures at >1 GB.
RESEARCH_SCALE = LSTMConfig(vocab_size=262_144, embed_dim=1024,
                            hidden_dim=2048)

#: The paper's compressed deployment ("nearly 1 MB"): our default config.
COMPRESSED = LSTMConfig()


def storage_mb(parameters: int, bytes_per_param: int) -> float:
    return parameters * bytes_per_param / (1024 * 1024)


def test_storage_scaling(benchmark):
    def compute():
        hebbian = paper_hebbian_config()
        return [
            ("lstm research-scale [40], FP32",
             RESEARCH_SCALE.parameter_count,
             storage_mb(RESEARCH_SCALE.parameter_count, 4)),
            ("  of which embedding table",
             RESEARCH_SCALE.vocab_size * RESEARCH_SCALE.embed_dim,
             storage_mb(RESEARCH_SCALE.vocab_size * RESEARCH_SCALE.embed_dim, 4)),
            ("lstm compressed deployment, FP32",
             COMPRESSED.parameter_count,
             storage_mb(COMPRESSED.parameter_count, 4)),
            ("lstm compressed, INT8",
             COMPRESSED.parameter_count,
             storage_mb(COMPRESSED.parameter_count, 1)),
            ("hebbian (Table 2), 1-byte weights",
             hebbian_parameter_count(hebbian),
             storage_mb(hebbian_parameter_count(hebbian), 1)),
        ]

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(["model", "parameters", "storage MB"], rows,
                title="§2.1 — model storage across scales")

    by_name = {name: mb for name, _params, mb in rows}
    # ">1 GB of storage using 32-bit parameters"
    assert by_name["lstm research-scale [40], FP32"] > 1024.0
    # ">500 MB" embedding table (§5.3)
    assert by_name["  of which embedding table"] > 500.0
    # "aggressively compress it to nearly 1 MB"
    assert 0.3 < by_name["lstm compressed deployment, FP32"] < 1.5
    # the Hebbian network fits in L2-cache territory
    assert by_name["hebbian (Table 2), 1-byte weights"] < 0.1
