"""Table 1: the five memory access patterns.

Regenerates the table as a statistical signature of each generator
(validating the "Behavior" column) and benchmarks generator throughput.
"""

from __future__ import annotations

from repro.harness.reporting import print_table
from repro.harness.tables import table1_signatures
from repro.patterns.generators import PATTERN_NAMES, PatternSpec, generate

import pytest

SPEC = PatternSpec(n=1000, working_set=100, element_size=64, seed=0)


def test_table1_signatures(benchmark):
    signatures = benchmark.pedantic(lambda: table1_signatures(SPEC),
                                    rounds=1, iterations=1)
    print_table(
        ["pattern", "accesses", "distinct deltas", "dominant delta share",
         "period"],
        [[s.pattern, s.n_accesses, s.distinct_deltas,
          s.dominant_delta_share, s.period if s.period else "-"]
         for s in signatures],
        title="Table 1 — access pattern signatures (1000 accesses each)")

    by_name = {s.pattern: s for s in signatures}
    # stride: one dominant regular delta
    assert by_name["stride"].dominant_delta_share > 0.9
    # pointer chase: pseudorandom (many deltas), periodic repeat
    assert by_name["pointer_chase"].distinct_deltas > 30
    assert by_name["pointer_chase"].period == SPEC.working_set
    # indirect patterns: alternation doubles the period
    assert by_name["indirect_stride"].period == 2 * SPEC.working_set
    assert by_name["indirect_index"].period == 2 * SPEC.working_set
    # pointer offset: field strides dominate, chase underneath
    assert 0.3 < by_name["pointer_offset"].dominant_delta_share < 0.9


@pytest.mark.parametrize("pattern", PATTERN_NAMES)
def test_generator_throughput(benchmark, pattern):
    spec = PatternSpec(n=100_000, working_set=1000, seed=0)
    trace = benchmark(lambda: generate(pattern, spec))
    assert len(trace) == spec.n
