"""Table 2: resource needs of the Hebbian vs LSTM networks.

Prints measured parameters and op counts next to the paper's published
values, and benchmarks the real wall-clock of one online step of each
model (our numpy implementations — supplementary to the op counts, which
are the hardware-independent result).
"""

from __future__ import annotations

from repro.harness.models import paper_hebbian_config, paper_lstm_config
from repro.harness.reporting import print_table
from repro.harness.tables import table2_rows
from repro.nn.hebbian import SparseHebbianNetwork
from repro.nn.lstm import OnlineLSTM


def test_table2_resource_needs(benchmark):
    rows = benchmark.pedantic(table2_rows, rounds=1, iterations=1)
    print_table(
        ["model", "params (ours)", "params (paper)",
         "inference ops (ours)", "inference ops (paper)", "kind",
         "training ops (ours)", "training ops (paper)"],
        [[r.model, r.parameters, r.paper_parameters,
          r.inference_ops, r.paper_inference_ops, r.inference_kind,
          r.training_ops, r.paper_training_ops]
         for r in rows],
        title="Table 2 — resource needs (measured vs paper)")

    lstm, hebbian = rows
    # the paper's headline ratios
    assert lstm.parameters / hebbian.parameters >= 3.0
    assert lstm.inference_ops / hebbian.inference_ops >= 10.0
    assert lstm.training_ops / hebbian.training_ops >= 10.0
    # absolute scales match the published configs
    assert abs(lstm.parameters - 170_000) / 170_000 < 0.05
    assert abs(hebbian.parameters - 49_000) / 49_000 < 0.05


def test_wallclock_hebbian_step(benchmark):
    model = SparseHebbianNetwork(paper_hebbian_config())
    model.step(1)

    def step():
        model.step(2)
        model.step(1)

    benchmark(step)


def test_wallclock_lstm_step(benchmark):
    model = OnlineLSTM(paper_lstm_config())
    model.step(1)

    def step():
        model.step(2)
        model.step(1)

    benchmark(step)
