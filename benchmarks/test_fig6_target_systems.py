"""Figure 6 / §4: the target systems' design-space claims, measured.

Disaggregated (latency-bound): per-node decentralized prefetching with a
model fast enough to be timely (Hebbian) speeds up mean access latency;
the LSTM's modeled >150 us inference makes its prefetches land too late
to help; a switch-centralized model fed the interleaved stream loses the
per-node pattern structure.

UVM (throughput-bound): stream isolation in the driver beats a shared
model, and wider prefetch output (§5.2 width) buys additional throughput.
"""

from __future__ import annotations


from repro.harness.fig6 import (
    Fig6Config,
    required_prefetch_length,
    run_disaggregated,
    run_irregular_node,
    run_uvm,
)
from repro.harness.reporting import print_table

CONFIG = Fig6Config(accesses_per_node=8_000, accesses_per_stream=2_000,
                    n_streams=6, seed=0)


def test_fig6_disaggregated_placement_and_timeliness(benchmark):
    comparison = benchmark.pedantic(lambda: run_disaggregated(CONFIG),
                                    rounds=1, iterations=1)
    print_table(
        ["configuration", "mean access ns", "total misses", "speedup"],
        [
            ["no prefetch", comparison.baseline.mean_access_ns,
             comparison.baseline.total_misses, 1.0],
            [f"decentralized hebbian (delay {comparison.hebbian_delay_accesses})",
             comparison.decentralized_hebbian.mean_access_ns,
             comparison.decentralized_hebbian.total_misses,
             comparison.hebbian_speedup],
            [f"decentralized lstm (delay {comparison.lstm_delay_accesses})",
             comparison.decentralized_lstm.mean_access_ns,
             comparison.decentralized_lstm.total_misses,
             comparison.lstm_speedup],
            ["decentralized leap (majority delta)",
             comparison.decentralized_leap.mean_access_ns,
             comparison.decentralized_leap.total_misses,
             comparison.leap_speedup],
            ["centralized hebbian (interleaved stream)",
             comparison.centralized_hebbian.mean_access_ns,
             comparison.centralized_hebbian.total_misses,
             comparison.centralized_speedup],
        ],
        title="Figure 6 (left) — disaggregated system, 4 nodes x "
              f"{CONFIG.accesses_per_node} accesses")

    # timeliness: the Hebbian model's latency allows useful prefetching...
    assert comparison.hebbian_speedup > 1.2
    # ...the LSTM's does not (its prefetches land ~an order later)
    assert comparison.lstm_delay_accesses > 5 * comparison.hebbian_delay_accesses
    assert comparison.lstm_speedup < 1.05
    # placement: per-node beats switch-centralized on distinct-app nodes
    assert comparison.hebbian_speedup > comparison.centralized_speedup
    # Leap (sub-microsecond table, majority-delta) is a strong baseline on
    # this stride-heavy mix — the honest comparison the next test flips
    assert comparison.leap_speedup > 1.2


def test_fig6_irregular_node_vs_leap(benchmark):
    """Where learning earns its cost: a pointer-chasing node has no
    majority delta for Leap to vote on, but is perfectly learnable."""
    comparison = benchmark.pedantic(lambda: run_irregular_node(CONFIG),
                                    rounds=1, iterations=1)
    print_table(
        ["prefetcher", "total misses", "speedup"],
        [["no prefetch", comparison.baseline.total_misses, 1.0],
         ["hebbian", comparison.hebbian.total_misses,
          comparison.hebbian_speedup],
         ["leap", comparison.leap.total_misses, comparison.leap_speedup]],
        title="Figure 6 (left, irregular node) — pointer-chase workload")
    assert comparison.leap_speedup < 1.02   # nothing to vote on
    assert comparison.hebbian_speedup > 1.1  # learned traversal pays


def test_fig6_uvm_stream_isolation_and_width(benchmark):
    comparison = benchmark.pedantic(lambda: run_uvm(CONFIG, widths=(1, 2, 4)),
                                    rounds=1, iterations=1)
    rows = [
        ["no prefetch", comparison.baseline.total_time_ns / 1e6,
         comparison.baseline.total_faults,
         comparison.baseline.throughput_accesses_per_us, 1.0],
        ["shared model, width 1", comparison.shared.total_time_ns / 1e6,
         comparison.shared.total_faults,
         comparison.shared.throughput_accesses_per_us,
         comparison.shared.speedup_over(comparison.baseline)],
    ]
    for width, result in sorted(comparison.per_stream_by_width.items()):
        rows.append([f"per-stream, width {width}",
                     result.total_time_ns / 1e6, result.total_faults,
                     result.throughput_accesses_per_us,
                     result.speedup_over(comparison.baseline)])
    print_table(
        ["configuration", "total time ms", "faults", "accesses/us", "speedup"],
        rows,
        title="Figure 6 (right) — CPU-GPU UVM, "
              f"{CONFIG.n_streams} SIMT streams")

    base = comparison.baseline
    w = comparison.per_stream_by_width
    # §5.2: the SIMT streams are branchy (warp divergence), so the next
    # page is one of several candidates — *width* is what buys coverage
    # and throughput, monotonically
    assert w[4].total_faults < w[2].total_faults < base.total_faults
    assert (w[4].speedup_over(base) > w[2].speedup_over(base)
            >= w[1].speedup_over(base))
    assert w[4].speedup_over(base) > 1.1
    # stream isolation beats the shared model at equal width
    assert w[4].speedup_over(base) > comparison.shared.speedup_over(base)


def test_fig6_required_prefetch_length(benchmark):
    """§5.2 co-design: the rollout length each model needs to be timely."""
    hebbian_len, lstm_len = benchmark.pedantic(
        lambda: (required_prefetch_length("hebbian", gap_ns=500),
                 required_prefetch_length("lstm", gap_ns=500)),
        rounds=1, iterations=1)
    print_table(["model", "required prefetch length (misses ahead)"],
                [["hebbian", hebbian_len], ["lstm", lstm_len]],
                title="§5.2 — prefetch length needed to hide model latency")
    assert hebbian_len <= 8
    assert lstm_len > 5 * hebbian_len
