"""A6 (§3.1): Hebbian sparsity sweep.

The paper's prototype fixes 12.5% connectivity and 10% activation
sparsity.  This ablation sweeps both knobs and reports learned confidence
against parameter and op budgets — the efficiency/accuracy frontier the
§3.1 design point sits on.
"""

from __future__ import annotations

from repro.harness.ablations import ablation_sparsity
from repro.harness.reporting import print_table


def test_ablation_sparsity_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: ablation_sparsity(connectivities=(0.05, 0.125, 0.25),
                                  activations=(0.05, 0.10, 0.25)),
        rounds=1, iterations=1)
    print_table(
        ["connectivity", "activation", "confidence", "parameters",
         "inference int ops"],
        [[r["connectivity"], r["activation"], r["confidence"],
          r["parameters"], r["inference_int_ops"]] for r in rows],
        title="A6 (§3.1) — Hebbian sparsity sweep (60-class cycle)")

    def row(conn, act):
        return next(r for r in rows
                    if (r["connectivity"], r["activation"]) == (conn, act))

    # the paper's design point learns the cycle
    assert row(0.125, 0.10)["confidence"] > 0.7
    # cost scales with connectivity...
    assert row(0.25, 0.10)["parameters"] > 1.5 * row(0.125, 0.10)["parameters"]
    # ...and with activation fraction
    assert (row(0.125, 0.25)["inference_int_ops"]
            > row(0.125, 0.05)["inference_int_ops"])
