"""A3 (§5.3): input encodings, including the paper's negative result.

§5.3 reports that "neither the LSTM nor the Hebbian network perform well
on caching applications like memcached and cachebench ... almost entirely
pointer-based, and the access patterns are difficult to learn from
addresses or strides."  This ablation compares the delta and page-identity
encoders across learnable (pointer_chase, graph500) and unlearnable
(memcached, cachebench) workloads.
"""

from __future__ import annotations

from repro.harness.ablations import ablation_encoding
from repro.harness.reporting import print_table


def test_ablation_encodings(benchmark):
    rows = benchmark.pedantic(lambda: ablation_encoding(n_accesses=10_000),
                              rounds=1, iterations=1)
    print_table(
        ["workload", "encoder", "misses removed %", "accuracy"],
        [[r["workload"], r["encoder"], r["misses_removed_pct"],
          r["prefetch_accuracy"]] for r in rows],
        title="A3 (§5.3) — encoder comparison")

    def row(workload, encoder):
        return next(r for r in rows if (r["workload"], r["encoder"])
                    == (workload, encoder))

    def removed(workload, encoder):
        return row(workload, encoder)["misses_removed_pct"]

    # structured pointer workloads are learnable
    assert removed("pointer_chase", "delta") > 10.0
    assert max(removed("graph500", e) for e in ("delta", "page", "region")) > 3.0
    # the paper's negative result: fresh-random-key caching defeats every
    # encoding (§5.3: "almost entirely pointer-based ... difficult to
    # learn from addresses or strides")
    for workload in ("memcached", "cachebench"):
        for encoder in ("delta", "page", "region"):
            assert removed(workload, encoder) < 15.0, (workload, encoder)
    # the §5.3 structural encoding: per-region deltas rescue interleaved
    # structures — more misses removed at near-perfect accuracy
    assert (removed("interleaved_strides", "region")
            > removed("interleaved_strides", "delta") + 5.0)
    assert row("interleaved_strides", "region")["prefetch_accuracy"] > 0.9
    assert (row("interleaved_strides", "region")["prefetch_accuracy"]
            > row("interleaved_strides", "delta")["prefetch_accuracy"] + 0.2)
