"""PR 6 perf smoke: compiled kernel backends vs the numpy dispatch floor.

Measures and records in ``BENCH_PR6.json`` (repo root):

1. **``simulate()`` throughput per backend** — numpy vs every available
   compiled backend (numba and/or C, whichever this machine can build)
   across the four Figure 5 applications at delays {0, 4}, for the null
   and stride prefetcher families.  The short-span workloads PR 4 could
   not speed up (graph500, stride-resnet) are the headline cells: their
   per-span numpy dispatch cost is exactly what the compiled scans
   remove.
2. **CLS pipeline throughput per backend** — the full
   hebbian-prefetcher loop with both the simulator and Hebbian kernel
   bundles live, plus the ``int8`` serving mode (recorded with its own
   miss counts: int8 is accuracy-bounded, not bit-identical, so its
   misses may legitimately differ and are *not* asserted equal).

Every numpy-vs-compiled cell asserts demand misses **exactly equal** —
the compiled backends claim bit-identity, so the simulated outcome must
not move at all (the same claim the cross-backend suites pin at test
scale).  Throughput floors are asserted only where the PR's acceptance
criterion requires one: with a compiled backend available, at least one
short-span workload (graph500 or stride-resnet) must clear 2x over the
numpy path.  On numpy-only machines the benchmark still runs and
records the single-backend numbers (speedups report as 1.0).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.baselines.classic import StridePrefetcher
from repro.core.cls_prefetcher import CLSPrefetcher, CLSPrefetcherConfig
from repro.memsim.prefetcher import NullPrefetcher
from repro.memsim.simulator import SimConfig, simulate
from repro.nn.backends import available_backends
from repro.nn.hebbian import HebbianConfig
from repro.patterns.applications import AppSpec, generate_application

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_PR6.json"

SIM_TRACE_N = 200_000
SEED = 1
_APPS = ("resnet", "pagerank", "mcf", "graph500")

COMPILED = [b for b in available_backends("sim") if b != "numpy"]

#: The acceptance cells: short spans, where numpy dispatch is the floor.
_SHORT_SPAN = ("null-graph500-d4", "stride-resnet-d4", "stride-graph500-d4",
               "null-graph500-d0", "stride-resnet-d0", "stride-graph500-d0")


def _make_prefetcher(family: str, backend: str = "auto"):
    if family == "null":
        return NullPrefetcher()
    if family == "stride":
        return StridePrefetcher()
    # Same CLS config the bit-identity suites pin (vocab 64, seed 3),
    # with the Hebbian kernels routed through the backend under test.
    return CLSPrefetcher(CLSPrefetcherConfig(
        model="hebbian", vocab_size=64, observe_hits=False, seed=3,
        hebbian=HebbianConfig(vocab_size=64, seed=3, backend=backend)))


def _best_of(trace, family: str, backend: str, delay: int,
             runs: int = 3) -> tuple[float, int]:
    """Best throughput (M accesses/s) and the demand-miss count."""
    sim_backend = "auto" if backend == "int8" else backend
    config = SimConfig(memory_fraction=0.5, prefetch_delay_accesses=delay)
    best = float("inf")
    for _ in range(runs):
        prefetcher = _make_prefetcher(family, backend)
        t0 = time.perf_counter()
        result = simulate(trace, prefetcher, config, backend=sim_backend)
        best = min(best, time.perf_counter() - t0)
    return len(trace) / best / 1e6, result.demand_misses


def bench_sim_backends(traces: dict) -> dict:
    """null/stride cells, numpy vs every compiled backend, delays {0,4}."""
    out: dict = {"protocol": "best of 3, fresh prefetcher per run, same "
                             "process; sim memory_fraction=0.5",
                 "traces": f"n={SIM_TRACE_N} seed={SEED}",
                 "backends": ["numpy"] + COMPILED}
    for family in ("null", "stride"):
        for app in _APPS:
            for delay in (0, 4):
                name = f"{family}-{app}-d{delay}"
                numpy_mps, numpy_misses = _best_of(traces[app], family,
                                                   "numpy", delay)
                cell = {"numpy_m_accesses_per_s": round(numpy_mps, 4),
                        "demand_misses": numpy_misses}
                ratios = [1.0]  # numpy vs itself, when nothing compiled
                for backend in COMPILED:
                    mps, misses = _best_of(traces[app], family, backend,
                                           delay)
                    assert misses == numpy_misses, (
                        f"{name}: {backend} diverged from numpy "
                        f"({misses} vs {numpy_misses} misses)")
                    cell[f"{backend}_m_accesses_per_s"] = round(mps, 4)
                    ratios.append(mps / numpy_mps)
                # Best compiled backend vs numpy, sub-1x kept visible.
                cell["speedup"] = round(max(ratios[1:] or ratios), 2)
                out[name] = cell
    return out


def bench_cls_backends(traces: dict) -> dict:
    """Full CLS pipeline: numpy vs compiled vs int8 serving."""
    out: dict = {"protocol": "best of 2, fresh prefetcher per run; delay=4; "
                             "int8 misses recorded, not asserted "
                             "(accuracy-bounded serving, see EXPERIMENTS.md)",
                 "backends": ["numpy"] + COMPILED + ["int8"]}
    for app in ("resnet", "pagerank"):
        name = f"cls-{app}-d4"
        numpy_mps, numpy_misses = _best_of(traces[app], "cls", "numpy", 4,
                                           runs=2)
        cell = {"numpy_m_accesses_per_s": round(numpy_mps, 4),
                "demand_misses": numpy_misses}
        ratios = [1.0]
        for backend in COMPILED:
            mps, misses = _best_of(traces[app], "cls", backend, 4, runs=2)
            assert misses == numpy_misses, (
                f"{name}: {backend} diverged from numpy "
                f"({misses} vs {numpy_misses} misses)")
            cell[f"{backend}_m_accesses_per_s"] = round(mps, 4)
            ratios.append(mps / numpy_mps)
        int8_mps, int8_misses = _best_of(traces[app], "cls", "int8", 4,
                                         runs=2)
        cell["int8_m_accesses_per_s"] = round(int8_mps, 4)
        cell["int8_demand_misses"] = int8_misses
        cell["speedup"] = round(max(ratios[1:] or ratios), 2)
        out[name] = cell
    return out


def test_perf_backends():
    traces = {app: generate_application(app, AppSpec(n=SIM_TRACE_N, seed=SEED))
              for app in _APPS}
    sim = bench_sim_backends(traces)
    cls = bench_cls_backends(traces)

    report = {
        "pr": 6,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "compiled_backends_available": COMPILED,
        "simulate_backends": sim,
        "cls_backends": cls,
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(json.dumps(report, indent=2))
    print(f"\nwrote {BENCH_PATH}")

    if COMPILED:
        # Acceptance: the compiled backends break the dispatch floor on
        # at least one short-span workload PR 4 could not batch.
        best_short = max(sim[name]["speedup"] for name in _SHORT_SPAN)
        assert best_short >= 2.0, (
            f"no short-span workload cleared 2x (best {best_short}x)")
