"""Micro-profiling harness for the CLS prefetcher hot path (PR 3).

Runs the exact protocol the PR 3 perf work was measured on — a resnet
training trace through ``simulate()`` with the Fig. 5 cls-hebbian
prefetcher — under :mod:`cProfile`, and prints the hottest functions by
cumulative and by self time.  This is the committed form of the loop
used to find (and verify the elimination of) the per-miss costs: event
allocation, redundant readouts, full-vocab argsorts, per-pair replay.

Usage::

    PYTHONPATH=src python benchmarks/profile_cls.py [--n 200000]
        [--top 25] [--sort cumulative|tottime]

Equivalent via the CLI for arbitrary runs::

    PYTHONPATH=src python -m repro --profile simulate --app resnet_training \
        --model hebbian --n 200000

The wall-clock number printed at the end is NOT comparable to
``BENCH_PR3.json`` (profiling roughly doubles the runtime); use
``benchmarks/test_perf_cls_hot_path.py`` for throughput.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import time

from repro.harness.fig5 import Fig5Config, make_model_prefetcher
from repro.memsim.simulator import SimConfig, simulate
from repro.patterns.applications import AppSpec, resnet_training


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=200_000,
                        help="trace length in accesses")
    parser.add_argument("--top", type=int, default=25,
                        help="rows to print per ranking")
    parser.add_argument("--sort", choices=["cumulative", "tottime", "both"],
                        default="both")
    args = parser.parse_args(argv)

    trace = resnet_training(AppSpec(n=args.n, seed=1))
    sim_cfg = SimConfig(memory_fraction=0.5, prefetch_delay_accesses=4)
    prefetcher = make_model_prefetcher("hebbian", Fig5Config())

    profiler = cProfile.Profile()
    t0 = time.perf_counter()
    result = profiler.runcall(simulate, trace, prefetcher, sim_cfg)
    elapsed = time.perf_counter() - t0

    stats = pstats.Stats(profiler, stream=sys.stdout)
    sorts = (["cumulative", "tottime"] if args.sort == "both"
             else [args.sort])
    for sort in sorts:
        print(f"\n--- top {args.top} by {sort} ---")
        stats.sort_stats(sort).print_stats(args.top)

    print(f"resnet n={args.n} seed=1: {result.demand_misses} demand misses, "
          f"{elapsed:.2f}s profiled "
          f"({args.n / elapsed / 1e6:.4f} M accesses/s under profiler)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
