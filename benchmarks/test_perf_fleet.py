"""PR 8 perf smoke: the multi-tenant fleet engine.

Measures and records in ``BENCH_PR8.json`` (repo root) a 1 -> 10k-tenant
scaling curve for two null-prefetcher workloads: the fleet engine's
events/sec (``run_fleet``: config-grouped vectorized cohorts with
drain-and-refill) against N independent ``simulate()`` calls over the
same lane specs.

Protocol notes, honestly stated:

- **Paired interleaved timing, best of 15 per side.**  This machine's
  throughput swings 20-60% between identical back-to-back runs (see the
  PR 4 bench header), so each repetition times the fleet and the
  sequential loop adjacently and both sides keep their minimum.
- **Lanes cycle a shared 64-trace pool** (distinct seeds), the
  multi-tenant serving shape the fleet engine optimizes for: packed
  trace rows are shared across lanes replaying the same trace, so a
  refill copies nothing.  Sequential ``simulate()`` benefits from the
  same sharing (per-trace ``page_index`` memoization) — the comparison
  is pool-for-pool.
- **Sequential cost is sampled at the 10k point** (2 000 of 10 000
  lanes, scaled): per-call cost is lane-count-independent — the lanes
  cycle the same pool — and 10 000 unsampled calls would only add noise
  exposure, not information.
- **Short lanes are where the fleet pays.**  One ``simulate()`` call
  carries a fixed per-call floor (cache construction, universe attach,
  kernel binding) that dwarfs the compiled per-access cost at n=512;
  the fleet amortizes it across thousands of lanes.  At long lane
  lengths (n >= 2k) the sequential engine's per-access marginal rate
  wins back most of the gap — that regime is visible in the curve's
  flattening speedup and is not what multi-tenant serving looks like.

Bit-identity is asserted in-bench, not assumed: at the 1 000-tenant
point every lane's full ``CacheStats`` must equal its independent
``simulate()`` outcome exactly, and a 100-lane pass with
``record_miss_indices`` pins the per-lane miss-index streams too.
Throughput assertions are deliberately loose floors (shared CI machines
vary); the honest paired numbers live in the JSON, including the
1-tenant cells where the fleet *loses* (cohort setup swamps one lane) —
kept visible rather than cherry-picked away.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.harness.fleet import run_fleet
from repro.memsim.fleet import FleetLaneSpec
from repro.memsim.prefetcher import NullPrefetcher
from repro.memsim.simulator import SimConfig, simulate
from repro.patterns import PatternSpec, generate

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_PR8.json"

LANE_N = 512
POOL = 64
WORKING_SET = 64
TENANT_CURVE = (1, 10, 100, 1_000, 10_000)
#: Sequential sample size at tenant counts above it (lanes cycle the
#: same pool, so per-call cost is lane-count-independent).
SEQ_SAMPLE = 2_000
#: Per-side repetitions (both sides keep their minimum).  15 because
#: this machine's noise comes in multi-ms bursts that can swallow
#: several adjacent reps; see the protocol note in the docstring.
REPS = 15

WORKLOADS = ("stride", "pointer_offset")

CONFIG = SimConfig()


def _pool(pattern: str) -> list:
    return [generate(pattern, PatternSpec(n=LANE_N, working_set=WORKING_SET,
                                          seed=seed))
            for seed in range(POOL)]


def _specs(pool: list, tenants: int) -> list[FleetLaneSpec]:
    return [FleetLaneSpec(trace=pool[i % POOL], prefetcher=NullPrefetcher(),
                          config=CONFIG)
            for i in range(tenants)]


def bench_workload(pattern: str) -> tuple[list[dict], str]:
    pool = _pool(pattern)
    cells = []
    backend_used = "numpy"
    for tenants in TENANT_CURVE:
        specs = _specs(pool, tenants)
        seq_lanes = min(tenants, SEQ_SAMPLE)
        # Warm both sides: kernel binding, page_index memoization.
        report = run_fleet(specs, max_width=1024)
        simulate(pool[0], NullPrefetcher(), config=CONFIG)
        fleet_best = float("inf")
        seq_best = float("inf")
        for _ in range(REPS):
            t0 = time.perf_counter()
            report = run_fleet(specs, max_width=1024)
            fleet_best = min(fleet_best, time.perf_counter() - t0)
            t0 = time.perf_counter()
            for i in range(seq_lanes):
                simulate(pool[i % POOL], NullPrefetcher(), config=CONFIG)
            seq_best = min(seq_best, time.perf_counter() - t0)
        backend_used = report.backend
        total = report.total_accesses
        fleet_eps = total / fleet_best
        seq_eps = (seq_lanes * LANE_N) / seq_best
        cell = {
            "tenants": tenants,
            "fleet_events_per_sec": round(fleet_eps, 1),
            "sequential_events_per_sec": round(seq_eps, 1),
            "speedup": round(fleet_eps / seq_eps, 2),
        }
        if seq_lanes < tenants:
            cell["sequential_sampled_lanes"] = seq_lanes
        cells.append(cell)
    return cells, backend_used


def assert_bit_identity(pattern: str) -> None:
    pool = _pool(pattern)
    # Full-stats identity across every lane of a 1k fleet.
    specs = _specs(pool, 1_000)
    report = run_fleet(specs, max_width=1024)
    for spec, outcome in zip(specs, report.outcomes):
        reference = simulate(spec.trace, NullPrefetcher(), config=CONFIG)
        assert outcome.result.stats.as_dict() == reference.stats.as_dict()
        assert outcome.result.capacity_pages == reference.capacity_pages
    # Miss-index streams on a smaller fleet (recording is O(n) memory).
    specs = _specs(pool, 100)
    report = run_fleet(specs, max_width=1024, record_miss_indices=True)
    for spec, outcome in zip(specs, report.outcomes):
        reference = simulate(spec.trace, NullPrefetcher(), config=CONFIG,
                             record_miss_indices=True)
        assert outcome.result.miss_indices == reference.miss_indices


def test_perf_fleet():
    sections: dict[str, list[dict]] = {}
    backend_used = "numpy"
    for pattern in WORKLOADS:
        assert_bit_identity(pattern)
        cells, backend_used = bench_workload(pattern)
        sections[f"{pattern}-null"] = cells

    report = {
        "pr": 8,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "protocol": f"paired interleaved runs, best of {REPS} per side; "
                    f"lanes n={LANE_N} working_set={WORKING_SET} cycling a "
                    f"{POOL}-trace pool; null prefetcher; backend "
                    f"{backend_used}; sequential sampled at "
                    f"{SEQ_SAMPLE} lanes above that count",
        "fleet": sections,
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(json.dumps(report, indent=2))
    print(f"\nwrote {BENCH_PATH}")

    # Loose floors only — the honest paired numbers live in the JSON.
    # The fleet's claim is amortization at scale: comfortably ahead by
    # 1k tenants, wider still at 10k where refills keep cohorts full.
    # Typical measured speedups are 3.0-4.3x at both points (C backend)
    # and ~2.9x pure-numpy, but this machine's 10k sequential sample
    # swings hard between runs — the floors leave that headroom.
    for name, cells in sections.items():
        by_tenants = {cell["tenants"]: cell for cell in cells}
        assert by_tenants[1_000]["speedup"] >= 2.0, name
        assert by_tenants[10_000]["speedup"] >= 2.5, name
