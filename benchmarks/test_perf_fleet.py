"""PR 9 perf smoke: learned-lane (CLS) fleets, stacked and sharded.

Measures and records in ``BENCH_PR9.json`` (repo root) a 1 -> 10k-tenant
scaling curve for CLS Hebbian learned lanes: the stacked cohort path
(``CLSFleetGroup`` batching every stalled lane's miss through one
``HebbianFleet`` step/replay/rollout call per round) against N
independent per-lane ``simulate()`` calls, with the scalar per-miss
cohort path (``stacked_cls=False`` — the zero-regression escape hatch)
measured alongside so the scalar-vs-stacked crossover is in the file,
plus one multi-process sharding row through ``run_fleet_jobs``.

Protocol notes, honestly stated:

- **Paired interleaved timing, best of R per side** (R shrinks with
  tenant count; the 10k cells run once — a single 10k learned-lane pass
  is ~20-40 s on this class of machine).  This machine's throughput
  swings 20-60% between identical back-to-back runs (see the PR 4 bench
  header), so each repetition times all sides adjacently.
- **Small network, short high-miss lanes.**  vocab 24 / hidden 64
  pointer-chase lanes at n=96 with a tight cache: the multi-tenant
  serving shape where per-miss Python+numpy dispatch dominates per-lane
  work — exactly the overhead the tenant-axis stacking amortizes.  At
  large hidden sizes both sides converge on the same arithmetic and the
  ratio decays toward 1; that regime is visible in the honest 1-tenant
  cells below, not hidden.
- **Sequential cost is sampled** (200 lanes, scaled): per-call cost is
  lane-count-independent — the lanes cycle the same 16-trace pool.
- **GC is disabled inside the timed regions** (both sides), so
  collector pauses triggered by 10k live lane objects don't land on
  whichever side happens to be running.
- **The 10k stacked cell degrades** (~0.6-0.7x of its 1k-2k peak on
  this box): 10k live lanes' Python object graphs overflow cache and
  refill generations churn the cohort.  Reported as measured, not
  trimmed — the claim is >=2x at 1k+, not monotone scaling.
- **The sharding row is honest about this box.**  ``run_fleet_jobs``
  with ``--jobs 2`` on a single-CPU container pays fork + IPC for no
  parallelism; expect sub-1x vs the single-process stacked run.  The
  row exists to pin the protocol (and goes >1x only on real multi-core
  hosts).

Bit-identity is asserted in-bench, not assumed: at the 1 000-tenant
point every lane's full ``CacheStats`` must equal its independent
``simulate()`` outcome exactly, and a 100-lane pass pins per-lane
miss-index streams AND learned ``w_out`` weights against scalar
references.  Throughput assertions are deliberately loose floors
(shared CI machines vary); the honest paired numbers live in the JSON,
including the 1- and 10-tenant cells where the fleet *loses* (cohort
setup swamps a handful of lanes) — kept visible rather than
cherry-picked away.
"""

from __future__ import annotations

import gc
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.cls_prefetcher import CLSPrefetcher, CLSPrefetcherConfig
from repro.harness.fleet import run_fleet, run_fleet_jobs
from repro.memsim.fleet import FleetLaneSpec
from repro.memsim.simulator import SimConfig, simulate
from repro.nn.backends import resolve_backend
from repro.nn.hebbian import HebbianConfig, SparseHebbianNetwork
from repro.patterns import PatternSpec, generate

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_PR9.json"

LANE_N = 96
POOL = 16
WORKING_SET = 96
VOCAB = 24
HIDDEN = 64
TENANT_CURVE = (1, 10, 100, 1_000, 10_000)
#: Sequential sample size (lanes cycle the same pool, so per-call cost
#: is lane-count-independent).
SEQ_SAMPLE = 200
#: Per-side repetitions by tenant count (all sides keep their minimum).
REPS = {1: 5, 10: 5, 100: 3, 1_000: 2, 10_000: 1}

PATTERN = "pointer_chase"
CONFIG = SimConfig(memory_fraction=0.4)

BACKEND = resolve_backend("auto")

_HEBBIAN = HebbianConfig(vocab_size=VOCAB, hidden_dim=HIDDEN, seed=5,
                         backend=BACKEND)
_CLS = CLSPrefetcherConfig(model="hebbian", vocab_size=VOCAB,
                           hebbian=_HEBBIAN, seed=5)
_PROTO = SparseHebbianNetwork(_HEBBIAN)


def _pool() -> list:
    return [generate(PATTERN, PatternSpec(n=LANE_N,
                                          working_set=WORKING_SET,
                                          seed=seed))
            for seed in range(POOL)]


def _prefetcher() -> CLSPrefetcher:
    # Prototype-cloned lanes: shared fixed structures and memo caches,
    # per-lane learned weights — the fleet's lane construction (and one
    # stacked group, since every lane carries the same frozen config).
    return CLSPrefetcher(_CLS, model=_PROTO.clone())


def _specs(pool: list, tenants: int) -> list[FleetLaneSpec]:
    return [FleetLaneSpec(trace=pool[i % POOL], prefetcher=_prefetcher(),
                          config=CONFIG)
            for i in range(tenants)]


def _timed_fleet(pool: list, tenants: int, *, stacked: bool,
                 width: int = 2_048) -> float:
    """One fleet pass over fresh lanes; returns elapsed seconds."""
    specs = _specs(pool, tenants)
    gc.collect()
    t0 = time.perf_counter()
    run_fleet(specs, backend=BACKEND, max_width=width,
              stacked_cls=stacked)
    return time.perf_counter() - t0


def bench_curve(pool: list) -> list[dict]:
    cells = []
    # Warm both sides: kernel binding, page_index memoization, the
    # prototype's hidden-code memo.
    run_fleet(_specs(pool, 8), backend=BACKEND)
    simulate(pool[0], _prefetcher(), config=CONFIG, backend=BACKEND)
    gc.disable()
    try:
        for tenants in TENANT_CURVE:
            reps = REPS[tenants]
            seq_lanes = min(tenants, SEQ_SAMPLE)
            stacked_best = scalar_best = seq_best = float("inf")
            for _ in range(reps):
                stacked_best = min(stacked_best,
                                   _timed_fleet(pool, tenants,
                                                stacked=True))
                scalar_best = min(scalar_best,
                                  _timed_fleet(pool, tenants,
                                               stacked=False))
                gc.collect()
                t0 = time.perf_counter()
                for i in range(seq_lanes):
                    simulate(pool[i % POOL], _prefetcher(), config=CONFIG,
                             backend=BACKEND)
                seq_best = min(seq_best, time.perf_counter() - t0)
            total = tenants * LANE_N
            stacked_eps = total / stacked_best
            scalar_eps = total / scalar_best
            seq_eps = (seq_lanes * LANE_N) / seq_best
            cell = {
                "tenants": tenants,
                "fleet_events_per_sec": round(stacked_eps, 1),
                "scalar_cohort_events_per_sec": round(scalar_eps, 1),
                "sequential_events_per_sec": round(seq_eps, 1),
                "speedup": round(stacked_eps / seq_eps, 2),
                "stacked_vs_scalar_cohort": round(stacked_eps / scalar_eps,
                                                  2),
            }
            if seq_lanes < tenants:
                cell["sequential_sampled_lanes"] = seq_lanes
            cells.append(cell)
    finally:
        gc.enable()
    return cells


def bench_sharded(pool: list, seq_eps: float) -> dict:
    """One multi-process row: the same 1k-tenant fleet through
    ``run_fleet_jobs`` with two workers (trace regeneration and lane
    materialization happen inside the shards, as ``repro fleet --jobs``
    does it)."""
    tenants = 1_000
    lane_jobs = [{"pattern": PATTERN, "n": LANE_N,
                  "working_set": WORKING_SET, "seed": i % POOL,
                  "prefetcher": "cls-hebbian",
                  "sim": {"memory_fraction": CONFIG.memory_fraction},
                  "cls": {"vocab": VOCAB, "seed": 5}}
                 for i in range(tenants)]
    best = float("inf")
    for _ in range(2):
        t0 = time.perf_counter()
        run_fleet_jobs(lane_jobs, jobs=2, backend=BACKEND,
                       max_width=2_048)
        best = min(best, time.perf_counter() - t0)
    eps = tenants * LANE_N / best
    return {
        "tenants": tenants,
        "jobs": 2,
        "fleet_events_per_sec": round(eps, 1),
        "sequential_events_per_sec": round(seq_eps, 1),
        "speedup": round(eps / seq_eps, 2),
    }


def assert_bit_identity(pool: list) -> None:
    # Full-stats identity across every lane of a 1k stacked fleet.
    specs = _specs(pool, 1_000)
    report = run_fleet(specs, backend=BACKEND, max_width=2_048)
    for spec, outcome in zip(specs, report.outcomes):
        reference = simulate(spec.trace, _prefetcher(), config=CONFIG,
                             backend=BACKEND)
        assert outcome.result.stats.as_dict() == reference.stats.as_dict()
        assert outcome.result.capacity_pages == reference.capacity_pages
    # Miss-index streams AND learned weights on a smaller fleet.
    specs = _specs(pool, 100)
    report = run_fleet(specs, backend=BACKEND, max_width=2_048,
                       record_miss_indices=True)
    for spec, outcome in zip(specs, report.outcomes):
        reference_prefetcher = _prefetcher()
        reference = simulate(spec.trace, reference_prefetcher,
                             config=CONFIG, backend=BACKEND,
                             record_miss_indices=True)
        assert outcome.result.miss_indices == reference.miss_indices
        assert np.array_equal(spec.prefetcher.model.w_out,
                              reference_prefetcher.model.w_out)


def test_perf_fleet():
    pool = _pool()
    assert_bit_identity(pool)
    cells = bench_curve(pool)
    by_tenants = {cell["tenants"]: cell for cell in cells}
    sharded = bench_sharded(
        pool, by_tenants[1_000]["sequential_events_per_sec"])
    section = cells + [sharded]

    report = {
        "pr": 9,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "protocol": "paired interleaved runs, best of "
                    f"{{1:5,10:5,100:3,1k:2,10k:1}} per side, GC off in "
                    f"timed regions; CLS hebbian vocab={VOCAB} "
                    f"hidden={HIDDEN}, lanes n={LANE_N} "
                    f"working_set={WORKING_SET} {PATTERN} cycling a "
                    f"{POOL}-trace pool, memory_fraction="
                    f"{CONFIG.memory_fraction}; backend {BACKEND}; "
                    f"sequential sampled at {SEQ_SAMPLE} lanes above "
                    "that count; jobs row = run_fleet_jobs with 2 "
                    "workers (sub-1x expected on single-CPU hosts)",
        "fleet": {f"{PATTERN}-cls": section},
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(json.dumps(report, indent=2))
    print(f"\nwrote {BENCH_PATH}")

    # Loose floors only — the honest paired numbers live in the JSON.
    # The stacked path's claim is per-miss dispatch amortization at
    # scale: >=2x over per-lane simulate() by 1k tenants (measured
    # 2.3-2.5x on numpy and C backends on the dev box), and the
    # stacking itself — not just the cohort engine — must be what wins
    # (>=1.15x over the scalar per-miss cohort path at 1k).
    assert by_tenants[1_000]["speedup"] >= 2.0
    assert by_tenants[1_000]["stacked_vs_scalar_cohort"] >= 1.15
    # The sharding row records honest numbers; on a single-CPU box it
    # may be well under 1x, so it gets a sanity bound, not a floor.
    assert sharded["fleet_events_per_sec"] > 0
