"""A5 (§5.5): availability — shadow-copy protocol and noise robustness.

§5.5 motivates training a separate model copy redeployed on confidence
drops, and conjectures that weight-noise robustness might make simpler
schemes sufficient.  Both halves measured here.
"""

from __future__ import annotations

from repro.harness.ablations import ablation_availability, ablation_noise_robustness
from repro.harness.reporting import print_table


def test_ablation_availability_protocol(benchmark):
    rows = benchmark.pedantic(lambda: ablation_availability(n_accesses=10_000),
                              rounds=1, iterations=1)
    print_table(
        ["protocol", "misses removed %", "redeploys"],
        [[r["protocol"], r["misses_removed_pct"], r["redeploys"]]
         for r in rows],
        title="A5 (§5.5) — shadow-copy vs train-in-place on mcf")

    by_protocol = {r["protocol"]: r for r in rows}
    shadow = by_protocol["shadow-copy"]
    in_place = by_protocol["train-in-place"]
    assert shadow["redeploys"] >= 1
    # the paper's hope: the simple scheme is not much worse than the
    # careful one (both should prefetch usefully)
    assert shadow["misses_removed_pct"] > 5.0
    assert in_place["misses_removed_pct"] > 5.0


def test_ablation_noise_robustness(benchmark):
    rows = benchmark.pedantic(ablation_noise_robustness, rounds=1, iterations=1)
    print_table(
        ["model", "sigma", "confidence"],
        [[r["model"], r["sigma"], r["confidence"]] for r in rows],
        title="A5 (§5.5) — confidence under weight noise")

    for model in ("hebbian", "lstm"):
        curve = {r["sigma"]: r["confidence"] for r in rows
                 if r["model"] == model}
        # §5.5: small perturbations barely move the output
        assert curve[0.05] > 0.7 * curve[0.0], model
        # the measurement is non-trivial: enough noise does destroy it
        assert curve[0.5] < curve[0.0], model
