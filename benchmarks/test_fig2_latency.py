"""Figure 2: inference and training latency of the prefetch models.

Regenerates both panels from the calibrated cost model (op counts are
exact; per-op latencies are calibrated once to the paper's i7-8700
anchors — see DESIGN.md substitution #2), and checks every ordering the
paper's figure shows.
"""

from __future__ import annotations

from repro.harness.fig2 import BATCH_SIZES, FUTURE_STEPS, inference_panel, training_panel
from repro.harness.reporting import format_series
from repro.nn.costs import PAPER_ANCHORS_US


def test_fig2a_inference_latency(benchmark):
    series = benchmark.pedantic(inference_panel, rounds=1, iterations=1)
    print()
    print("Figure 2a — inference latency (us) vs number of future predictions")
    for s in series:
        print(" ", format_series(s.label, s.xs, s.latencies_us,
                                 x_name="future preds", y_name="us"))

    by_label = {s.label: dict(zip(s.xs, s.latencies_us)) for s in series}
    one = {label: values[1] for label, values in by_label.items()}

    # the paper's anchors at one future prediction
    assert one["lstm-fp32-1t"] > PAPER_ANCHORS_US["lstm_inference_fp32"]
    assert one["lstm-int8-1t"] > PAPER_ANCHORS_US["lstm_inference_int8"]
    assert (PAPER_ANCHORS_US["target_low"] <= one["hebbian-1t"]
            <= PAPER_ANCHORS_US["target_high"])
    # threading barely helps the LSTM
    assert one["lstm-fp32-1t"] / one["lstm-fp32-2t"] < 1.3
    # everything grows with rollout length
    for label, values in by_label.items():
        assert values[FUTURE_STEPS[-1]] > values[1], label


def test_fig2b_training_latency(benchmark):
    series = benchmark.pedantic(training_panel, rounds=1, iterations=1)
    print()
    print("Figure 2b — per-example training latency (us) vs batch size")
    for s in series:
        print(" ", format_series(s.label, s.xs, s.latencies_us,
                                 x_name="batch", y_name="us/example"))

    by_label = {s.label: dict(zip(s.xs, s.latencies_us)) for s in series}
    # paper: >1 ms per training example at batch 1
    assert (by_label["lstm-train-1t"][1]
            > PAPER_ANCHORS_US["lstm_training_per_example"])
    # batching amortizes per-example cost for every family
    for label, values in by_label.items():
        assert values[BATCH_SIZES[-1]] < values[1], label
    # the Hebbian network trains orders of magnitude cheaper
    assert (by_label["lstm-train-1t"][1] / by_label["hebbian-train-1t"][1]
            > 30.0)
