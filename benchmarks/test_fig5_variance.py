"""Figure 5 robustness: the comparability claim across seeds.

Reruns the Figure 5 protocol with fresh traces *and* fresh weight
initializations per seed.  The claim under test is distributional: on
every application the Hebbian network's miss removal stays within the
same band as the LSTM's (not a lucky single-seed artifact).
"""

from __future__ import annotations

from repro.harness.fig5 import Fig5Config
from repro.harness.reporting import print_table
from repro.harness.variance import fig5_seed_sweep

SEEDS = (0, 1, 2)
CONFIG = Fig5Config(n_accesses=10_000)


def test_fig5_seed_variance(benchmark):
    rows = benchmark.pedantic(
        lambda: fig5_seed_sweep(seeds=SEEDS, config=CONFIG),
        rounds=1, iterations=1)
    print_table(
        ["application", "model", "mean removed %", "std", "worst seed"],
        [[r.application, r.model, r.mean, r.std, r.worst] for r in rows],
        title=f"Figure 5 across seeds {SEEDS} "
              f"({CONFIG.n_accesses} accesses/app)")

    by_key = {(r.application, r.model): r for r in rows}
    for app in CONFIG.applications:
        hebbian = by_key[(app, "cls-hebbian")]
        lstm = by_key[(app, "cls-lstm")]
        # no seed turns either learner into a polluter
        assert hebbian.worst > -5.0, app
        assert lstm.worst > -5.0, app
    # the comparability ratio is asserted where the effect is substantial
    # at this trace length (graph500/pagerank need more passes than 10k
    # accesses contain — the full fig5 bench runs them longer)
    for app in ("resnet", "mcf"):
        hebbian = by_key[(app, "cls-hebbian")]
        lstm = by_key[(app, "cls-lstm")]
        assert hebbian.mean > 0.4 * lstm.mean, app
        assert hebbian.std < 10.0, app  # stable across seeds