"""A4 (§5.4): replay storage/selection variants.

The paper's experiments store *all* past examples; §5.4 lays out cheaper
designs (fixed buffer, confidence filtering, averaged prototypes,
generative replay).  This ablation reruns the Figure 3 protocol under
each variant and reports final old-pattern confidence vs storage used.
"""

from __future__ import annotations

from repro.harness.ablations import ablation_replay
from repro.harness.reporting import print_table


def test_ablation_replay_variants(benchmark):
    rows = benchmark.pedantic(ablation_replay, rounds=1, iterations=1)
    print_table(
        ["replay", "conf A before", "conf A after", "conf B after",
         "forgetting", "replayed pairs"],
        [[r["replay"], r["conf_A_before"], r["conf_A_after"],
          r["conf_B_after"], r["forgetting"], r["replayed_pairs"]]
         for r in rows],
        title="A4 (§5.4) — replay variants on stride -> pointer_chase")

    by_kind = {r["replay"]: r for r in rows}
    none = by_kind["none"]
    assert none["forgetting"] > 0.25  # interference present without replay

    # every storing variant beats no-replay on old-pattern retention
    for kind in ("full", "ring", "confidence", "prototype", "consolidating"):
        assert (by_kind[kind]["conf_A_after"]
                > none["conf_A_after"] + 0.1), kind
    # prototype replay achieves it with tiny storage (deduped transitions)
    assert by_kind["prototype"]["conf_A_after"] > 0.5
    # no variant blocks learning the new pattern
    for kind, row in by_kind.items():
        assert row["conf_B_after"] > 0.5, kind
