"""Figure 5: online memory prefetching performance of Hebbian vs LSTM.

The paper's setup: four applications, memory sized at 50% of the trace
footprint, both prefetchers deployed online as in Figure 1; metric = %
of misses removed vs no prefetching.  The claim: the Hebbian network is
*comparable* to the LSTM on every application at a fraction of the
resources (Table 2).

Traces are the synthetic application generators (DESIGN.md substitution
#1) at a bench-friendly length; scale ``N_ACCESSES`` up freely.
"""

from __future__ import annotations

import pytest

from repro.harness.fig5 import Fig5Config, run_fig5
from repro.harness.reporting import print_table

N_ACCESSES = 20_000

CONFIG = Fig5Config(n_accesses=N_ACCESSES, memory_fraction=0.5,
                    vocab_size=192, prefetch_length=2, prefetch_width=2,
                    seed=0)


@pytest.fixture(scope="module")
def result():
    return run_fig5(CONFIG, models=("hebbian", "lstm"))


def test_fig5_online_prefetching(benchmark, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)

    rows = []
    for app in CONFIG.applications:
        per_model = result.for_app(app)
        hebbian = per_model["cls-hebbian"]
        lstm = per_model["cls-lstm"]
        rows.append([app, hebbian.misses_baseline,
                     hebbian.percent_misses_removed,
                     lstm.percent_misses_removed,
                     hebbian.prefetch_accuracy, lstm.prefetch_accuracy])
    print_table(
        ["application", "baseline misses", "hebbian removed %",
         "lstm removed %", "hebbian accuracy", "lstm accuracy"],
        rows,
        title=f"Figure 5 — % misses removed ({N_ACCESSES} accesses/app, "
              "memory = 50% of footprint)")

    for app in CONFIG.applications:
        per_model = result.for_app(app)
        hebbian = per_model["cls-hebbian"].percent_misses_removed
        lstm = per_model["cls-lstm"].percent_misses_removed
        # both learners remove a meaningful share of misses...
        assert hebbian > 5.0, app
        assert lstm > 5.0, app
        # ...and the Hebbian network is comparable to the LSTM (the claim)
        assert hebbian > 0.5 * lstm, app
