"""PR 3 perf smoke: end-to-end CLS hot-path throughput.

Measures and records in ``BENCH_PR3.json`` (repo root):

1. **cls-hebbian ``simulate()``** — accesses/s for the Fig. 5 hebbian
   prefetcher on a resnet trace, the loop PR 3 optimized (fused
   step+rollout, sparse readout, delta-cached Eq. 1 updates, batched
   replay, the allocation-free simulator fast path).  The "before"
   number is commit ``4cddc15`` (PR 2 head) measured by this same
   best-of-3 protocol on the same machine.
2. **null / stride ``simulate()``** — no-regression guard for the
   simulator fast path; "before" numbers are the PR 1 "after" numbers
   from ``BENCH_PR1.json`` (same protocol).

The demand-miss count is asserted exactly: every PR 3 fast path is
bit-identical to the code it replaced, so the simulated outcome must
not move at all.  Throughput assertions are deliberately loose floors
(shared CI machines vary ±20%); the JSON carries the real numbers.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.baselines.classic import StridePrefetcher
from repro.harness.fig5 import Fig5Config, make_model_prefetcher
from repro.memsim.prefetcher import NullPrefetcher
from repro.memsim.simulator import SimConfig, simulate
from repro.patterns.applications import AppSpec, resnet_training

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_PR3.json"

SIM_TRACE_N = 200_000

#: Pre-PR 3 throughput (M accesses/s), measured at commit 4cddc15 with
#: this file's exact protocol (best of 3, resnet n=200k seed=1).
BEFORE_M_PER_S = {"cls-hebbian": 0.0156, "null": 1.374, "stride": 0.288}

#: Demand misses for the cls-hebbian cell — pinned because PR 3's fast
#: paths claim bit-identity, not mere statistical equivalence.
EXPECTED_CLS_DEMAND_MISSES = 91_384


def _prefetcher_factories():
    return (
        ("cls-hebbian", lambda: make_model_prefetcher("hebbian", Fig5Config())),
        ("null", NullPrefetcher),
        ("stride", StridePrefetcher),
    )


def bench_simulate() -> tuple[dict, dict[str, int]]:
    trace = resnet_training(AppSpec(n=SIM_TRACE_N, seed=1))
    sim_cfg = SimConfig(memory_fraction=0.5, prefetch_delay_accesses=4)
    out: dict = {"trace": f"resnet n={SIM_TRACE_N} seed=1",
                 "sim": "memory_fraction=0.5 delay=4",
                 "protocol": "best of 3, fresh prefetcher per run"}
    misses: dict[str, int] = {}
    for name, make in _prefetcher_factories():
        best = float("inf")
        runs = 3 if name == "cls-hebbian" else 4  # extra run = warmup
        for _ in range(runs):
            t0 = time.perf_counter()
            result = simulate(trace, make(), sim_cfg)
            best = min(best, time.perf_counter() - t0)
        misses[name] = result.demand_misses
        after = len(trace) / best / 1e6
        before = BEFORE_M_PER_S[name]
        out[name] = {
            "before_m_accesses_per_s": before,
            "after_m_accesses_per_s": round(after, 4),
            "speedup": round(after / before, 2),
            "demand_misses": result.demand_misses,
        }
    return out, misses


def test_perf_cls_hot_path():
    sim, misses = bench_simulate()

    report = {
        "pr": 3,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "before_commit": "4cddc15 (PR 2 head), same machine and protocol",
        "simulate": sim,
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(json.dumps(report, indent=2))
    print(f"\nwrote {BENCH_PATH}")

    # Bit-identity guard: the optimized path must simulate the exact
    # same outcome the seed path did.
    assert misses["cls-hebbian"] == EXPECTED_CLS_DEMAND_MISSES

    # Loose floors only — real numbers live in the JSON.
    assert sim["cls-hebbian"]["speedup"] >= 1.4
    assert sim["null"]["speedup"] >= 0.5
    assert sim["stride"]["speedup"] >= 0.5
