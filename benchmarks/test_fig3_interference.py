"""Figure 3: catastrophic interference (a-c) and the effect of replay (d-f).

The paper's protocol: train the LSTM online on pattern A (1000 accesses)
until confident, then train on pattern B; confidence on A collapses.  With
interleaved replay of stored A examples at a 0.1x learning rate, A's
confidence survives while B is still learned.

Prints the confidence series (red/old and blue/new curves of the figure)
and the summary per panel pair.
"""

from __future__ import annotations

import pytest

from repro.harness.interference import InterferenceConfig, run_interference
from repro.harness.models import experiment_hebbian, experiment_lstm
from repro.harness.reporting import format_series, print_table
from repro.patterns.phases import pattern_pairs

CONFIG = InterferenceConfig(n_accesses=1000, working_set=50, probe_len=100,
                            probe_every=200, seed=0)


def run_all():
    runs = []
    for pattern_a, pattern_b in pattern_pairs():
        for replay in (False, True):
            runs.append(run_interference(
                lambda v: experiment_lstm(v, seed=0),
                pattern_a, pattern_b, replay=replay, config=CONFIG))
    return runs


@pytest.fixture(scope="module")
def runs():
    return run_all()


def test_fig3_interference_and_replay(benchmark, runs):
    benchmark.pedantic(lambda: runs, rounds=1, iterations=1)
    print()
    print("Figure 3 — confidence curves (old pattern = the paper's red curve)")
    for run in runs:
        arm = "replay" if run.replay else "no-replay"
        print(f"  [{run.pattern_a} -> {run.pattern_b}] ({arm})")
        print("   ", format_series("old", *run.curve_a.as_arrays(),
                                   x_name="step", y_name="conf"))
        print("   ", format_series("new", *run.curve_b.as_arrays(),
                                   x_name="step", y_name="conf"))

    print_table(
        ["pair", "replay", "conf A before", "conf A after", "conf B after",
         "forgetting"],
        [[f"{r.pattern_a}->{r.pattern_b}", r.replay,
          r.summary.conf_a_before, r.summary.conf_a_after,
          r.summary.conf_b_after, r.summary.forgetting]
         for r in runs],
        title="Figure 3 — interference summary")

    for pattern_a, pattern_b in pattern_pairs():
        pair = [r for r in runs
                if (r.pattern_a, r.pattern_b) == (pattern_a, pattern_b)]
        no_replay = next(r for r in pair if not r.replay)
        with_replay = next(r for r in pair if r.replay)
        # (a-c): A was learned, then forgotten while B was learned
        assert no_replay.summary.conf_a_before > 0.6
        assert no_replay.summary.forgetting > 0.25, (pattern_a, pattern_b)
        assert no_replay.summary.conf_b_after > 0.5
        # (d-f): replay preserves A without blocking B
        assert (with_replay.summary.conf_a_after
                > no_replay.summary.conf_a_after + 0.15), (pattern_a, pattern_b)
        assert with_replay.summary.conf_b_after > 0.5


def test_fig3_hebbian_pattern_separation(benchmark):
    """The CLS counterpart result: the *sparse* network barely interferes.

    CLS theory predicts catastrophic interference for dense, overlapping
    representations (the LSTM above) and resistance for sparse, separated
    ones.  Running the same protocol on the Hebbian network shows exactly
    that: distinct patterns land on nearly disjoint codes and old-pattern
    confidence survives learning the new pattern *without any replay* —
    replay is the cure for the dense learner specifically.
    """
    def run_all():
        return [run_interference(lambda v: experiment_hebbian(v, seed=0),
                                 a, b, replay=False, config=CONFIG)
                for a, b in pattern_pairs()]

    runs = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        ["pair", "conf A before", "conf A after", "conf B after",
         "forgetting"],
        [[f"{r.pattern_a}->{r.pattern_b}", r.summary.conf_a_before,
          r.summary.conf_a_after, r.summary.conf_b_after,
          r.summary.forgetting] for r in runs],
        title="Figure 3 counterpart — sparse Hebbian net, NO replay")
    for run in runs:
        assert run.summary.conf_a_before > 0.3   # pattern A was learned
        assert run.summary.forgetting < 0.15, (run.pattern_a, run.pattern_b)
