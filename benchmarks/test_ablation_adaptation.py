"""A10 (§1): adaptation speed after a phase switch.

"A prefetcher's ability to adapt to new access patterns as they emerge is
becoming more crucial than ever."  We switch pointer structures mid-trace
and measure windowed miss removal after the switch.  The complementary-
learning-systems story appears directly in the learning curves: the
one-shot hippocampal recall path adapts within the first window, while
the gradient learner needs several windows to consolidate — and then
wins steady-state.  That fast/slow complementarity is Figure 4's whole
point.
"""

from __future__ import annotations

from collections import defaultdict

from repro.harness.ablations import ablation_adaptation
from repro.harness.reporting import format_series, print_table


def test_ablation_adaptation_speed(benchmark):
    rows = benchmark.pedantic(ablation_adaptation, rounds=1, iterations=1)
    curves: dict[str, list[float]] = defaultdict(list)
    for row in rows:
        curves[row["model"]].append(row["misses_removed_pct"])

    print()
    print("A10 — windowed % misses removed after the phase switch")
    for model, values in curves.items():
        print(" ", format_series(model, list(range(len(values))), values,
                                 x_name="window", y_name="removed %"))

    print_table(
        ["model", "first window", "last window"],
        [[m, v[0], v[-1]] for m, v in curves.items()],
        title="A10 — immediate vs consolidated adaptation")

    recall = curves["hebbian+recall"]
    hebbian = curves["hebbian"]
    lstm = curves["lstm"]
    # one-shot recall adapts within the FIRST window...
    assert recall[0] > lstm[0] + 15.0
    assert recall[0] > hebbian[0] + 15.0
    # ...the gradient learners need consolidation time but catch up
    assert lstm[-1] > lstm[0] + 20.0
    assert hebbian[-1] > hebbian[0] + 15.0
    # steady-state: the consolidated learner at least matches recall
    assert lstm[-1] > recall[-1] - 5.0
