"""PR 1 perf smoke: throughput of the three optimized tiers.

Measures and records in ``BENCH_PR1.json`` (repo root):

1. **Hebbian ``step()``** — the CSR-kernel :class:`SparseHebbianNetwork`
   vs the live-measured dense seed implementation
   (:class:`DenseHebbianReference`), on a cyclic (learnable, the
   prefetcher's operating regime) and a uniform-random stream.
2. **``simulate()``** — accesses/s on a resnet trace with the null and
   stride prefetchers.  The "before" numbers are the seed implementation
   measured by this same protocol at PR 1 (commit ``1bea3a2``); the seed
   loop no longer exists to re-measure.
3. **One harness grid** — a ``fig5_seed_sweep`` grid serial vs ``jobs=4``
   vs a second, cache-served invocation, with row-identity asserted.

Assertions are deliberately loose floors (CI machines vary); the JSON
carries the real numbers so the perf trajectory is tracked across PRs.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.harness.fig5 import Fig5Config
from repro.harness.variance import fig5_seed_sweep
from repro.nn.hebbian import HebbianConfig, SparseHebbianNetwork
from repro.nn.hebbian_reference import DenseHebbianReference
from repro.baselines.classic import StridePrefetcher
from repro.memsim.prefetcher import NullPrefetcher
from repro.memsim.simulator import SimConfig, simulate
from repro.patterns.applications import AppSpec, resnet_training

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_PR1.json"

#: Seed-implementation simulate() throughput (M accesses/s), measured at
#: PR 1 on the protocol below against commit 1bea3a2.
SIMULATE_BEFORE_M_PER_S = {"null": 0.489, "stride": 0.231}

N_MODEL_STEPS = 4_000
SIM_TRACE_N = 200_000


def _best_pass_steps_per_s(model, passes: list[list[int]]) -> float:
    """Feed each pass to the (stateful) model; return the best throughput.

    The first pass doubles as warmup: it reaches the learned steady state,
    which is the regime an online prefetcher actually runs in.
    """
    best = 0.0
    for stream in passes:
        start = time.perf_counter()
        for class_id in stream:
            model.step(class_id)
        best = max(best, len(stream) / (time.perf_counter() - start))
    return best


def _model_passes(config: HebbianConfig) -> dict[str, list[list[int]]]:
    rng = np.random.default_rng(17)
    cycle = [int(c) for c in rng.permutation(min(60, config.vocab_size))]
    reps = N_MODEL_STEPS // len(cycle) + 1
    cyclic = (cycle * reps)[:N_MODEL_STEPS]
    return {
        # the same cycle every pass: the repeating-pattern regime
        "cyclic": [cyclic] * 4,
        # fresh draws every pass: no context ever repeats
        "random": [[int(c) for c in
                    rng.integers(0, config.vocab_size, size=N_MODEL_STEPS)]
                   for _ in range(4)],
    }


def bench_hebbian() -> dict:
    config = HebbianConfig()
    out: dict = {"config": "HebbianConfig() defaults",
                 "steps": N_MODEL_STEPS}
    for name, passes in _model_passes(config).items():
        after = _best_pass_steps_per_s(SparseHebbianNetwork(config), passes)
        before = _best_pass_steps_per_s(DenseHebbianReference(config), passes)
        out[name] = {
            "before_steps_per_s": round(before),
            "after_steps_per_s": round(after),
            "speedup": round(after / before, 2),
        }
    return out


def bench_simulate() -> dict:
    trace = resnet_training(AppSpec(n=SIM_TRACE_N, seed=1))
    sim_cfg = SimConfig(memory_fraction=0.5, prefetch_delay_accesses=4)
    out: dict = {"trace": f"resnet n={SIM_TRACE_N} seed=1",
                 "sim": "memory_fraction=0.5 delay=4"}
    for name, make in (("null", NullPrefetcher), ("stride", StridePrefetcher)):
        simulate(trace, make(), sim_cfg)  # warmup
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            simulate(trace, make(), sim_cfg)
            best = min(best, time.perf_counter() - t0)
        after = len(trace) / best / 1e6
        before = SIMULATE_BEFORE_M_PER_S[name]
        out[name] = {
            "before_m_accesses_per_s": before,
            "after_m_accesses_per_s": round(after, 3),
            "speedup": round(after / before, 2),
        }
    return out


def bench_harness_grid(cache_dir: Path) -> tuple[dict, bool]:
    # 4 seeds x 4 apps x 1 model = 16 cells: enough work per cell and
    # enough cells to balance the skew (resnet cells dominate).
    seeds = (0, 1, 2, 3)
    config = Fig5Config(n_accesses=20_000)
    models = ("hebbian",)

    t0 = time.perf_counter()
    # jobs=1 pins the serial leg: jobs=None now auto-detects from the
    # CPU count (PR 3) and would fan out on multi-core machines.
    serial = fig5_seed_sweep(seeds, config, models=models, jobs=1)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = fig5_seed_sweep(seeds, config, models=models, jobs=4,
                               cache_dir=cache_dir)
    jobs4_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    cached = fig5_seed_sweep(seeds, config, models=models, jobs=4,
                             cache_dir=cache_dir)
    cached_s = time.perf_counter() - t0

    identical = serial == parallel == cached
    return {
        "grid": f"fig5 seed sweep: {len(seeds)} seeds x "
                f"{len(config.applications)} apps x {len(models)} model, "
                f"n={config.n_accesses}",
        # parallel speedup is bounded by the machine: on a 1-core runner
        # jobs=4 can only measure IPC overhead, never a speedup
        "cpu_count": os.cpu_count(),
        "serial_s": round(serial_s, 2),
        "jobs4_s": round(jobs4_s, 2),
        "parallel_speedup": round(serial_s / jobs4_s, 2),
        "cached_s": round(cached_s, 3),
        "cache_speedup": round(serial_s / cached_s, 1),
    }, identical


def test_perf_throughput(tmp_path):
    hebbian = bench_hebbian()
    sim = bench_simulate()
    grid, grid_identical = bench_harness_grid(tmp_path / "cache")

    report = {
        "pr": 1,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "hebbian_step": hebbian,
        "simulate": sim,
        "harness_grid": grid,
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(json.dumps(report, indent=2))
    print(f"\nwrote {BENCH_PATH}")

    # Loose floors only — real numbers live in the JSON.
    assert grid_identical, "serial / jobs=4 / cached fig5 rows diverged"
    assert hebbian["cyclic"]["speedup"] >= 2.5
    assert hebbian["random"]["speedup"] >= 1.3
    assert sim["null"]["after_m_accesses_per_s"] >= 0.3
    assert grid["cache_speedup"] >= 2.0
