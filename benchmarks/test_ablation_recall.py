"""A8 (Figure 4): the hippocampal recall fast path.

CLS theory's hippocampus does more than feed replay: it *answers* from
one-shot memories while the neocortex slowly consolidates.  This ablation
measures that complementarity: on a fresh pattern, recall converts
transitions seen once into immediate prefetches; once the neocortex is
confident, recall stops being consulted.
"""

from __future__ import annotations

from repro.core.cls_prefetcher import CLSPrefetcher, CLSPrefetcherConfig
from repro.harness.models import experiment_hebbian_config
from repro.harness.reporting import print_table
from repro.memsim.simulator import SimConfig, baseline_misses, simulate
from repro.patterns.generators import PatternSpec, pointer_chase


def run_recall_comparison(n_accesses: int = 6_000, working_set: int = 250,
                          seed: int = 3) -> list[dict]:
    trace = pointer_chase(PatternSpec(n=n_accesses, working_set=working_set,
                                      element_size=4096, seed=seed))
    sim_cfg = SimConfig(memory_fraction=0.5)
    baseline = baseline_misses(trace, sim_cfg)

    rows = []
    for recall in (False, True):
        prefetcher = CLSPrefetcher(CLSPrefetcherConfig(
            model="hebbian", vocab_size=512, encoder="page",
            hebbian=experiment_hebbian_config(512, seed),
            prefetch_length=1, prefetch_width=1,
            min_confidence=0.25, recall=recall, seed=seed))
        run = simulate(trace, prefetcher, sim_cfg)
        # early window: misses in the first quarter of the trace
        rows.append({
            "recall": recall,
            "misses_removed_pct": run.percent_misses_removed(baseline),
            "accuracy": run.stats.prefetch_accuracy,
            "recall_consulted": prefetcher.recall_stats.consulted,
            "recall_answered": prefetcher.recall_stats.answered,
        })
    return rows


def test_ablation_hippocampal_recall(benchmark):
    rows = benchmark.pedantic(run_recall_comparison, rounds=1, iterations=1)
    print_table(
        ["recall", "misses removed %", "accuracy", "consulted", "answered"],
        [[r["recall"], r["misses_removed_pct"], r["accuracy"],
          r["recall_consulted"], r["recall_answered"]] for r in rows],
        title="A8 (Fig. 4) — hippocampal recall fast path on a fresh "
              "pointer chase")

    without = next(r for r in rows if not r["recall"])
    with_recall = next(r for r in rows if r["recall"])
    # one-shot recall lifts miss removal on the fresh pattern...
    assert (with_recall["misses_removed_pct"]
            > without["misses_removed_pct"] + 5.0)
    # ...without costing accuracy
    assert with_recall["accuracy"] > 0.9
    assert with_recall["recall_answered"] > 0
