"""A1 (§5.1): training-instance sampling policies.

Training on every miss is the paper's experimental setting but "can be
unnecessary and resource-consuming".  This ablation measures how much
accuracy each cheaper policy gives up per training step saved.
"""

from __future__ import annotations

from repro.harness.ablations import ablation_sampling
from repro.harness.reporting import print_table


def test_ablation_training_sampling(benchmark):
    rows = benchmark.pedantic(lambda: ablation_sampling(n_accesses=15_000),
                              rounds=1, iterations=1)
    print_table(
        ["policy", "trained steps", "considered", "train fraction",
         "misses removed %"],
        [[r["policy"], r["trained_steps"], r["considered"],
          r["train_fraction"], r["misses_removed_pct"]] for r in rows],
        title="A1 (§5.1) — training-instance sampling on resnet")

    by_policy = {r["policy"]: r for r in rows}
    always = by_policy["always"]
    assert always["train_fraction"] == 1.0

    # confidence filtering trains less than always...
    confidence = by_policy["confidence<0.9"]
    assert confidence["trained_steps"] < always["trained_steps"]
    # ...while keeping most of the benefit (the §5.1 hypothesis)
    assert (confidence["misses_removed_pct"]
            > 0.7 * always["misses_removed_pct"])
    # blind decimation gives up more accuracy per saved step than
    # confidence filtering at a comparable training budget
    every4 = by_policy["every4"]
    assert every4["trained_steps"] < always["trained_steps"]
