"""repro-lint: determinism & contract static analysis for this repo.

The paper's claims only reproduce if every run is bit-deterministic given
a spec, and the ``sha256(spec)`` disk cache in :mod:`repro.harness.runner`
silently serves stale results if any hidden input sneaks into a cell.
This package enforces those invariants mechanically.

Per-file AST rules:

========  ============================================================
RL001     unseeded/legacy/arithmetic-derived NumPy RNG seeding
RL002     wall-clock & environment nondeterminism in simulator zones
RL003     float ``==`` / ``!=`` comparisons outside tests
RL004     mutable default arguments
RL005     non-JSON-serializable ``*Spec``/``*Config`` dataclass fields
RL006     public functions missing type annotations
RL007     bare/swallowed exceptions in simulator hot paths
========  ============================================================

Whole-program dataflow rules (the RL100 series, built on
:mod:`repro.analysis.dataflow` — project symbol table, call graph,
def-use chains, inter-procedural taint):

========  ============================================================
RL101     volatile data (env, clock, ids, ambient backend/telemetry
          state) flowing into ``spec_key``/cache-key computation
RL102     compiled-backend kernel signature/registration drift vs the
          numpy reference; reference imports from hot paths
RL103     shared mutable module globals, ambient state writes outside
          ``zone=init`` functions, cross-class attribute writes
========  ============================================================

Run via ``repro-lint [paths]`` or ``python -m repro.analysis [paths]``.
Suppress a single line with ``# repro-lint: disable=RLxxx``; sanction a
deliberate ambient-state zone with ``# repro-lint: zone=<name>`` (on a
``def`` line, the zone covers the whole function).  ``--format sarif``
emits SARIF 2.1.0 for CI code scanning.
"""

from __future__ import annotations

from .engine import iter_python_files, lint_file, lint_paths
from .finding import Finding
from .rules import (ALL_RULES, PROJECT_RULES, RULES_BY_CODE, ProjectRule,
                    Rule, get_rules)

__all__ = [
    "ALL_RULES",
    "Finding",
    "PROJECT_RULES",
    "ProjectRule",
    "RULES_BY_CODE",
    "Rule",
    "get_rules",
    "iter_python_files",
    "lint_file",
    "lint_paths",
]
