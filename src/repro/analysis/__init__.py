"""repro-lint: determinism & contract static analysis for this repo.

The paper's claims only reproduce if every run is bit-deterministic given
a spec, and the ``sha256(spec)`` disk cache in :mod:`repro.harness.runner`
silently serves stale results if any hidden input sneaks into a cell.
This package enforces those invariants mechanically, with repro-specific
AST rules:

========  ============================================================
RL001     unseeded/legacy/arithmetic-derived NumPy RNG seeding
RL002     wall-clock & environment nondeterminism in simulator zones
RL003     float ``==`` / ``!=`` comparisons outside tests
RL004     mutable default arguments
RL005     non-JSON-serializable ``*Spec``/``*Config`` dataclass fields
RL006     public functions missing type annotations
RL007     bare/swallowed exceptions in simulator hot paths
========  ============================================================

Run via ``repro-lint [paths]`` or ``python -m repro.analysis [paths]``.
Suppress a single line with ``# repro-lint: disable=RLxxx``.
"""

from __future__ import annotations

from .engine import iter_python_files, lint_file, lint_paths
from .finding import Finding
from .rules import ALL_RULES, RULES_BY_CODE, Rule, get_rules

__all__ = [
    "ALL_RULES",
    "Finding",
    "RULES_BY_CODE",
    "Rule",
    "get_rules",
    "iter_python_files",
    "lint_file",
    "lint_paths",
]
