"""``# repro-lint: disable=RLxxx`` suppression comments.

A suppression comment silences findings reported **on the same physical
line** (the line the rule attaches the finding to — usually the statement
that starts the construct).  Codes are comma-separated; ``all`` silences
every rule on that line:

    na = 0.0
    if na == 0.0:  # repro-lint: disable=RL003  (exact-zero guard is intended)
        ...
"""

from __future__ import annotations

import io
import re
import tokenize

from .finding import Finding

_DIRECTIVE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")

#: Line number -> suppressed rule codes for one file.
Suppressions = dict[int, frozenset[str]]


def collect_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> set of suppressed rule codes (upper-cased)."""
    suppressed: dict[int, frozenset[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [(tok.start[0], tok.string) for tok in tokens
                    if tok.type == tokenize.COMMENT]
    except tokenize.TokenError:
        return suppressed
    for line, text in comments:
        match = _DIRECTIVE.search(text)
        if match is None:
            continue
        codes = frozenset(
            code.strip().upper() for code in match.group(1).split(",") if code.strip()
        )
        if codes:
            suppressed[line] = suppressed.get(line, frozenset()) | codes
    return suppressed


def is_suppressed(finding: Finding, suppressions: dict[int, frozenset[str]]) -> bool:
    codes = suppressions.get(finding.line)
    if not codes:
        return False
    return finding.code.upper() in codes or "ALL" in codes
