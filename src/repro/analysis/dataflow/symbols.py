"""Project-wide symbol table: qualified names -> definitions.

Built on top of :class:`~repro.analysis.dataflow.modules.ModuleTable`,
this answers two questions the RL100 rules keep asking:

- what does local name ``backends.get_default_backend`` mean *in this
  module* (absolute dotted name, following absolute/relative/star
  imports and chains of module re-exports)?
- is that dotted name a function/class/method defined *in the project*,
  and if so, where?
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from .modules import ModuleInfo, ModuleTable

#: Resolution fuel: import chains (module re-exporting a re-export)
#: longer than this are treated as unresolvable rather than looped on.
_MAX_HOPS = 16


@dataclass(frozen=True)
class Symbol:
    """One project definition reachable by qualified dotted name."""

    qualname: str              # e.g. ``repro.harness.runner.spec_key``
    kind: str                  # "function" | "class" | "method"
    module: ModuleInfo
    node: ast.AST
    owner_class: str | None = None   # class name for methods


class SymbolTable:
    def __init__(self, table: ModuleTable) -> None:
        self._modules = table
        self._symbols: dict[str, Symbol] = {}
        for info in table.modules():
            self._index_module(info)

    def _index_module(self, info: ModuleInfo) -> None:
        for node in info.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._symbols[f"{info.name}.{node.name}"] = Symbol(
                    qualname=f"{info.name}.{node.name}", kind="function",
                    module=info, node=node)
            elif isinstance(node, ast.ClassDef):
                cls_qual = f"{info.name}.{node.name}"
                self._symbols[cls_qual] = Symbol(
                    qualname=cls_qual, kind="class", module=info, node=node)
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        qual = f"{cls_qual}.{item.name}"
                        self._symbols[qual] = Symbol(
                            qualname=qual, kind="method", module=info,
                            node=item, owner_class=node.name)

    def lookup(self, qualname: str) -> Symbol | None:
        return self._symbols.get(qualname)

    def symbols(self) -> list[Symbol]:
        return [self._symbols[name] for name in sorted(self._symbols)]

    def _module_binding(self, info: ModuleInfo, head: str) -> str | None:
        """What top-level name ``head`` means inside ``info``, if known."""
        target = info.imports.get(head)
        if target is not None:
            return target
        if self.lookup(f"{info.name}.{head}") is not None:
            return f"{info.name}.{head}"
        for starred in info.star_imports:
            star_mod = self._modules.get(starred)
            if star_mod is None:
                continue
            resolved = self._module_binding(star_mod, head)
            if resolved is not None:
                return resolved
        return None

    def resolve(self, info: ModuleInfo, dotted: str) -> str | None:
        """Absolute dotted name of ``dotted`` as seen from ``info``.

        Follows import bindings hop by hop: if the head resolves to a
        project module, the next segment is looked up in *that* module's
        bindings (so ``from . import runner`` + ``runner.spec_key``
        lands on ``repro.harness.runner.spec_key`` even through
        re-exports).  Unresolvable names return the best-effort absolute
        form for external packages, or ``None`` when the head is not a
        known binding at all.
        """
        head, _, rest = dotted.partition(".")
        target = self._module_binding(info, head)
        if target is None:
            return None
        for _ in range(_MAX_HOPS):
            current = f"{target}.{rest}" if rest else target
            if not rest:
                return current
            if self.lookup(current) is not None:
                return current
            mod = self._modules.get(target)
            if mod is None:
                return current
            seg, _, rest2 = rest.partition(".")
            hop = self._module_binding(mod, seg)
            if hop is None:
                # ``target`` is a project module but ``seg`` is not a
                # binding in it — e.g. a module-level data global.
                return current
            target, rest = hop, rest2
        return None

    def resolve_expr(self, info: ModuleInfo, node: ast.expr) -> str | None:
        """Absolute dotted name of a Name/Attribute chain, or None."""
        dotted = dotted_name(node)
        if dotted is None:
            return None
        return self.resolve(info, dotted)


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))
