"""Whole-program dataflow layer under repro-lint (PR 7).

The per-line rules RL001-RL007 see one file at a time; the RL100-series
contract rules need facts that only exist across files: which module a
name was imported from, who calls whom, which expressions a value can
flow through, and where ambient per-process state lives.  This package
derives those facts once per lint invocation:

- :mod:`~repro.analysis.dataflow.modules` — module discovery and import
  resolution (absolute, relative, and star imports over the linted set).
- :mod:`~repro.analysis.dataflow.symbols` — the project-wide symbol
  table mapping qualified dotted names to definitions.
- :mod:`~repro.analysis.dataflow.callgraph` — functions, methods, and
  resolved call edges (decorator- and cycle-tolerant).
- :mod:`~repro.analysis.dataflow.defuse` — intra-procedural def-use
  chains per function.
- :mod:`~repro.analysis.dataflow.taint` — the conservative
  inter-procedural taint fixpoint RL101 runs on.
- :mod:`~repro.analysis.dataflow.project` — :class:`ProjectContext`,
  the facade the project rules receive, plus the shared ambient-state
  inventory RL101 and RL103 both read.

Everything here is *conservative in the no-false-positive direction*:
unresolvable constructs (dynamic dispatch, ``getattr``, aliasing through
data structures) drop out of the analysis rather than guessing, so a
finding always corresponds to a flow the AST actually shows.
"""

from __future__ import annotations

from .callgraph import CallGraph, FunctionInfo
from .defuse import FunctionFlow
from .modules import ModuleInfo, ModuleTable, module_name_for
from .project import AmbientGlobal, ProjectContext
from .symbols import SymbolTable
from .taint import TaintEngine, TaintHit

__all__ = [
    "AmbientGlobal",
    "CallGraph",
    "FunctionFlow",
    "FunctionInfo",
    "ModuleInfo",
    "ModuleTable",
    "ProjectContext",
    "SymbolTable",
    "TaintEngine",
    "TaintHit",
    "module_name_for",
]
