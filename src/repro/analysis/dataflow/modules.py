"""Module discovery and project-aware import resolution.

A lint invocation hands the dataflow layer a set of already-parsed
files; this module decides what *module* each file is (by walking up
through ``__init__.py`` packages, so ``src/repro/harness/runner.py``
becomes ``repro.harness.runner`` regardless of the lint root), and
resolves each file's imports into that shared module namespace —
including the relative imports (``from ..nn import backends``) the
per-file :class:`~repro.analysis.context.FileContext` deliberately
skips, and star imports over project modules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path``, derived from its package chain.

    Walks parents while an ``__init__.py`` marks them as packages; a
    file outside any package is its own single-segment module.
    """
    resolved = path.resolve()
    parts = [resolved.stem] if resolved.stem != "__init__" else []
    parent = resolved.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if not parts:  # a bare __init__.py outside any package chain
        parts = [resolved.parent.name]
    return ".".join(reversed(parts))


@dataclass
class ModuleInfo:
    """One project module: its AST plus resolved import bindings."""

    name: str
    path: Path
    display_path: str
    tree: ast.Module
    #: local name -> dotted target in module space (may point at a
    #: module, a symbol inside one, or an external package).
    imports: dict[str, str] = field(default_factory=dict)
    #: dotted module names star-imported by this module, in order.
    star_imports: list[str] = field(default_factory=list)

    @property
    def package(self) -> str:
        """The package this module lives in (its own name for packages)."""
        if self.path.name == "__init__.py":
            return self.name
        return self.name.rpartition(".")[0]

    def is_package_init(self) -> bool:
        return self.path.name == "__init__.py"


def _resolve_relative(module: str, is_package: bool, level: int,
                      target: str | None) -> str | None:
    """Absolute dotted base for a level-``level`` relative import."""
    parts = module.split(".")
    # ``from . import x`` inside pkg/__init__.py refers to pkg itself;
    # inside pkg/mod.py it refers to pkg.  Packages count as one level
    # shallower than their __init__ file path suggests.
    drop = level - 1 if is_package else level
    if drop >= len(parts) and not (drop == len(parts) and not target):
        return None
    base_parts = parts[: len(parts) - drop] if drop else parts
    if not base_parts:
        return target
    base = ".".join(base_parts)
    return f"{base}.{target}" if target else base


def collect_bindings(info: ModuleInfo) -> None:
    """Fill ``info.imports`` / ``info.star_imports`` from the AST.

    Walks the whole tree (imports inside functions bind function-locals,
    but treating them as module-wide is conservative for name
    resolution and matches how the per-file context behaves).
    """
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    info.imports[alias.asname] = alias.name
                else:
                    head = alias.name.partition(".")[0]
                    info.imports[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = _resolve_relative(info.name, info.is_package_init(),
                                         node.level, node.module)
                if base is None:
                    continue
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    if base:
                        info.star_imports.append(base)
                    continue
                local = alias.asname or alias.name
                info.imports[local] = (f"{base}.{alias.name}" if base
                                       else alias.name)


class ModuleTable:
    """All modules in one lint invocation, keyed by dotted name.

    Two files mapping to the same dotted name (possible when linting
    disjoint fixture trees together) keep the first one — the analysis
    stays deterministic and conservative rather than merging namespaces.
    """

    def __init__(self) -> None:
        self._by_name: dict[str, ModuleInfo] = {}
        self._by_path: dict[Path, ModuleInfo] = {}

    def add(self, path: Path, tree: ast.Module, display_path: str) -> ModuleInfo:
        resolved = path.resolve()
        existing = self._by_path.get(resolved)
        if existing is not None:
            return existing
        info = ModuleInfo(name=module_name_for(path), path=resolved,
                          display_path=display_path, tree=tree)
        collect_bindings(info)
        self._by_path[resolved] = info
        self._by_name.setdefault(info.name, info)
        return info

    def get(self, name: str) -> ModuleInfo | None:
        return self._by_name.get(name)

    def modules(self) -> list[ModuleInfo]:
        """All modules, sorted by dotted name for deterministic output."""
        return [self._by_name[name] for name in sorted(self._by_name)]

    def in_package(self, package: str) -> list[ModuleInfo]:
        """Modules whose dotted name sits directly under ``package``."""
        return [info for info in self.modules()
                if info.name == package
                or info.name.rpartition(".")[0] == package]
