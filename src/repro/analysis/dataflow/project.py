"""Project-level analysis context handed to the RL100-series rules.

Built once per lint invocation from every file the engine parsed.  On
top of the module/symbol/call-graph layers it derives the **ambient
state inventory** that RL101 (cache-key purity) and RL103 (concurrency
hazards) both read:

- module-level globals, with mutability classification;
- every mutation of those globals (``global`` rebinding, container
  mutation, cross-module attribute writes);
- instance attributes written via ``self.`` per class, split by whether
  the write happens inside ``__init__``;
- ``# repro-lint: zone=<name>`` annotations, resolved to the line
  ranges they sanction (a marker on a ``def`` line covers the whole
  function, a marker on any other line covers that line).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from functools import cached_property

from ..context import FileContext
from .callgraph import CallGraph
from .modules import ModuleInfo, ModuleTable
from .symbols import SymbolTable, dotted_name
from .taint import TaintEngine

#: Containers whose module-level presence means shared mutable state.
MUTABLE_FACTORIES = frozenset({
    "dict", "list", "set", "bytearray", "deque", "defaultdict",
    "OrderedDict", "Counter", "ChainMap",
})

#: Wrappers that make an otherwise-mutable literal read-only.
IMMUTABLE_WRAPPERS = frozenset({"MappingProxyType", "frozenset", "tuple"})

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset({
    "append", "add", "update", "pop", "clear", "setdefault", "extend",
    "insert", "remove", "discard", "popitem", "appendleft", "popleft",
    "sort", "reverse", "__setitem__",
})

_ZONE_DIRECTIVE = re.compile(r"#\s*repro-lint:\s*zone=([A-Za-z0-9_-]+)")


def is_mutable_value(node: ast.expr) -> bool:
    """Whether a module-level RHS builds a mutable container."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is None:
            return False
        base = name.rpartition(".")[2]
        if base in IMMUTABLE_WRAPPERS:
            return False
        return base in MUTABLE_FACTORIES
    return False


@dataclass(frozen=True)
class AmbientGlobal:
    """One module-level global participating in per-process state."""

    module: str
    name: str
    lineno: int
    display_path: str
    mutable: bool
    constant_styled: bool     # ALL_CAPS naming (leading underscores ok)

    @property
    def qualname(self) -> str:
        return f"{self.module}.{self.name}"


@dataclass(frozen=True)
class GlobalMutation:
    """One write to ambient module state (rebinding or container op)."""

    target: str              # qualname of the global being written
    display_path: str
    lineno: int
    function: str | None     # enclosing function qualname, if any
    kind: str                # "global-rebind" | "container" | "cross-module"


@dataclass
class ClassAttrWrites:
    """Where a class writes its own instance attributes."""

    qualname: str
    init_attrs: set[str] = field(default_factory=set)
    method_attrs: set[str] = field(default_factory=set)   # outside __init__


class ProjectContext:
    """Everything the project-scope rules know about one lint run."""

    def __init__(self, contexts: list[FileContext]) -> None:
        self.contexts = contexts
        self.modules = ModuleTable()
        self._module_of: dict[str, ModuleInfo] = {}
        for ctx in contexts:
            info = self.modules.add(ctx.path, ctx.tree, ctx.display_path)
            self._module_of[ctx.display_path] = info
        self.symbols = SymbolTable(self.modules)
        self.callgraph = CallGraph(self.modules, self.symbols)
        self._zones: dict[str, dict[int, str]] = {
            ctx.display_path: collect_zone_lines(ctx.source)
            for ctx in contexts
        }

    def module_for(self, display_path: str) -> ModuleInfo | None:
        return self._module_of.get(display_path)

    # -- zone annotations -------------------------------------------------
    def zone_at(self, display_path: str, lineno: int) -> str | None:
        """Zone sanctioning ``lineno``: a marker on the line itself, or
        on the ``def`` line of the innermost enclosing function."""
        zones = self._zones.get(display_path, {})
        direct = zones.get(lineno)
        if direct is not None:
            return direct
        for start, end, zone in self._function_zone_ranges(display_path):
            if start <= lineno <= end:
                return zone
        return None

    @cached_property
    def _zone_ranges(self) -> dict[str, list[tuple[int, int, str]]]:
        out: dict[str, list[tuple[int, int, str]]] = {}
        for ctx in self.contexts:
            zones = self._zones.get(ctx.display_path, {})
            ranges: list[tuple[int, int, str]] = []
            if zones:
                for node in ast.walk(ctx.tree):
                    if isinstance(node, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        zone = zones.get(node.lineno)
                        if zone is not None:
                            end = getattr(node, "end_lineno", node.lineno)
                            ranges.append((node.lineno, end or node.lineno,
                                           zone))
            out[ctx.display_path] = ranges
        return out

    def _function_zone_ranges(self,
                              display_path: str) -> list[tuple[int, int, str]]:
        return self._zone_ranges.get(display_path, [])

    # -- ambient state inventory ------------------------------------------
    @cached_property
    def ambient_globals(self) -> dict[str, AmbientGlobal]:
        out: dict[str, AmbientGlobal] = {}
        for info in self.modules.modules():
            for node in info.tree.body:
                targets: list[ast.expr]
                value: ast.expr | None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign):
                    targets, value = [node.target], node.value
                else:
                    continue
                if value is None:
                    continue
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    name = target.id
                    if name.startswith("__") and name.endswith("__"):
                        continue
                    bare = name.lstrip("_")
                    g = AmbientGlobal(
                        module=info.name, name=name, lineno=node.lineno,
                        display_path=info.display_path,
                        mutable=is_mutable_value(value),
                        constant_styled=bool(bare) and bare == bare.upper())
                    out[g.qualname] = g
        return out

    @cached_property
    def global_mutations(self) -> list[GlobalMutation]:
        out: list[GlobalMutation] = []
        for fn in self.callgraph.functions():
            info = fn.module
            seen_globals: set[str] = set()
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Global):
                    seen_globals.update(node.names)
            for node in ast.walk(fn.node):
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (node.targets
                               if isinstance(node, ast.Assign)
                               else [node.target])
                    for target in targets:
                        out.extend(self._mutation_for_target(
                            fn.qualname, info, target, node.lineno,
                            seen_globals))
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    out.extend(self._mutation_for_target(
                        fn.qualname, info, node.target, node.lineno,
                        seen_globals))
                elif isinstance(node, ast.Delete):
                    for target in node.targets:
                        out.extend(self._mutation_for_target(
                            fn.qualname, info, target, node.lineno,
                            seen_globals))
                elif isinstance(node, ast.Call):
                    mutation = self._mutator_call(fn.qualname, info, node)
                    if mutation is not None:
                        out.append(mutation)
        return out

    def _mutation_for_target(self, function: str, info: ModuleInfo,
                             target: ast.expr, lineno: int,
                             declared_global: set[str]) -> list[GlobalMutation]:
        out: list[GlobalMutation] = []
        if isinstance(target, ast.Name):
            if target.id in declared_global:
                qual = f"{info.name}.{target.id}"
                out.append(GlobalMutation(
                    target=qual, display_path=info.display_path,
                    lineno=lineno, function=function,
                    kind="global-rebind"))
            return out
        # Subscript/attribute store: find the root and classify.
        root = target
        while isinstance(root, (ast.Subscript, ast.Attribute)):
            root = root.value
        if not isinstance(root, ast.Name):
            return out
        if isinstance(target, ast.Subscript):
            qual = self._global_qualname(info, target.value, declared_global)
            if qual is not None:
                out.append(GlobalMutation(
                    target=qual, display_path=info.display_path,
                    lineno=lineno, function=function, kind="container"))
        elif isinstance(target, ast.Attribute):
            qual = self._cross_module_attr(info, target)
            if qual is not None:
                out.append(GlobalMutation(
                    target=qual, display_path=info.display_path,
                    lineno=lineno, function=function, kind="cross-module"))
        return out

    def _global_qualname(self, info: ModuleInfo, base: ast.expr,
                         declared_global: set[str]) -> str | None:
        """Qualname when ``base`` names a module-level global."""
        if isinstance(base, ast.Name):
            qual = f"{info.name}.{base.id}"
            if qual in self.ambient_globals:
                return qual
            return None
        if isinstance(base, ast.Attribute):
            return self._cross_module_attr(info, base)
        return None

    def _cross_module_attr(self, info: ModuleInfo,
                           attr: ast.Attribute) -> str | None:
        """Qualname when ``mod.attr`` targets another module's global."""
        dotted = dotted_name(attr)
        if dotted is None:
            return None
        resolved = self.symbols.resolve(info, dotted)
        if resolved is None:
            return None
        if resolved in self.ambient_globals:
            return resolved
        module_part = resolved.rpartition(".")[0]
        if self.modules.get(module_part) is not None \
                and resolved in self.ambient_globals:
            return resolved
        return None

    def _mutator_call(self, function: str, info: ModuleInfo,
                      node: ast.Call) -> GlobalMutation | None:
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in MUTATOR_METHODS):
            return None
        qual = self._global_qualname(info, func.value, set())
        if qual is None:
            return None
        kind = ("container" if qual.rpartition(".")[0] == info.name
                else "cross-module")
        return GlobalMutation(target=qual, display_path=info.display_path,
                              lineno=node.lineno, function=function,
                              kind=kind)

    @cached_property
    def class_attr_writes(self) -> dict[str, ClassAttrWrites]:
        out: dict[str, ClassAttrWrites] = {}
        for fn in self.callgraph.functions():
            if fn.owner_class is None:
                continue
            self_name = fn.self_name()
            if self_name is None:
                continue
            cls = fn.qualname.rpartition(".")[0]
            writes = out.setdefault(cls, ClassAttrWrites(qualname=cls))
            bucket = (writes.init_attrs if fn.name == "__init__"
                      else writes.method_attrs)
            for node in ast.walk(fn.node):
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    targets = [node.target]
                for target in targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == self_name):
                        bucket.add(target.attr)
        return out

    # -- taint ------------------------------------------------------------
    @cached_property
    def taint(self) -> TaintEngine:
        ambient = {
            g.qualname: f"ambient per-process state {g.qualname}"
            for g in self.ambient_globals.values()
            if self._is_ambient(g)
        }
        return TaintEngine(self.callgraph, ambient_globals=ambient)

    def _is_ambient(self, g: AmbientGlobal) -> bool:
        """Globals that behave as per-process state: rebound via
        ``global`` anywhere, or mutable containers that get mutated."""
        for mutation in self.global_mutations:
            if mutation.target == g.qualname:
                return True
        return False


def collect_zone_lines(source: str) -> dict[int, str]:
    """Map line number -> zone name for ``# repro-lint: zone=`` markers."""
    import io
    import tokenize

    zones: dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _ZONE_DIRECTIVE.search(tok.string)
            if match is not None:
                zones[tok.start[0]] = match.group(1)
    except tokenize.TokenError:
        return zones
    return zones
