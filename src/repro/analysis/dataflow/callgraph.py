"""Project call graph: functions, methods, and resolved call edges.

Each project function/method becomes a :class:`FunctionInfo`; call
expressions inside it resolve — through the symbol table — to either a
project qualname (an edge) or an external dotted name (recorded for the
taint source matching).  Resolution is deliberately conservative:

- plain names and imported names resolve precisely;
- ``self.method()`` / ``cls.method()`` resolve within the enclosing
  class only (no inheritance walking — an over-approximation there
  could invent flows that do not exist);
- ``ClassName(...)`` resolves to ``ClassName.__init__`` when the class
  is a project class;
- anything dynamic (``getattr``, subscripted callables, call results)
  stays unresolved.

Decorated functions keep their own identity: ``functools.wraps``-style
wrappers forward to the wrapped function at runtime, so treating calls
to the decorated name as calls to the analyzed body is the standard
(and here conservative) reading.  Cycles are fine — the graph is plain
edges; fixpoint users iterate until stable.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .modules import ModuleInfo, ModuleTable
from .symbols import SymbolTable, dotted_name


@dataclass
class CallSite:
    """One call expression inside a function body."""

    node: ast.Call
    callee: str | None        # project qualname when resolved
    external: str | None      # absolute dotted name when not a project def


@dataclass
class FunctionInfo:
    """A project function or method with its resolved call sites."""

    qualname: str
    module: ModuleInfo
    node: ast.FunctionDef | ast.AsyncFunctionDef
    owner_class: str | None = None
    calls: list[CallSite] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.node.name

    def param_names(self) -> list[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names

    def self_name(self) -> str | None:
        """The receiver parameter name for methods (usually ``self``)."""
        if self.owner_class is None:
            return None
        args = self.node.args
        ordered = args.posonlyargs + args.args
        if not ordered:
            return None
        decorators = {dotted_name(d) if not isinstance(d, ast.Call)
                      else dotted_name(d.func)
                      for d in self.node.decorator_list}
        if "staticmethod" in decorators:
            return None
        return ordered[0].arg


class _BodyVisitor(ast.NodeVisitor):
    """Collects calls belonging to one function, skipping nested defs."""

    def __init__(self, graph: "CallGraph", owner: FunctionInfo) -> None:
        self.graph = graph
        self.owner = owner
        self._depth = 0

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs are separate FunctionInfos

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.generic_visit(node)  # lambda bodies belong to the enclosing fn

    def visit_Call(self, node: ast.Call) -> None:
        self.owner.calls.append(self.graph.resolve_call(self.owner, node))
        self.generic_visit(node)


class CallGraph:
    def __init__(self, modules: ModuleTable, symbols: SymbolTable) -> None:
        self._modules = modules
        self.symbols = symbols
        self._functions: dict[str, FunctionInfo] = {}
        for info in modules.modules():
            self._index(info)
        for fn in self._functions.values():
            _BodyVisitor(self, fn).generic_visit(fn.node)

    def _index(self, info: ModuleInfo) -> None:
        def add(node: ast.AST, qual: str, owner: str | None) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = FunctionInfo(qualname=qual, module=info, node=node,
                                  owner_class=owner)
                self._functions[qual] = fn
                for item in node.body:  # nested defs, one level at a time
                    walk(item, qual, None)

        def walk(node: ast.AST, prefix: str, owner: str | None) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                add(node, f"{prefix}.{node.name}", owner)
            elif isinstance(node, ast.ClassDef):
                cls_qual = f"{prefix}.{node.name}"
                for item in node.body:
                    walk(item, cls_qual, node.name)

        for node in info.tree.body:
            walk(node, info.name, None)

    def function(self, qualname: str) -> FunctionInfo | None:
        return self._functions.get(qualname)

    def functions(self) -> list[FunctionInfo]:
        return [self._functions[name] for name in sorted(self._functions)]

    def resolve_call(self, owner: FunctionInfo, node: ast.Call) -> CallSite:
        func = node.func
        # self.method() / cls.method() within the enclosing class.
        self_name = owner.self_name()
        if (self_name is not None and isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in (self_name, "cls")):
            prefix = owner.qualname.rpartition(".")[0]
            target = f"{prefix}.{func.attr}"
            if target in self._functions:
                return CallSite(node=node, callee=target, external=None)
            return CallSite(node=node, callee=None, external=None)
        dotted = dotted_name(func)
        if dotted is None:
            return CallSite(node=node, callee=None, external=None)
        resolved = self.symbols.resolve(owner.module, dotted)
        if resolved is None:
            # Unknown head: a builtin (``id``, ``print``) or a local
            # variable holding a callable.  Record the dotted text so
            # source matching can still catch builtins by name.
            return CallSite(node=node, callee=None,
                            external=dotted if "." not in dotted else None)
        symbol = self.symbols.lookup(resolved)
        if symbol is None:
            return CallSite(node=node, callee=None, external=resolved)
        if symbol.kind == "class":
            init = f"{resolved}.__init__"
            if init in self._functions:
                return CallSite(node=node, callee=init, external=None)
            return CallSite(node=node, callee=None, external=None)
        return CallSite(node=node, callee=resolved, external=None)

    def callees(self, qualname: str) -> set[str]:
        fn = self._functions.get(qualname)
        if fn is None:
            return set()
        return {site.callee for site in fn.calls if site.callee is not None}

    def transitive_callees(self, qualname: str) -> set[str]:
        """All project functions reachable from ``qualname`` (cycle-safe)."""
        seen: set[str] = set()
        stack = [qualname]
        while stack:
            current = stack.pop()
            for callee in self.callees(current):
                if callee not in seen:
                    seen.add(callee)
                    stack.append(callee)
        return seen
