"""Intra-procedural def-use chains.

For one function body, :class:`FunctionFlow` records every *definition*
of a local name (parameters, assignments, loop/with targets, walrus,
aug-assigns), every *use*, and the container/attribute mutations that
make a name's value change without rebinding it.  The taint engine
treats the chains flow-insensitively — a name is as tainted as the
union of its definitions — which over-approximates branches but never
invents a def that is not in the code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Definition:
    name: str
    lineno: int
    value: ast.expr | None      # None for params / for-targets / del
    kind: str                   # "param" | "assign" | "aug" | "target" | "mutate"


@dataclass
class FunctionFlow:
    """Def-use facts for one function body."""

    node: ast.FunctionDef | ast.AsyncFunctionDef
    defs: dict[str, list[Definition]] = field(default_factory=dict)
    uses: dict[str, list[int]] = field(default_factory=dict)
    #: names the function declares ``global`` and assigns somewhere.
    global_writes: dict[str, int] = field(default_factory=dict)
    #: names declared ``global`` (written or not).
    global_names: set[str] = field(default_factory=set)

    def _add_def(self, definition: Definition) -> None:
        self.defs.setdefault(definition.name, []).append(definition)

    def definitions(self, name: str) -> list[Definition]:
        return self.defs.get(name, [])

    def use_lines(self, name: str) -> list[int]:
        return self.uses.get(name, [])


def _target_names(target: ast.expr) -> list[tuple[str, ast.expr]]:
    """(name, full-target) pairs bound by an assignment target."""
    if isinstance(target, ast.Name):
        return [(target.id, target)]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[tuple[str, ast.expr]] = []
        for elt in target.elts:
            out.extend(_target_names(elt))
        return out
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []


def _mutation_base(target: ast.expr) -> str | None:
    """Root name mutated by a subscript/attribute store target."""
    while isinstance(target, (ast.Subscript, ast.Attribute)):
        target = target.value
    if isinstance(target, ast.Name):
        return target.id
    return None


class _FlowVisitor(ast.NodeVisitor):
    def __init__(self, flow: FunctionFlow) -> None:
        self.flow = flow

    # -- scope boundaries -------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.flow._add_def(Definition(node.name, node.lineno, None, "assign"))

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.flow._add_def(Definition(node.name, node.lineno, None, "assign"))

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.flow._add_def(Definition(node.name, node.lineno, None, "assign"))

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.generic_visit(node)

    # -- definitions ------------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            for name, _ in _target_names(target):
                self.flow._add_def(
                    Definition(name, node.lineno, node.value, "assign"))
            base = _mutation_base(target)
            if base is not None and not isinstance(target, ast.Name):
                self.flow._add_def(
                    Definition(base, node.lineno, node.value, "mutate"))
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            for name, _ in _target_names(node.target):
                self.flow._add_def(
                    Definition(name, node.lineno, node.value, "assign"))
            base = _mutation_base(node.target)
            if base is not None and not isinstance(node.target, ast.Name):
                self.flow._add_def(
                    Definition(base, node.lineno, node.value, "mutate"))
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        for name, _ in _target_names(node.target):
            self.flow._add_def(Definition(name, node.lineno, node.value, "aug"))
        base = _mutation_base(node.target)
        if base is not None and not isinstance(node.target, ast.Name):
            self.flow._add_def(
                Definition(base, node.lineno, node.value, "mutate"))
        self.generic_visit(node)

    def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
        if isinstance(node.target, ast.Name):
            self.flow._add_def(Definition(node.target.id, node.lineno,
                                          node.value, "assign"))
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        for name, _ in _target_names(node.target):
            self.flow._add_def(Definition(name, node.lineno, node.iter,
                                          "target"))
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        for name, _ in _target_names(node.target):
            self.flow._add_def(Definition(name, node.lineno, node.iter,
                                          "target"))
        self.generic_visit(node)

    def visit_withitem(self, node: ast.withitem) -> None:
        if node.optional_vars is not None:
            for name, _ in _target_names(node.optional_vars):
                self.flow._add_def(Definition(name, node.context_expr.lineno,
                                              node.context_expr, "target"))
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        # Comprehension targets live in a child scope at runtime, but for
        # flow-insensitive taint the iterable -> target edge is what counts.
        for name, _ in _target_names(node.target):
            self.flow._add_def(Definition(name, node.iter.lineno, node.iter,
                                          "target"))
        self.generic_visit(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.name:
            self.flow._add_def(Definition(node.name, node.lineno, None,
                                          "target"))
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        self.flow.global_names.update(node.names)

    # -- uses -------------------------------------------------------------
    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.flow.uses.setdefault(node.id, []).append(node.lineno)


def build_flow(node: ast.FunctionDef | ast.AsyncFunctionDef) -> FunctionFlow:
    """Def-use chains for one function body (params included as defs)."""
    flow = FunctionFlow(node=node)
    args = node.args
    for arg in (args.posonlyargs + args.args + args.kwonlyargs
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])):
        flow._add_def(Definition(arg.arg, arg.lineno, None, "param"))
    visitor = _FlowVisitor(flow)
    for stmt in node.body:
        visitor.visit(stmt)
    for name in flow.global_names:
        for definition in flow.definitions(name):
            if definition.kind in ("assign", "aug"):
                flow.global_writes.setdefault(name, definition.lineno)
    return flow
