"""Conservative inter-procedural taint propagation.

RL101's question — "can a volatile value reach a cache-key
computation?" — is a reachability problem over value flows.  The engine
answers it with per-function summaries iterated to a fixpoint:

- **Labels.**  A taint label is either ``("src", description)`` for a
  concrete volatile source (``os.environ``, wall clock, ambient
  per-process module state) or ``("param", name)`` for "whatever the
  caller passes as this parameter".
- **Intra-procedural step.**  Within a function, a local name carries
  the union of the labels of all its definitions (flow-insensitive:
  branches over-approximate, but no definition is invented).  Container
  and attribute stores taint the base name — mutating a dict with a
  volatile value taints the dict.
- **Summaries.**  Each function exports which labels its return value
  carries and which *parameters* reach a sink call inside it
  (transitively).  Call sites substitute argument labels for parameter
  labels, so flows compose across the call graph; cycles converge
  because label sets only grow and the universe is finite.
- **Method calls** resolve within the enclosing class only; unresolved
  calls propagate taint from receiver/arguments to the result
  ("taint-through") but never introduce it.
- **Attribute state.**  ``self.x = <volatile>`` taints ``(Class, x)``
  project-wide; parameter labels are dropped at attribute stores (a
  per-instance flow the summary machinery cannot attribute to a single
  call site), which keeps the engine precise at the cost of missing
  exotic constructor-threaded flows — conservative in the
  no-false-positive direction, like the rest of the package.

Sinks are calls to the cache-key functions by bare name (``spec_key``,
``canonicalize_spec``); a hit is reported where the tainted value
enters the sink's argument list.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .callgraph import CallGraph, CallSite, FunctionInfo
from .defuse import FunctionFlow, build_flow
from .symbols import dotted_name

Label = tuple[str, str]

#: Volatile calls by absolute dotted name (``id`` is the bare builtin).
VOLATILE_CALLS = frozenset({
    "os.getenv", "os.getpid", "os.getppid", "os.getcwd", "os.uname",
    "os.cpu_count", "os.urandom",
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
    "uuid.uuid1", "uuid.uuid4", "socket.gethostname", "getpass.getuser",
    "secrets.token_bytes", "secrets.token_hex", "secrets.randbits",
    "secrets.randbelow", "secrets.choice",
    "random.random", "random.randint", "random.getrandbits",
    "random.choice", "random.randrange",
    "id",
})

#: Volatile call prefixes (every ``platform.*`` probe is machine state).
VOLATILE_CALL_PREFIXES = ("platform.",)

#: Volatile attribute reads.
VOLATILE_ATTRS = frozenset({"os.environ", "os.environb"})

#: Method names that dispatch work to an executor/pool.  The returned
#: future/result is a function of the *submitted callable and its
#: arguments*, not of the executor object's configuration, so these
#: calls do not taint-through their receiver (``ProcessPoolExecutor(
#: max_workers=os.cpu_count())`` must not taint every result it
#: carries).
EXECUTOR_DISPATCH = frozenset({"submit", "map", "starmap", "apply",
                               "apply_async", "imap", "imap_unordered"})

#: Bare names of the cache-key sink functions.
SINK_NAMES = frozenset({"spec_key", "canonicalize_spec"})

#: Functions whose *bodies* constitute cache-key computation: a volatile
#: source appearing lexically inside any of them is a finding on its
#: own, before any flow analysis.
KEY_FUNCTION_NAMES = frozenset({"spec_key", "canonicalize_spec",
                                "trace_spec"})


@dataclass(frozen=True)
class TaintHit:
    """One volatile-to-cache-key flow, anchored where it is visible."""

    display_path: str
    lineno: int
    col: int
    sink: str
    sources: tuple[str, ...]
    via: str | None = None       # callee carrying the flow, if indirect
    in_body: bool = False        # source lexically inside a key function


@dataclass
class _Summary:
    returns: frozenset[Label] = frozenset()
    #: param name -> sinks its value reaches inside the function body.
    param_sinks: dict[str, set[str]] = field(default_factory=dict)


class TaintEngine:
    def __init__(self, graph: CallGraph,
                 ambient_globals: dict[str, str] | None = None) -> None:
        """``ambient_globals`` maps ``module.name`` qualnames of mutable
        per-process state to human-readable source descriptions."""
        self._graph = graph
        self._ambient = dict(ambient_globals or {})
        self._flows: dict[str, FunctionFlow] = {}
        self._summaries: dict[str, _Summary] = {}
        self._hits: list[TaintHit] = []
        #: shared (class qualname, attr) -> src labels written into it.
        self.attr_taint: dict[tuple[str, str], frozenset[Label]] = {}
        self._run()

    def hits(self) -> list[TaintHit]:
        """All flow hits plus source-inside-key-function hits, deduped.

        One call site gets one hit: a direct sink flow shadows the
        via-summary flow the same call also produces (``spec_key(x)``
        would otherwise report both ``spec_key`` and its internal
        ``canonicalize_spec``).
        """
        best: dict[tuple[str, int, int], TaintHit] = {}
        for hit in self._hits:
            key = (hit.display_path, hit.lineno, hit.col)
            current = best.get(key)
            if current is None or (current.via is not None
                                   and hit.via is None):
                best[key] = hit
        return [best[key] for key in sorted(best)]

    # -- fixpoint ---------------------------------------------------------
    def _run(self) -> None:
        functions = self._graph.functions()
        for fn in functions:
            self._flows[fn.qualname] = build_flow(fn.node)
            self._summaries[fn.qualname] = _Summary()
        changed = True
        rounds = 0
        while changed and rounds < 50:
            changed = False
            rounds += 1
            for fn in functions:
                if self._analyze(fn, collect=False):
                    changed = True
        self._hits = []
        for fn in functions:
            self._analyze(fn, collect=True)
            self._key_function_scan(fn)

    def _analyze(self, fn: FunctionInfo, collect: bool) -> bool:
        flow = self._flows[fn.qualname]
        env: dict[str, frozenset[Label]] = {}
        for param in fn.param_names():
            env[param] = frozenset({("param", param)})
        calls_by_node = {site.node: site for site in fn.calls}

        evaluator = _Evaluator(self, fn, flow, env, calls_by_node,
                               collect=collect)
        for _ in range(20):  # inner fixpoint over local names
            stable = True
            for name, defs in flow.defs.items():
                labels = env.get(name, frozenset())
                if name in env and ("param", name) in env[name]:
                    labels = labels | {("param", name)}
                for definition in defs:
                    if definition.value is not None:
                        labels = labels | evaluator.labels(definition.value)
                if labels != env.get(name, frozenset()):
                    env[name] = labels
                    stable = False
            if stable:
                break

        evaluator.finalize = True
        returns: frozenset[Label] = frozenset()
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)) \
                    and node.value is not None:
                returns = returns | evaluator.labels(node.value)
        # Re-walk calls so sink hits / attr writes see the final env.
        for site in fn.calls:
            evaluator.observe_call(site)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign):
                evaluator.observe_attr_store(node.targets, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                evaluator.observe_attr_store([node.target], node.value)

        summary = self._summaries[fn.qualname]
        changed = False
        if returns != summary.returns:
            summary.returns = returns
            changed = True
        if evaluator.param_sinks != summary.param_sinks:
            summary.param_sinks = evaluator.param_sinks
            changed = True
        if evaluator.attr_changed:
            changed = True
        return changed

    def _key_function_scan(self, fn: FunctionInfo) -> None:
        """A volatile source lexically inside a cache-key function."""
        if fn.name not in KEY_FUNCTION_NAMES:
            return
        for node in ast.walk(fn.node):
            desc: str | None = None
            if isinstance(node, ast.Call):
                desc = self._volatile_call_desc(fn, node)
            elif isinstance(node, ast.Attribute):
                resolved = self._graph.symbols.resolve_expr(fn.module, node)
                if resolved in VOLATILE_ATTRS:
                    desc = resolved
            if desc is not None:
                self._hits.append(TaintHit(
                    display_path=fn.module.display_path,
                    lineno=node.lineno, col=node.col_offset,
                    sink=fn.name, sources=(desc,), in_body=True))

    # -- shared lookups ---------------------------------------------------
    def _volatile_call_desc(self, fn: FunctionInfo,
                            node: ast.Call) -> str | None:
        dotted = dotted_name(node.func)
        if dotted is None:
            return None
        resolved = self._graph.symbols.resolve(fn.module, dotted) or dotted
        if resolved in VOLATILE_CALLS:
            return resolved
        if resolved.startswith(VOLATILE_CALL_PREFIXES):
            return resolved
        return None

    def ambient_desc(self, qualname: str | None) -> str | None:
        if qualname is None:
            return None
        return self._ambient.get(qualname)

    def record_hit(self, hit: TaintHit) -> None:
        self._hits.append(hit)


class _Evaluator:
    """Expression-label evaluation bound to one function's environment."""

    def __init__(self, engine: TaintEngine, fn: FunctionInfo,
                 flow: FunctionFlow, env: dict[str, frozenset[Label]],
                 calls_by_node: dict[ast.Call, CallSite],
                 collect: bool) -> None:
        self.engine = engine
        self.fn = fn
        self.flow = flow
        self.env = env
        self.calls = calls_by_node
        self.collect = collect
        self.finalize = False
        self.param_sinks: dict[str, set[str]] = {}
        self.attr_changed = False
        self._active: set[int] = set()

    # -- label computation ------------------------------------------------
    def labels(self, node: ast.expr) -> frozenset[Label]:
        if id(node) in self._active:
            return frozenset()
        self._active.add(id(node))
        try:
            return self._labels_inner(node)
        finally:
            self._active.discard(id(node))

    def _labels_inner(self, node: ast.expr) -> frozenset[Label]:
        engine = self.engine
        if isinstance(node, ast.Name):
            if node.id in self.env or node.id in self.flow.defs:
                return self.env.get(node.id, frozenset())
            qual = engine._graph.symbols.resolve(self.fn.module, node.id) \
                or f"{self.fn.module.name}.{node.id}"
            desc = engine.ambient_desc(qual)
            if desc is not None:
                return frozenset({("src", desc)})
            return frozenset()
        if isinstance(node, ast.Attribute):
            resolved = engine._graph.symbols.resolve_expr(self.fn.module,
                                                          node)
            if resolved in VOLATILE_ATTRS:
                return frozenset({("src", resolved)})
            desc = engine.ambient_desc(resolved)
            if desc is not None:
                return frozenset({("src", desc)})
            self_name = self.fn.self_name()
            if (self_name is not None and isinstance(node.value, ast.Name)
                    and node.value.id == self_name):
                cls = self.fn.qualname.rpartition(".")[0]
                return engine.attr_taint.get((cls, node.attr), frozenset())
            return self.labels(node.value)
        if isinstance(node, ast.Call):
            return self._call_labels(node)
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            out: frozenset[Label] = frozenset()
            for elt in node.elts:
                out = out | self.labels(elt)
            return out
        if isinstance(node, ast.Dict):
            out = frozenset()
            for key in node.keys:
                if key is not None:
                    out = out | self.labels(key)
            for value in node.values:
                out = out | self.labels(value)
            return out
        if isinstance(node, ast.Constant):
            return frozenset()
        # Everything else: union over child expressions (BinOp, BoolOp,
        # JoinedStr, comparisons, subscripts, comprehensions, ...).
        out = frozenset()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                out = out | self.labels(child)
            elif isinstance(child, ast.comprehension):
                out = out | self.labels(child.iter)
        return out

    def _call_args(self, node: ast.Call) -> list[tuple[str | None,
                                                       frozenset[Label]]]:
        out: list[tuple[str | None, frozenset[Label]]] = []
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                out.append((None, self.labels(arg.value)))
            else:
                out.append((None, self.labels(arg)))
        for kw in node.keywords:
            out.append((kw.arg, self.labels(kw.value)))
        return out

    def _map_args_to_params(self, site: CallSite,
                            fn: FunctionInfo) -> dict[str, frozenset[Label]]:
        params = fn.param_names()
        if fn.owner_class is not None and fn.self_name() is not None:
            params = params[1:]
        mapped: dict[str, frozenset[Label]] = {}
        positional = [a for a in site.node.args
                      if not isinstance(a, ast.Starred)]
        for i, arg in enumerate(positional):
            if i < len(params):
                mapped[params[i]] = self.labels(arg)
        for arg in site.node.args:
            if isinstance(arg, ast.Starred):
                # Position unknown: spread over all params, conservatively.
                labels = self.labels(arg.value)
                for param in params:
                    mapped[param] = mapped.get(param, frozenset()) | labels
        for kw in site.node.keywords:
            labels = self.labels(kw.value)
            if kw.arg is None:  # **kwargs spread
                for param in params:
                    mapped[param] = mapped.get(param, frozenset()) | labels
            else:
                mapped[kw.arg] = labels
        return mapped

    def _call_labels(self, node: ast.Call) -> frozenset[Label]:
        engine = self.engine
        site = self.calls.get(node)
        arg_labels: frozenset[Label] = frozenset()
        for _, labels in self._call_args(node):
            arg_labels = arg_labels | labels
        if site is not None and site.callee is not None:
            callee = engine._graph.function(site.callee)
            summary = engine._summaries.get(site.callee)
            if callee is not None and summary is not None:
                result: frozenset[Label] = frozenset(
                    label for label in summary.returns
                    if label[0] == "src")
                mapped = self._map_args_to_params(site, callee)
                param_returns = {label[1] for label in summary.returns
                                 if label[0] == "param"}
                for param, labels in mapped.items():
                    if param in param_returns:
                        result = result | labels
                return result
        desc = engine._volatile_call_desc(self.fn, node)
        if desc is not None:
            return arg_labels | frozenset({("src", desc)})
        if site is not None and site.external is not None:
            if site.external in VOLATILE_CALLS or \
                    site.external.startswith(VOLATILE_CALL_PREFIXES):
                return arg_labels | frozenset({("src", site.external)})
        # Unresolved/external: taint-through receiver and arguments.
        receiver: frozenset[Label] = frozenset()
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr not in EXECUTOR_DISPATCH:
            receiver = self.labels(node.func.value)
        return arg_labels | receiver

    # -- observation passes (final env only) ------------------------------
    def observe_call(self, site: CallSite) -> None:
        """Record sink hits and transitive param->sink flows."""
        engine = self.engine
        node = site.node
        sink_name = self._sink_name(site)
        if sink_name is not None:
            for arg_name, labels in self._call_args(node):
                del arg_name
                self._register_sink_flow(labels, sink_name, node, via=None)
        if site.callee is not None:
            callee = engine._graph.function(site.callee)
            summary = engine._summaries.get(site.callee)
            if callee is not None and summary is not None \
                    and summary.param_sinks:
                mapped = self._map_args_to_params(site, callee)
                for param, sinks in summary.param_sinks.items():
                    labels = mapped.get(param, frozenset())
                    for sink in sinks:
                        self._register_sink_flow(labels, sink, node,
                                                 via=callee.name)

    def _sink_name(self, site: CallSite) -> str | None:
        if site.callee is not None:
            name = site.callee.rpartition(".")[2]
            return name if name in SINK_NAMES else None
        dotted = dotted_name(site.node.func)
        if dotted is not None and dotted.rpartition(".")[2] in SINK_NAMES:
            return dotted.rpartition(".")[2]
        return None

    def _register_sink_flow(self, labels: frozenset[Label], sink: str,
                            node: ast.Call, via: str | None) -> None:
        sources = tuple(sorted(desc for kind, desc in labels
                               if kind == "src"))
        params = [name for kind, name in labels if kind == "param"]
        if sources and self.collect:
            self.engine.record_hit(TaintHit(
                display_path=self.fn.module.display_path,
                lineno=node.lineno, col=node.col_offset,
                sink=sink, sources=sources, via=via))
        for param in params:
            self.param_sinks.setdefault(param, set()).add(sink)

    def observe_attr_store(self, targets: list[ast.expr],
                           value: ast.expr) -> None:
        """``self.x = <expr>`` taints (Class, x) with src labels."""
        self_name = self.fn.self_name()
        if self_name is None:
            return
        for target in targets:
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == self_name):
                continue
            labels = frozenset(label for label in self.labels(value)
                               if label[0] == "src")
            if not labels:
                continue
            cls = self.fn.qualname.rpartition(".")[0]
            key = (cls, target.attr)
            current = self.engine.attr_taint.get(key, frozenset())
            merged = current | labels
            if merged != current:
                self.engine.attr_taint[key] = merged
                self.attr_changed = True
