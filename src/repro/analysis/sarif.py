"""SARIF 2.1.0 serialization for repro-lint findings.

SARIF (Static Analysis Results Interchange Format) is what CI code
scanning ingests; ``repro-lint --format sarif`` emits one run with the
full rule catalogue in ``tool.driver.rules`` (so dashboards can show
rule help even for rules with zero findings this run) and one result
per finding.  Output is deterministic: rules sort by code, results
inherit the engine's (path, line, col, code) ordering, and no
timestamps or absolute paths are embedded.
"""

from __future__ import annotations

from collections.abc import Sequence

from .finding import Finding
from .rules import ALL_RULES, PROJECT_RULES

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")


def _rule_catalogue() -> list[dict[str, object]]:
    rules = sorted(ALL_RULES + PROJECT_RULES, key=lambda r: r.code)
    return [
        {
            "id": rule.code,
            "name": rule.__name__,
            "shortDescription": {"text": rule.summary or rule.code},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in rules
    ]


def _rule_index() -> dict[str, int]:
    rules = sorted(ALL_RULES + PROJECT_RULES, key=lambda r: r.code)
    return {rule.code: i for i, rule in enumerate(rules)}


def _result(finding: Finding, rule_index: dict[str, int]) -> dict[str, object]:
    result: dict[str, object] = {
        "ruleId": finding.code,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path.replace("\\", "/"),
                    "uriBaseId": "SRCROOT",
                },
                "region": {
                    "startLine": max(finding.line, 1),
                    # SARIF columns are 1-based; Finding.col is 0-based.
                    "startColumn": finding.col + 1,
                },
            },
        }],
    }
    index = rule_index.get(finding.code)
    if index is not None:
        result["ruleIndex"] = index
    return result


def to_sarif(findings: Sequence[Finding]) -> dict[str, object]:
    """The full SARIF log object for one lint run."""
    rule_index = _rule_index()
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "https://github.com/repro/repro#static-analysis",
                    "rules": _rule_catalogue(),
                },
            },
            "originalUriBaseIds": {
                "SRCROOT": {"uri": "file:///", "description": {
                    "text": "repository root the linter ran from"}},
            },
            "results": [_result(f, rule_index) for f in findings],
        }],
    }
