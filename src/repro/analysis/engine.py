"""File walker + rule driver for repro-lint.

``lint_paths`` is the single entry point and runs in two phases:

1. **Per-file** — parse each Python file once into a
   :class:`~repro.analysis.context.FileContext` and run every active
   per-file rule over it (syntax errors become ``RL000`` findings).
2. **Project** — build one
   :class:`~repro.analysis.dataflow.project.ProjectContext` from all
   parsed files and run the active whole-program rules (the RL100
   series) once over it.

Findings from both phases flow through the same
``# repro-lint: disable=`` suppression filter (keyed per file) and come
back as one deterministically sorted list of
:class:`~repro.analysis.finding.Finding`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from pathlib import Path

from .context import FileContext
from .dataflow.project import ProjectContext
from .finding import Finding
from .rules import ProjectRule, Rule, get_rules
from .suppress import Suppressions, collect_suppressions, is_suppressed

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".mypy_cache", ".ruff_cache",
                        ".pytest_cache", "build", "dist"})


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths``, in sorted order per path."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if _SKIP_DIRS.isdisjoint(candidate.parts):
                    yield candidate
        elif path.suffix == ".py":
            yield path
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")


def _parse(path: Path,
           display_path: str | None) -> FileContext | Finding:
    try:
        return FileContext.parse(path, display_path=display_path)
    except (SyntaxError, UnicodeDecodeError) as exc:
        line = getattr(exc, "lineno", 1) or 1
        return Finding(path=display_path or str(path), line=line, col=0,
                       code="RL000", message=f"could not parse file: {exc}")


def lint_file(path: Path, rules: Sequence[type[Rule]],
              display_path: str | None = None) -> list[Finding]:
    """Run per-file rules on one file; syntax errors become ``RL000``.

    Project (RL100-series) rules need the whole program and only run
    through :func:`lint_paths`.
    """
    parsed = _parse(path, display_path)
    if isinstance(parsed, Finding):
        return [parsed]
    findings: list[Finding] = []
    for rule_cls in rules:
        findings.extend(rule_cls(parsed).run())
    suppressions = collect_suppressions(parsed.source)
    return [f for f in findings if not is_suppressed(f, suppressions)]


def lint_paths(paths: Iterable[str | Path],
               select: frozenset[str] | None = None,
               ignore: frozenset[str] | None = None) -> list[Finding]:
    """Lint every Python file under ``paths`` with the active rule set."""
    file_rules, project_rules = get_rules(select=select, ignore=ignore)

    contexts: list[FileContext] = []
    findings: list[Finding] = []
    suppressions: dict[str, Suppressions] = {}
    for path in iter_python_files(paths):
        parsed = _parse(path, display_path=str(path))
        if isinstance(parsed, Finding):
            findings.append(parsed)
            continue
        contexts.append(parsed)
        suppressions[parsed.display_path] = collect_suppressions(parsed.source)
        for rule_cls in file_rules:
            findings.extend(rule_cls(parsed).run())

    if project_rules and contexts:
        findings.extend(_run_project_rules(contexts, project_rules))

    empty: Suppressions = {}
    return sorted(f for f in findings
                  if not is_suppressed(f, suppressions.get(f.path, empty)))


def _run_project_rules(
        contexts: list[FileContext],
        project_rules: Sequence[type[ProjectRule]]) -> list[Finding]:
    project = ProjectContext(contexts)
    findings: list[Finding] = []
    for rule_cls in project_rules:
        findings.extend(rule_cls(project).run())
    return findings
