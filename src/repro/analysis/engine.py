"""File walker + rule driver for repro-lint.

``lint_paths`` is the single entry point: it expands files/directories,
parses each Python file once, runs every active rule over the shared
:class:`~repro.analysis.context.FileContext`, filters findings through
``# repro-lint: disable=`` comments, and returns a deterministically
sorted list of :class:`~repro.analysis.finding.Finding`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from pathlib import Path

from .context import FileContext
from .finding import Finding
from .rules import Rule, get_rules
from .suppress import collect_suppressions, is_suppressed

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".mypy_cache", ".ruff_cache",
                        ".pytest_cache", "build", "dist"})


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths``, in sorted order per path."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if _SKIP_DIRS.isdisjoint(candidate.parts):
                    yield candidate
        elif path.suffix == ".py":
            yield path
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")


def lint_file(path: Path, rules: Sequence[type[Rule]],
              display_path: str | None = None) -> list[Finding]:
    """Lint one file; a syntax error becomes an ``RL000`` finding."""
    try:
        ctx = FileContext.parse(path, display_path=display_path)
    except (SyntaxError, UnicodeDecodeError) as exc:
        line = getattr(exc, "lineno", 1) or 1
        return [Finding(path=display_path or str(path), line=line, col=0,
                        code="RL000", message=f"could not parse file: {exc}")]
    findings: list[Finding] = []
    for rule_cls in rules:
        findings.extend(rule_cls(ctx).run())
    suppressions = collect_suppressions(ctx.source)
    return [f for f in findings if not is_suppressed(f, suppressions)]


def lint_paths(paths: Iterable[str | Path],
               select: frozenset[str] | None = None,
               ignore: frozenset[str] | None = None) -> list[Finding]:
    """Lint every Python file under ``paths`` with the active rule set."""
    rules = get_rules(select=select, ignore=ignore)
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, rules, display_path=str(path)))
    return sorted(findings)
