"""Command-line front end: ``repro-lint`` / ``python -m repro.analysis``.

Exit codes follow the usual linter contract:

- ``0`` — no findings
- ``1`` — findings reported
- ``2`` — usage error (bad path, unknown rule code)
"""

from __future__ import annotations

import argparse
import json
import sys

from .engine import lint_paths
from .rules import ALL_RULES


def _parse_codes(raw: list[str] | None) -> frozenset[str] | None:
    if not raw:
        return None
    codes: set[str] = set()
    for chunk in raw:
        codes.update(code.strip().upper() for code in chunk.split(",") if code.strip())
    return frozenset(codes)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Determinism & contract static analysis for the repro "
                    "codebase (rules RL001-RL007).")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=("human", "json"), default="human",
                        help="output format (default: human)")
    parser.add_argument("--select", action="append", metavar="CODES",
                        help="comma-separated rule codes to run exclusively")
    parser.add_argument("--ignore", action="append", metavar="CODES",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.summary}")
        return 0

    try:
        findings = lint_paths(args.paths,
                              select=_parse_codes(args.select),
                              ignore=_parse_codes(args.ignore))
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps([f.to_json() for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding.format())
        if findings:
            plural = "s" if len(findings) != 1 else ""
            print(f"\nrepro-lint: {len(findings)} finding{plural}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
