"""Command-line front end: ``repro-lint`` / ``python -m repro.analysis``.

Exit codes follow the usual linter contract:

- ``0`` — no findings
- ``1`` — findings reported
- ``2`` — usage error (bad path, unknown rule code)

``--format sarif`` emits a SARIF 2.1.0 log for CI code scanning;
``--output FILE`` writes the report there instead of stdout (exit codes
are unchanged — CI can upload the artifact *and* gate on the status).
``--stats`` appends a per-rule findings histogram to stderr, for trend
tracking without parsing the report itself.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path

from .engine import lint_paths
from .finding import Finding
from .rules import ALL_RULES, PROJECT_RULES
from .sarif import to_sarif


def _parse_codes(raw: list[str] | None) -> frozenset[str] | None:
    if not raw:
        return None
    codes: set[str] = set()
    for chunk in raw:
        codes.update(code.strip().upper() for code in chunk.split(",") if code.strip())
    return frozenset(codes)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Determinism & contract static analysis for the repro "
                    "codebase (per-file rules RL001-RL007, whole-program "
                    "dataflow rules RL101-RL103).")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=("human", "json", "sarif"),
                        default="human",
                        help="output format (default: human)")
    parser.add_argument("--output", metavar="FILE",
                        help="write the report to FILE instead of stdout")
    parser.add_argument("--select", action="append", metavar="CODES",
                        help="comma-separated rule codes to run exclusively")
    parser.add_argument("--ignore", action="append", metavar="CODES",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--stats", action="store_true",
                        help="print a per-rule findings histogram to stderr")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _render(findings: list[Finding], fmt: str) -> str:
    if fmt == "json":
        return json.dumps([f.to_json() for f in findings], indent=2)
    if fmt == "sarif":
        return json.dumps(to_sarif(findings), indent=2)
    lines = [finding.format() for finding in findings]
    if findings:
        plural = "s" if len(findings) != 1 else ""
        lines.append("")
        lines.append(f"repro-lint: {len(findings)} finding{plural}")
    return "\n".join(lines)


def _print_stats(findings: list[Finding]) -> None:
    counts = Counter(f.code for f in findings)
    print(f"repro-lint: stats: total={len(findings)}", file=sys.stderr)
    for rule in sorted(ALL_RULES + PROJECT_RULES, key=lambda r: r.code):
        print(f"repro-lint: stats: {rule.code}={counts.get(rule.code, 0)}",
              file=sys.stderr)
    leftover = set(counts) - {r.code for r in ALL_RULES + PROJECT_RULES}
    for code in sorted(leftover):                    # RL000 parse errors
        print(f"repro-lint: stats: {code}={counts[code]}", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(ALL_RULES + PROJECT_RULES, key=lambda r: r.code):
            print(f"{rule.code}  {rule.summary}")
        return 0

    try:
        findings = lint_paths(args.paths,
                              select=_parse_codes(args.select),
                              ignore=_parse_codes(args.ignore))
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    report = _render(findings, args.format)
    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
    elif report:
        print(report)

    if args.stats:
        _print_stats(findings)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
