"""RL003 — float equality comparisons outside tests.

``x == 0.1`` is almost never what a numeric codebase means: accumulated
rounding makes exact float equality order- and optimization-dependent,
which is exactly the kind of hidden nondeterminism that breaks
bit-reproduction claims.  Compare against a tolerance (``math.isclose``,
``abs(x - y) < eps``) or restructure to integers.  Intentional exact
comparisons (e.g. an exact-zero guard) take a
``# repro-lint: disable=RL003`` with a justification.
"""

from __future__ import annotations

import ast

from .base import Rule


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    # -1.5 parses as UnaryOp(USub, Constant(1.5))
    return (isinstance(node, ast.UnaryOp)
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, float))


class FloatEqualityRule(Rule):
    code = "RL003"
    summary = "float literal compared with == / != outside tests"

    def applies(self) -> bool:
        return not self.ctx.is_test

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for i, op in enumerate(node.ops):
            if isinstance(op, (ast.Eq, ast.NotEq)) and (
                    _is_float_literal(operands[i])
                    or _is_float_literal(operands[i + 1])):
                self.report(node, "float equality comparison; use math.isclose "
                                  "or an explicit tolerance")
                break
        self.generic_visit(node)
