"""Shared rule infrastructure.

Each rule is a small :class:`ast.NodeVisitor` with a class-level ``code``
(``RLxxx``), a one-line ``summary`` (shown by ``repro-lint --list-rules``),
and an optional :meth:`Rule.applies` gate restricting where it runs (e.g.
only inside simulator hot paths).  Rules call :meth:`Rule.report` with the
offending node; the engine handles suppression comments, ordering, and
output formats.
"""

from __future__ import annotations

import ast
from typing import ClassVar

from ..context import FileContext
from ..finding import Finding


class Rule(ast.NodeVisitor):
    """Base class for all repro-lint rules."""

    code: ClassVar[str] = "RL000"
    summary: ClassVar[str] = ""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []

    def applies(self) -> bool:
        """Whether this rule runs on ``self.ctx`` at all (path-based gates)."""
        return True

    def run(self) -> list[Finding]:
        if self.applies():
            self.visit(self.ctx.tree)
        return self.findings

    def report(self, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            path=self.ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        ))
