"""Shared rule infrastructure.

Each rule is a small :class:`ast.NodeVisitor` with a class-level ``code``
(``RLxxx``), a one-line ``summary`` (shown by ``repro-lint --list-rules``),
and an optional :meth:`Rule.applies` gate restricting where it runs (e.g.
only inside simulator hot paths).  Rules call :meth:`Rule.report` with the
offending node; the engine handles suppression comments, ordering, and
output formats.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, ClassVar

from ..context import FileContext
from ..finding import Finding

if TYPE_CHECKING:
    from ..dataflow.project import ProjectContext


class Rule(ast.NodeVisitor):
    """Base class for all repro-lint rules."""

    code: ClassVar[str] = "RL000"
    summary: ClassVar[str] = ""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []

    def applies(self) -> bool:
        """Whether this rule runs on ``self.ctx`` at all (path-based gates)."""
        return True

    def run(self) -> list[Finding]:
        if self.applies():
            self.visit(self.ctx.tree)
        return self.findings

    def report(self, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            path=self.ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        ))


class ProjectRule:
    """Base class for whole-program rules (the RL100 series).

    Unlike per-file :class:`Rule` visitors, a project rule runs **once**
    per lint invocation over the :class:`~repro.analysis.dataflow.
    project.ProjectContext` built from every parsed file, and may emit
    findings into any of them.  Suppression comments and ``zone=``
    annotations are applied by the engine per finding, exactly as for
    file rules.
    """

    code: ClassVar[str] = "RL100"
    summary: ClassVar[str] = ""

    def __init__(self, project: "ProjectContext") -> None:
        self.project = project
        self.findings: list[Finding] = []

    def run(self) -> list[Finding]:
        raise NotImplementedError

    def report_at(self, display_path: str, line: int, col: int,
                  message: str) -> None:
        self.findings.append(Finding(path=display_path, line=line, col=col,
                                     code=self.code, message=message))
