"""RL102 — compiled-backend contract parity with the numpy reference.

The PR 6 backend registry's safety argument is "every backend is
bit-identical to numpy, so selection can stay out of cache keys".  That
argument silently breaks in three ways a runtime test may not catch:

1. a kernel-bundle method drifts between backends (renamed/reordered
   parameter, changed annotation/dtype) so one backend takes a
   different call shape than its siblings — callers written against
   the reference break only on the machine that has that backend;
2. a backend module stops exporting a registered factory
   (``make_sim_kernels`` / ``make_hebbian_kernels`` / ``available``),
   turning an explicit backend into a silent numpy-only fallback;
3. a hot-path module quietly imports one of the retained reference
   implementations (``*_reference``), smuggling the slow path back
   into the code the backends were built to replace.

The rule finds every ``backends`` package in the linted project (a
package whose ``__init__`` declares ``SIM_BACKENDS``/``NN_BACKENDS``),
treats its sibling modules as the backend implementations, and
cross-checks them structurally:

- factory functions present in any backend module (or referenced by
  the registry) must exist in all of them, with identical parameter
  names, order, kinds, and annotations (return annotations exempt —
  each backend legitimately returns its own bundle class);
- kernel-bundle classes (``*SimKernels``, ``*HebbianKernels``) must
  expose the same public methods with identical signatures including
  return annotations (``__init__`` exempt: construction is the one
  legitimately backend-specific surface);
- hot-path modules — anything inside a ``backends`` package, plus any
  module with a ``<name>_reference`` sibling (the optimized twin of a
  retained reference, e.g. ``nn/hebbian.py``, ``memsim/pagecache.py``)
  — must not import ``*_reference`` modules.
"""

from __future__ import annotations

import ast
from collections import defaultdict

from .base import ProjectRule
from ..dataflow.modules import ModuleInfo, _resolve_relative
from ..finding import Finding

#: Kernel-bundle class suffixes compared across backend modules.
_BUNDLE_SUFFIXES = ("SimKernels", "HebbianKernels")

#: Factory/probe functions every backend module must export.
_ALWAYS_REQUIRED = frozenset({"available"})


def _signature(node: ast.FunctionDef | ast.AsyncFunctionDef,
               *, with_return: bool) -> str:
    """Canonical signature text: names, order, kinds, annotations."""
    args = node.args
    parts: list[str] = []

    def fmt(arg: ast.arg) -> str:
        if arg.annotation is None:
            return arg.arg
        return f"{arg.arg}: {ast.unparse(arg.annotation)}"

    parts.extend(fmt(a) for a in args.posonlyargs)
    if args.posonlyargs:
        parts.append("/")
    parts.extend(fmt(a) for a in args.args)
    if args.vararg is not None:
        parts.append(f"*{fmt(args.vararg)}")
    elif args.kwonlyargs:
        parts.append("*")
    parts.extend(fmt(a) for a in args.kwonlyargs)
    if args.kwarg is not None:
        parts.append(f"**{fmt(args.kwarg)}")
    text = f"({', '.join(parts)})"
    if with_return and node.returns is not None:
        text += f" -> {ast.unparse(node.returns)}"
    return text


def _strip_self(signature: str) -> str:
    inner = signature[1:].split(", ", 1)
    if len(inner) == 1:
        return "(" + inner[0]
    return "(" + inner[1]


class BackendParityRule(ProjectRule):
    code = "RL102"
    summary = ("compiled-backend kernel signature/registration drift vs "
               "the numpy reference; reference modules imported from "
               "hot paths")

    def run(self) -> list[Finding]:
        registries = [
            info for info in self.project.modules.modules()
            if info.is_package_init()
            and info.name.rpartition(".")[2] == "backends"
            and self._declares_backend_tuple(info)
        ]
        for registry in registries:
            self._check_package(registry)
        self._check_reference_imports()
        return self.findings

    @staticmethod
    def _declares_backend_tuple(info: ModuleInfo) -> bool:
        for node in info.tree.body:
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id in (
                        "SIM_BACKENDS", "NN_BACKENDS"):
                    return True
        return False

    # -- package-level checks ---------------------------------------------
    def _check_package(self, registry: ModuleInfo) -> None:
        backend_modules = [
            info for info in self.project.modules.in_package(registry.name)
            if not info.is_package_init()
        ]
        if not backend_modules:
            return
        self._check_factories(registry, backend_modules)
        self._check_bundles(backend_modules)

    def _top_level_functions(
            self, info: ModuleInfo) -> dict[str, ast.FunctionDef]:
        return {node.name: node for node in info.tree.body
                if isinstance(node, ast.FunctionDef)}

    def _registry_factory_refs(self, registry: ModuleInfo) -> set[str]:
        """``make_*`` attributes the registry pulls off backend modules."""
        refs: set[str] = set()
        for node in ast.walk(registry.tree):
            if isinstance(node, ast.Attribute) and \
                    node.attr.startswith("make_"):
                refs.add(node.attr)
        return refs

    def _check_factories(self, registry: ModuleInfo,
                         backend_modules: list[ModuleInfo]) -> None:
        per_module = {info.name: self._top_level_functions(info)
                      for info in backend_modules}
        required = set(_ALWAYS_REQUIRED) | self._registry_factory_refs(registry)
        for functions in per_module.values():
            required.update(name for name in functions
                            if name.startswith("make_"))
        for info in backend_modules:
            functions = per_module[info.name]
            for name in sorted(required):
                if name not in functions:
                    self.report_at(
                        info.display_path, 1, 0,
                        f"backend module {info.name} does not define "
                        f"{name}(); a missing registration silently "
                        "degrades this backend to the numpy-only "
                        "fallback")
        # Signature parity across modules (params only; returns are the
        # backend-specific bundle classes).
        for name in sorted(required):
            sigs: dict[str, list[str]] = defaultdict(list)
            for info in backend_modules:
                node = per_module[info.name].get(name)
                if node is not None:
                    sigs[_signature(node, with_return=False)].append(
                        info.name)
            if len(sigs) > 1:
                detail = "; ".join(
                    f"{sig} in {', '.join(sorted(mods))}"
                    for sig, mods in sorted(sigs.items()))
                for info in backend_modules:
                    node = per_module[info.name].get(name)
                    if node is not None:
                        self.report_at(
                            info.display_path, node.lineno,
                            node.col_offset,
                            f"{name}() signature drifts across backend "
                            f"modules: {detail}")

    def _check_bundles(self, backend_modules: list[ModuleInfo]) -> None:
        # suffix -> list of (module, class node)
        groups: dict[str, list[tuple[ModuleInfo, ast.ClassDef]]] = \
            defaultdict(list)
        for info in backend_modules:
            for node in info.tree.body:
                if isinstance(node, ast.ClassDef):
                    for suffix in _BUNDLE_SUFFIXES:
                        if node.name.endswith(suffix):
                            groups[suffix].append((info, node))
        for suffix, members in sorted(groups.items()):
            if len(members) < 2:
                continue
            self._compare_bundle_group(suffix, members)

    def _compare_bundle_group(
            self, suffix: str,
            members: list[tuple[ModuleInfo, ast.ClassDef]]) -> None:
        methods: dict[str, dict[str, tuple[ModuleInfo, ast.FunctionDef]]] = {}
        for info, cls in members:
            table: dict[str, tuple[ModuleInfo, ast.FunctionDef]] = {}
            for item in cls.body:
                if isinstance(item, ast.FunctionDef) and \
                        not item.name.startswith("__"):
                    table[item.name] = (info, item)
            methods[cls.name] = table
        all_names = sorted({name for table in methods.values()
                            for name in table})
        for name in all_names:
            # Presence parity.
            for info, cls in members:
                if name not in methods[cls.name]:
                    self.report_at(
                        info.display_path, cls.lineno, cls.col_offset,
                        f"{cls.name} lacks {name}(), which sibling "
                        f"*{suffix} bundles define; backends must expose "
                        "an identical kernel surface")
            # Signature parity (drop the receiver; keep returns/dtypes).
            sigs: dict[str, list[str]] = defaultdict(list)
            nodes: list[tuple[ModuleInfo, ast.FunctionDef, str]] = []
            for cls_name, table in methods.items():
                entry = table.get(name)
                if entry is None:
                    continue
                info, node = entry
                sig = _strip_self(_signature(node, with_return=True))
                sigs[sig].append(cls_name)
                nodes.append((info, node, sig))
            if len(sigs) > 1:
                detail = "; ".join(
                    f"{sig} in {', '.join(sorted(cs))}"
                    for sig, cs in sorted(sigs.items()))
                for info, node, _sig in nodes:
                    self.report_at(
                        info.display_path, node.lineno, node.col_offset,
                        f"kernel method {name}() drifts across *{suffix} "
                        f"bundles (parameter order, names, or declared "
                        f"dtypes): {detail}")

    # -- reference-import check -------------------------------------------
    def _hot_path_modules(self) -> set[str]:
        names = {info.name for info in self.project.modules.modules()}
        hot: set[str] = set()
        for name in names:
            parts = name.split(".")
            if "backends" in parts[:-1] or parts[-1] == "backends":
                hot.add(name)
            elif f"{name}_reference" in names:
                hot.add(name)
        return hot

    def _check_reference_imports(self) -> None:
        hot = self._hot_path_modules()
        for info in self.project.modules.modules():
            if info.name not in hot:
                continue
            for target, node in self._imported_modules(info):
                base = target.rpartition(".")[2]
                if base.endswith("_reference"):
                    self.report_at(
                        info.display_path, node.lineno, node.col_offset,
                        f"hot-path module {info.name} imports reference "
                        f"implementation {target}; the compiled path must "
                        "not depend on the module it is checked against")

    @staticmethod
    def _imported_modules(
            info: ModuleInfo) -> list[tuple[str, ast.stmt]]:
        out: list[tuple[str, ast.stmt]] = []
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    out.append((alias.name, node))
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    target = _resolve_relative(
                        info.name, info.is_package_init(), node.level,
                        node.module)
                else:
                    target = node.module or ""
                if target:
                    out.append((target, node))
                    # ``from pkg import mod`` also imports pkg.mod.
                    for alias in node.names:
                        if alias.name != "*":
                            out.append((f"{target}.{alias.name}", node))
        return out
