"""RL101 — cache-key purity: volatile data must never reach a spec hash.

The distributed grid runner's whole correctness story rests on
``spec_key(spec)`` being a pure function of the spec: the sha256 key is
the cache identity, so any hidden input — ``os.environ``, wall clock,
object ids, ambient backend state (``repro.nn.backends``), telemetry
module state — lets two runs of the *same* spec land on different keys
(cold cache forever) or two *different* effective configurations share
one key (silently wrong results served from disk).  PR 6 proved the
"backend never enters the key" half dynamically for the paths its test
executed; this rule proves it statically for every path.

Two checks, both over the whole-program taint engine in
:mod:`repro.analysis.dataflow.taint`:

1. **Flow check** — any value influenced by a volatile source that
   reaches an argument of ``spec_key()`` / ``canonicalize_spec()``
   (directly or through project calls) is flagged at the call site
   where it enters the sink.
2. **Hermetic-body check** — a volatile source appearing *lexically
   inside* a cache-key function (``spec_key``, ``canonicalize_spec``,
   ``trace_spec``) is flagged immediately, flow or not: the key
   computation itself must be hermetic.

Volatile sources include project ambient state automatically: every
module-level global that some function rebinds via ``global`` (or
mutates cross-module) is per-process state, so e.g. reading
``backends._default_backend`` — even through the
``get_default_backend()`` accessor — taints the value.
"""

from __future__ import annotations

from .base import ProjectRule
from ..finding import Finding


class CacheKeyPurityRule(ProjectRule):
    code = "RL101"
    summary = ("volatile data (env, clock, ids, ambient backend/telemetry "
               "state) flowing into spec_key/cache-key computation")

    def run(self) -> list[Finding]:
        for hit in self.project.taint.hits():
            sources = ", ".join(hit.sources)
            if hit.in_body:
                message = (f"volatile source {sources} inside cache-key "
                           f"function {hit.sink}(); the key computation "
                           "must be hermetic")
            elif hit.via is None:
                message = (f"value influenced by {sources} reaches "
                           f"{hit.sink}(); cache keys must be pure "
                           "functions of the spec")
            else:
                message = (f"value influenced by {sources} reaches "
                           f"{hit.sink}() inside {hit.via}(); cache keys "
                           "must be pure functions of the spec")
            self.report_at(hit.display_path, hit.lineno, hit.col, message)
        return self.findings
