"""RL005 — spec/config dataclass fields must be JSON-round-trippable.

``harness.runner.run_grid`` keys its disk cache on ``sha256`` of the
canonical JSON of the cell spec.  Spec-like dataclasses (any
``@dataclass`` named ``*Spec`` or ``*Config`` — the classes that feed
grids) must therefore hold only values with an exact, canonical JSON
form: ``int``/``float``/``str``/``bool``/``None``, tuples/lists of those,
string-keyed dicts of those, and nested spec/config dataclasses.  A field
typed ``np.ndarray`` or ``Callable`` would either crash the cache key or
— worse — serialize unstably and silently alias distinct cells.

Unparameterized ``dict``/``list``/``tuple`` annotations are flagged too:
the rule (and the runtime canonicalizer) cannot vouch for their contents.
"""

from __future__ import annotations

import ast

from .base import Rule

_PRIMITIVES = frozenset({"int", "float", "str", "bool", "None", "NoneType"})
_SEQ_HEADS = frozenset({"tuple", "Tuple", "list", "List", "Sequence", "frozenset", "FrozenSet"})
_MAP_HEADS = frozenset({"dict", "Dict", "Mapping"})
_SPEC_SUFFIXES = ("Spec", "Config")


def _head_name(node: ast.expr) -> str | None:
    """Rightmost identifier of a Name/Attribute annotation head."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_spec_name(name: str | None) -> bool:
    return name is not None and name.endswith(_SPEC_SUFFIXES)


def _json_ok(node: ast.expr | None) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Constant):
        if node.value is None or node.value is Ellipsis:
            return True  # `X | None` arm, `tuple[int, ...]` tail
        if isinstance(node.value, str):  # forward reference
            return node.value in _PRIMITIVES or _is_spec_name(node.value)
        return False
    if isinstance(node, (ast.Name, ast.Attribute)):
        head = _head_name(node)
        # Bare dict/list/tuple hide their contents from the cache key.
        if head in _SEQ_HEADS or head in _MAP_HEADS:
            return False
        return head in _PRIMITIVES or _is_spec_name(head)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _json_ok(node.left) and _json_ok(node.right)
    if isinstance(node, ast.Subscript):
        head = _head_name(node.value)
        args = list(node.slice.elts) if isinstance(node.slice, ast.Tuple) else [node.slice]
        if head in _SEQ_HEADS:
            return all(_json_ok(arg) for arg in args)
        if head in _MAP_HEADS:
            return (len(args) == 2 and _head_name(args[0]) == "str"
                    and _json_ok(args[1]))
        if head == "Optional":
            return len(args) == 1 and _json_ok(args[0])
        if head == "Union":
            return all(_json_ok(arg) for arg in args)
        if head == "Literal":
            return all(isinstance(arg, ast.Constant)
                       and isinstance(arg.value, (int, float, str, bool, type(None)))
                       for arg in args)
        return False
    return False


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = _head_name(target)
        if name == "dataclass":
            return True
    return False


class SpecFieldRule(Rule):
    code = "RL005"
    summary = ("*Spec/*Config dataclass field is not JSON-serializable "
               "(breaks run_grid cache-key integrity)")

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if _is_dataclass_decorated(node) and node.name.endswith(_SPEC_SUFFIXES):
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign):
                    continue
                if _head_name(stmt.annotation) == "ClassVar" or (
                        isinstance(stmt.annotation, ast.Subscript)
                        and _head_name(stmt.annotation.value) == "ClassVar"):
                    continue
                if not _json_ok(stmt.annotation):
                    field = stmt.target.id if isinstance(stmt.target, ast.Name) else "?"
                    self.report(stmt, f"field {node.name}.{field} is not a "
                                      "JSON-serializable primitive/tuple/dict"
                                      "[str, ...]/nested spec; it cannot form "
                                      "a stable run_grid cache key")
        self.generic_visit(node)
