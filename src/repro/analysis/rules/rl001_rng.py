"""RL001 — seeding discipline for NumPy RNGs.

Three failure modes, all of which have bitten ML-prefetcher reproductions
(results here must be bit-deterministic given a spec):

- ``np.random.default_rng()`` with no seed draws OS entropy — every run
  differs.
- The legacy module-level RNG (``np.random.rand`` & friends) mutates
  hidden global state, so results depend on call order across modules.
- Child seeds derived by arithmetic (``seed + 1``, ``seed * 3 + i``)
  collide across experiments: the cell seeded ``seed + 1`` in one grid is
  the cell seeded ``seed`` in the next.  Use
  ``np.random.SeedSequence(seed).spawn(n)`` (see ``repro.seeding``).
"""

from __future__ import annotations

import ast

from .base import Rule

#: numpy.random module-level legacy API (global hidden state).
_LEGACY = frozenset({
    "seed", "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "shuffle", "permutation", "choice", "uniform", "normal",
    "standard_normal", "binomial", "poisson", "beta", "gamma", "exponential",
    "get_state", "set_state", "RandomState",
})


def _mentions_seed(node: ast.expr) -> bool:
    """True when an expression's leaves include a name containing 'seed'."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and "seed" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute) and "seed" in sub.attr.lower():
            return True
    return False


class SeededRngRule(Rule):
    code = "RL001"
    summary = ("unseeded default_rng(), legacy np.random.* global RNG, or "
               "arithmetic-derived child seeds (use SeedSequence.spawn)")

    def visit_Call(self, node: ast.Call) -> None:
        qual = self.ctx.resolve(node.func)
        if qual == "numpy.random.default_rng":
            if not node.args and not node.keywords:
                self.report(node, "np.random.default_rng() without a seed is "
                                  "nondeterministic; pass an explicit seed or "
                                  "SeedSequence")
            else:
                seed_arg = node.args[0] if node.args else node.keywords[0].value
                if isinstance(seed_arg, ast.BinOp) and _mentions_seed(seed_arg):
                    self.report(node, "child seed derived by arithmetic on a "
                                      "base seed is collision-prone; use "
                                      "np.random.SeedSequence(seed).spawn(n) "
                                      "(repro.seeding.spawn_seeds)")
        elif qual is not None and qual.startswith("numpy.random."):
            attr = qual.rsplit(".", 1)[1]
            if attr in _LEGACY:
                self.report(node, f"legacy np.random.{attr} uses hidden global "
                                  "state; use a seeded np.random.default_rng "
                                  "Generator instead")
        self.generic_visit(node)
