"""RL004 — mutable default arguments.

A ``def f(xs=[])`` default is created once at function definition and
shared across calls; state leaks between experiment cells, so two
identical specs can produce different results depending on call history —
cache poison.  Use ``None`` plus an in-body default, or a frozen value.
"""

from __future__ import annotations

import ast

from .base import Rule

_MUTABLE_FACTORIES = frozenset({"list", "dict", "set", "bytearray", "deque"})


def _is_mutable(node: ast.expr | None) -> bool:
    if node is None:
        return False
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_FACTORIES)


class MutableDefaultRule(Rule):
    code = "RL004"
    summary = "mutable default argument (shared across calls)"

    def _check(self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> None:
        defaults = [*node.args.defaults, *node.args.kw_defaults]
        for default in defaults:
            if _is_mutable(default):
                name = getattr(node, "name", "<lambda>")
                self.report(default, f"mutable default argument in {name}(); "
                                     "use None and create it in the body")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check(node)
        self.generic_visit(node)
