"""Rule registry for repro-lint.

``ALL_RULES`` is the canonical ordered tuple; ``get_rules`` applies
``--select`` / ``--ignore`` filtering and rejects unknown codes loudly
(a typo'd ``--select RL0O1`` silently linting nothing would be its own
reproducibility bug).
"""

from __future__ import annotations

from .base import Rule
from .rl001_rng import SeededRngRule
from .rl002_wallclock import WallClockRule
from .rl003_floatcmp import FloatEqualityRule
from .rl004_mutable_defaults import MutableDefaultRule
from .rl005_spec_fields import SpecFieldRule
from .rl006_annotations import AnnotationRule
from .rl007_exceptions import SwallowedExceptionRule

ALL_RULES: tuple[type[Rule], ...] = (
    SeededRngRule,
    WallClockRule,
    FloatEqualityRule,
    MutableDefaultRule,
    SpecFieldRule,
    AnnotationRule,
    SwallowedExceptionRule,
)

RULES_BY_CODE: dict[str, type[Rule]] = {rule.code: rule for rule in ALL_RULES}


def get_rules(select: frozenset[str] | None = None,
              ignore: frozenset[str] | None = None) -> tuple[type[Rule], ...]:
    """Resolve the active rule set; raises ``ValueError`` on unknown codes."""
    for codes, flag in ((select, "--select"), (ignore, "--ignore")):
        if codes:
            unknown = sorted(codes - RULES_BY_CODE.keys())
            if unknown:
                raise ValueError(f"unknown rule code(s) for {flag}: "
                                 f"{', '.join(unknown)}")
    active = ALL_RULES
    if select:
        active = tuple(rule for rule in active if rule.code in select)
    if ignore:
        active = tuple(rule for rule in active if rule.code not in ignore)
    return active


__all__ = ["ALL_RULES", "RULES_BY_CODE", "Rule", "get_rules"]
