"""Rule registry for repro-lint.

``ALL_RULES`` is the canonical ordered tuple of per-file rules and
``PROJECT_RULES`` the whole-program (RL100-series) ones; ``get_rules``
applies ``--select`` / ``--ignore`` filtering across both and rejects
unknown codes loudly (a typo'd ``--select RL0O1`` silently linting
nothing would be its own reproducibility bug).
"""

from __future__ import annotations

from .base import ProjectRule, Rule
from .rl001_rng import SeededRngRule
from .rl002_wallclock import WallClockRule
from .rl003_floatcmp import FloatEqualityRule
from .rl004_mutable_defaults import MutableDefaultRule
from .rl005_spec_fields import SpecFieldRule
from .rl006_annotations import AnnotationRule
from .rl007_exceptions import SwallowedExceptionRule
from .rl101_cachekey_purity import CacheKeyPurityRule
from .rl102_backend_parity import BackendParityRule
from .rl103_concurrency import ConcurrencyHazardRule

ALL_RULES: tuple[type[Rule], ...] = (
    SeededRngRule,
    WallClockRule,
    FloatEqualityRule,
    MutableDefaultRule,
    SpecFieldRule,
    AnnotationRule,
    SwallowedExceptionRule,
)

PROJECT_RULES: tuple[type[ProjectRule], ...] = (
    CacheKeyPurityRule,
    BackendParityRule,
    ConcurrencyHazardRule,
)

RULES_BY_CODE: dict[str, type[Rule] | type[ProjectRule]] = {
    rule.code: rule for rule in ALL_RULES + PROJECT_RULES
}


def get_rules(
    select: frozenset[str] | None = None,
    ignore: frozenset[str] | None = None,
) -> tuple[tuple[type[Rule], ...], tuple[type[ProjectRule], ...]]:
    """Resolve the active (file rules, project rules) pair.

    Raises ``ValueError`` on unknown codes.
    """
    for codes, flag in ((select, "--select"), (ignore, "--ignore")):
        if codes:
            unknown = sorted(codes - RULES_BY_CODE.keys())
            if unknown:
                raise ValueError(f"unknown rule code(s) for {flag}: "
                                 f"{', '.join(unknown)}")

    def active(code: str) -> bool:
        if select and code not in select:
            return False
        if ignore and code in ignore:
            return False
        return True

    return (tuple(rule for rule in ALL_RULES if active(rule.code)),
            tuple(rule for rule in PROJECT_RULES if active(rule.code)))


__all__ = ["ALL_RULES", "PROJECT_RULES", "RULES_BY_CODE", "ProjectRule",
           "Rule", "get_rules"]
