"""RL007 — bare / swallowed exceptions in simulator hot paths.

Inside ``core/``, ``memsim/``, ``nn/`` and ``patterns/`` an exception is
evidence that a run's invariants broke; catching it broadly (``except:``,
``except Exception``) or silently discarding it (``except X: pass``)
converts a loud failure into a quietly wrong — and cacheable — result.
Catch the narrowest type and handle it, or let it propagate.  A justified
swallow (e.g. an idempotent-free operation) takes a
``# repro-lint: disable=RL007`` with the reason in the comment.
"""

from __future__ import annotations

import ast

from .base import Rule

_BROAD = frozenset({"Exception", "BaseException"})


def _names(type_node: ast.expr) -> list[str]:
    nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
    out: list[str] = []
    for node in nodes:
        if isinstance(node, ast.Name):
            out.append(node.id)
        elif isinstance(node, ast.Attribute):
            out.append(node.attr)
    return out


def _swallows(handler: ast.ExceptHandler) -> bool:
    """Body is only ``pass`` / ``...`` — the exception vanishes."""
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant) \
                and stmt.value.value is Ellipsis:
            continue
        return False
    return True


class SwallowedExceptionRule(Rule):
    code = "RL007"
    summary = ("bare except or silently swallowed exception in a simulator "
               "hot path")

    def applies(self) -> bool:
        return self.ctx.in_sim_zone

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(node, "bare except in a simulator hot path catches "
                              "everything (including KeyboardInterrupt); name "
                              "the exception type")
        elif any(name in _BROAD for name in _names(node.type)) and _swallows(node):
            self.report(node, "broad exception silently swallowed; a failed "
                              "invariant would become a quietly wrong result")
        elif _swallows(node):
            self.report(node, "exception silently swallowed in a simulator hot "
                              "path; handle it or let it propagate "
                              "(suppress with a justification if intended)")
        self.generic_visit(node)
