"""RL002 — wall-clock / environment nondeterminism in simulator hot paths.

Inside ``core/``, ``memsim/``, ``nn/`` and ``patterns/`` every output must
be a pure function of the spec.  Reading the clock, OS entropy, process
environment, or the stdlib ``random`` module makes results vary run-to-run
and silently poisons the sha256(spec) disk cache in ``harness/runner.py``
(the cache key cannot see the hidden input).  Timing belongs in
``benchmarks/``; configuration belongs in specs.
"""

from __future__ import annotations

import ast

from .base import Rule

_NONDET_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow", "datetime.date.today",
    "os.urandom", "os.getenv", "os.getpid", "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.randbits",
    "secrets.randbelow", "secrets.choice",
})


class WallClockRule(Rule):
    code = "RL002"
    summary = ("wall-clock, OS entropy, environment, or stdlib random use "
               "inside core/, memsim/, nn/, patterns/")

    def applies(self) -> bool:
        return self.ctx.in_sim_zone

    def visit_Call(self, node: ast.Call) -> None:
        qual = self.ctx.resolve(node.func)
        if qual in _NONDET_CALLS:
            self.report(node, f"{qual}() is nondeterministic; simulator hot "
                              "paths must be pure functions of the spec")
        elif qual is not None and (qual == "random" or qual.startswith("random.")):
            self.report(node, f"stdlib {qual}() has hidden global state; use a "
                              "seeded np.random.default_rng Generator")
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self.ctx.resolve(node) == "os.environ":
            self.report(node, "os.environ read in a simulator hot path makes "
                              "results depend on the environment; plumb the "
                              "value through the spec")
        self.generic_visit(node)
