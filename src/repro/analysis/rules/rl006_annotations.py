"""RL006 — public functions must be fully type-annotated.

The ``mypy --strict`` gate only protects code it can see types for; an
unannotated public function is a hole in the contract the rest of the
repo type-checks against.  "Public" means a module-level function, or a
method of a module-level public class, whose name does not start with an
underscore (dunders are therefore exempt — mypy infers those).
"""

from __future__ import annotations

import ast

from .base import Rule

_FuncDef = ast.FunctionDef | ast.AsyncFunctionDef


def _missing_annotations(node: _FuncDef) -> list[str]:
    missing: list[str] = []
    args = node.args
    positional = [*args.posonlyargs, *args.args]
    for i, arg in enumerate(positional):
        if i == 0 and arg.arg in ("self", "cls"):
            continue
        if arg.annotation is None:
            missing.append(f"parameter '{arg.arg}'")
    for arg in args.kwonlyargs:
        if arg.annotation is None:
            missing.append(f"parameter '{arg.arg}'")
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append(f"parameter '*{args.vararg.arg}'")
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append(f"parameter '**{args.kwarg.arg}'")
    if node.returns is None:
        missing.append("return type")
    return missing


class AnnotationRule(Rule):
    code = "RL006"
    summary = "public function missing parameter or return annotations"

    def applies(self) -> bool:
        return not self.ctx.is_test

    def run(self) -> list:
        if not self.applies():
            return self.findings
        for stmt in self.ctx.tree.body:
            if isinstance(stmt, _FuncDef):
                self._check(stmt, stmt.name)
            elif isinstance(stmt, ast.ClassDef) and not stmt.name.startswith("_"):
                for member in stmt.body:
                    if isinstance(member, _FuncDef):
                        self._check(member, f"{stmt.name}.{member.name}")
        return self.findings

    def _check(self, node: _FuncDef, qualname: str) -> None:
        if node.name.startswith("_"):
            return
        missing = _missing_annotations(node)
        if missing:
            self.report(node, f"public function {qualname}() is missing "
                              f"annotations: {', '.join(missing)}")
