"""RL103 — concurrency hazards: ambient state the process-pool forgets.

The grid runner fans specs out over ``ProcessPoolExecutor`` workers.
Workers inherit module state exactly once (at ``_init_worker``); any
later mutation of module-level state in the parent silently diverges
from the children, and any mutation inside a worker is invisible to its
siblings.  The same shapes become data races the moment anything moves
to threads.  Three structural checks:

(a) **Mutable module globals** — a module-level name bound to a mutable
    container (``dict``/``list``/``set``/``deque``/...) is shared
    per-process state.  Constant-styled names (``ALL_CAPS``, leading
    underscores allowed) are exempt: naming them as constants is the
    project's declared intent, and RL103(b) still fires if anything
    actually mutates them.  Everything else needs a
    ``# repro-lint: zone=<name>`` marker acknowledging the hazard.

(b) **Ambient writes outside zones** — rebinding a module global via
    ``global``, mutating a module-level container, or writing another
    module's attribute from a function is only sanctioned inside a
    zone-annotated function (``zone=init`` for one-time process setup
    being the convention).

(c) **Foreign instance-attribute writes** — a method of class A writing
    ``obj.attr`` where ``obj`` is an instance of class B couples the
    two classes' state without any visible contract.  Writes to
    locally-constructed objects (built inside the same function) are
    exempt, as are functions holding a lock (a ``with ...lock...:``
    block) and zone-annotated functions.
"""

from __future__ import annotations

import ast

from .base import ProjectRule
from ..dataflow.callgraph import FunctionInfo
from ..dataflow.symbols import dotted_name
from ..finding import Finding


def _holds_lock(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Whether the function body enters a ``with``-block on a lock."""
    for item in ast.walk(node):
        if not isinstance(item, (ast.With, ast.AsyncWith)):
            continue
        for withitem in item.items:
            expr = withitem.context_expr
            if isinstance(expr, ast.Call):
                expr = expr.func
            name = dotted_name(expr)
            if name is None:
                continue
            leaf = name.rpartition(".")[2].lower()
            if "lock" in leaf or leaf in ("semaphore", "condition"):
                return True
    return False


class ConcurrencyHazardRule(ProjectRule):
    code = "RL103"
    summary = ("shared mutable module globals, ambient state writes "
               "outside init zones, cross-class instance attribute "
               "writes without a lock")

    def run(self) -> list[Finding]:
        self._check_mutable_globals()
        self._check_ambient_writes()
        self._check_foreign_attr_writes()
        return self.findings

    # -- (a) mutable module-global declarations ---------------------------
    def _check_mutable_globals(self) -> None:
        for g in self.project.ambient_globals.values():
            if not g.mutable or g.constant_styled:
                continue
            if self.project.zone_at(g.display_path, g.lineno) is not None:
                continue
            self.report_at(
                g.display_path, g.lineno, 0,
                f"module-level mutable global {g.name} is shared "
                "per-process state; rename to constant style if it is "
                "never mutated, or mark the declaration with "
                "'# repro-lint: zone=<name>' to acknowledge the hazard")

    # -- (b) ambient writes outside sanctioned zones ----------------------
    def _check_ambient_writes(self) -> None:
        for mutation in self.project.global_mutations:
            zone = self.project.zone_at(mutation.display_path,
                                        mutation.lineno)
            if zone is not None:
                continue
            where = (f" in {mutation.function}()"
                     if mutation.function else "")
            if mutation.kind == "global-rebind":
                what = f"rebinds module global {mutation.target}"
            elif mutation.kind == "container":
                what = f"mutates module-level container {mutation.target}"
            else:
                what = ("writes another module's state "
                        f"{mutation.target}")
            self.report_at(
                mutation.display_path, mutation.lineno, 0,
                f"ambient state write{where}: {what}; pool workers fork "
                "module state once, so mutations after import diverge "
                "silently — move into a '# repro-lint: zone=init' "
                "function or pass the value explicitly")

    # -- (c) cross-class instance attribute writes ------------------------
    def _check_foreign_attr_writes(self) -> None:
        for fn in self.project.callgraph.functions():
            zones = self.project.zone_at(fn.module.display_path,
                                         fn.node.lineno)
            if zones is not None:
                continue
            if _holds_lock(fn.node):
                continue
            local_objects = self._locally_constructed(fn)
            self_name = fn.self_name()
            for node in ast.walk(fn.node):
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    targets = [node.target]
                for target in targets:
                    self._check_attr_target(fn, target,
                                            getattr(node, "lineno", 1),
                                            self_name, local_objects)

    def _check_attr_target(self, fn: FunctionInfo, target: ast.expr,
                           lineno: int, self_name: str | None,
                           local_objects: set[str]) -> None:
        if not isinstance(target, ast.Attribute):
            return
        base = target.value
        if not isinstance(base, ast.Name):
            return
        name = base.id
        if self_name is not None and name in (self_name, "cls"):
            return
        if name in local_objects:
            return
        owner = self._param_or_local_class(fn, name)
        if owner is None:
            return
        if fn.owner_class is not None and owner == fn.owner_class:
            # Writing a sibling instance of the same class (e.g. a
            # builder producing its twin) shares the class's own
            # invariants; not a cross-class coupling.
            return
        zone = self.project.zone_at(fn.module.display_path, lineno)
        if zone is not None:
            return
        self.report_at(
            fn.module.display_path, lineno, 0,
            f"{fn.qualname}() writes {name}.{target.attr} on an instance "
            f"of another class ({owner}); cross-class state writes need "
            "a lock, a zone marker, or a method on the owning class")

    def _locally_constructed(self, fn: FunctionInfo) -> set[str]:
        """Names bound in this function to freshly-constructed objects
        (class calls, literals, comprehensions, copies)."""
        local: set[str] = set()
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Assign):
                continue
            if not self._is_fresh_value(fn, node.value):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    local.add(target.id)
                elif isinstance(target, ast.Tuple):
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            local.add(elt.id)
        return local

    def _is_fresh_value(self, fn: FunctionInfo, value: ast.expr) -> bool:
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.Tuple,
                              ast.ListComp, ast.DictComp, ast.SetComp,
                              ast.Constant)):
            return True
        if isinstance(value, ast.Call):
            name = dotted_name(value.func)
            if name is None:
                return False
            leaf = name.rpartition(".")[2]
            if leaf in ("copy", "deepcopy", "replace"):
                return True
            resolved = self.project.symbols.resolve(fn.module, name)
            if resolved is not None:
                symbol = self.project.symbols.lookup(resolved)
                if symbol is not None and symbol.kind == "class":
                    return True
            # Capitalized bare constructor (project class not in the
            # linted set, or a dataclass factory): treat as fresh.
            return bool(leaf[:1].isupper())
        return False

    def _param_or_local_class(self, fn: FunctionInfo,
                              name: str) -> str | None:
        """Class qualname when ``name`` is a parameter annotated with a
        known project class; else ``None``.

        Only annotated/known-class receivers are flagged — a bare
        untyped parameter could be anything, and guessing would drown
        the signal in false positives.
        """
        args = fn.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.arg != name or arg.annotation is None:
                continue
            ann = arg.annotation
            if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
                try:
                    ann = ast.parse(ann.value, mode="eval").body
                except SyntaxError:
                    return None
            dotted = dotted_name(ann)
            if dotted is None:
                return None
            resolved = self.project.symbols.resolve(fn.module, dotted)
            if resolved is None:
                return None
            symbol = self.project.symbols.lookup(resolved)
            if symbol is not None and symbol.kind == "class":
                return resolved
            return None
        return None
