"""Per-file analysis context shared by every rule.

A :class:`FileContext` owns the parsed AST plus the cheap derived facts
rules keep asking about: where the file sits relative to the simulator
hot paths, whether it is a test, and what each imported name resolves to
(so ``np.random.default_rng`` and ``from numpy.random import default_rng``
look identical to a rule).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

#: Directory components that mark the deterministic simulator hot paths.
#: RL002 (wall-clock nondeterminism) and RL007 (swallowed exceptions) only
#: apply inside these.
SIM_ZONES = frozenset({"core", "memsim", "nn", "patterns"})


def _is_test_file(path: Path) -> bool:
    name = path.name
    return name.startswith("test_") or name.endswith("_test.py") or name == "conftest.py"


@dataclass
class FileContext:
    """Everything a rule needs to know about one source file."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    #: local name -> fully qualified dotted name it was imported as.
    imports: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.imports = _collect_imports(self.tree)

    @property
    def is_test(self) -> bool:
        """True for ``test_*.py`` / ``*_test.py`` / ``conftest.py`` files."""
        return _is_test_file(self.path)

    @property
    def in_sim_zone(self) -> bool:
        """True when the file lives under a deterministic hot-path package."""
        return not SIM_ZONES.isdisjoint(self.path.parts)

    def resolve(self, node: ast.expr) -> str | None:
        """Fully qualified dotted name of ``node``, or ``None``.

        Follows the file's imports: with ``import numpy as np``,
        ``np.random.default_rng`` resolves to ``numpy.random.default_rng``.
        Names bound by assignment (locals, attributes of locals) do not
        resolve, which keeps rules free of false positives on e.g.
        ``rng.choice``.
        """
        dotted = _dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        target = self.imports.get(head)
        if target is None:
            return None
        return f"{target}.{rest}" if rest else target

    @classmethod
    def parse(cls, path: Path, display_path: str | None = None) -> "FileContext":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(path=path, display_path=display_path or str(path),
                   source=source, tree=tree)


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _collect_imports(tree: ast.Module) -> dict[str, str]:
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.partition(".")[0]
                # ``import a.b`` binds ``a``; ``import a.b as c`` binds c=a.b.
                imports[local] = alias.name if alias.asname else alias.name.partition(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import — never numpy/time/os/random
                continue
            module = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{module}.{alias.name}" if module else alias.name
    return imports
