"""The unit of lint output: one rule violation at one source location."""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """A single rule violation.

    Orders by (path, line, col, code) so reports are stable regardless of
    rule execution order — determinism applies to the linter too.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """Human-readable ``path:line:col: CODE message`` form."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_json(self) -> dict[str, object]:
        """JSON-serializable dict form (for ``--format json``)."""
        return asdict(self)
