"""Collision-free child-seed derivation.

Deriving child seeds by arithmetic (``seed + 1``, ``seed * 3 + i``) is
collision-prone: the cell seeded ``seed + 1`` in one experiment is the
cell seeded ``seed`` in the next, so "independent" runs share entire RNG
streams.  ``np.random.SeedSequence`` mixes the parent seed and the spawn
index through a hash, making every child stream statistically independent
of its siblings *and* of any plainly-seeded parent (repro-lint RL001
flags the arithmetic pattern).

Child seeds are materialized as plain Python ints so they can sit in
JSON-serializable specs and feed ``harness.runner`` cache keys.
"""

from __future__ import annotations

import numpy as np


def spawn_seeds(seed: int, n: int) -> tuple[int, ...]:
    """Derive ``n`` independent integer child seeds from ``seed``.

    Deterministic: ``spawn_seeds(s, n)[:k] == spawn_seeds(s, k)`` for
    ``k <= n``, so growing a grid never reshuffles existing cells.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    return tuple(int(child.generate_state(1, dtype=np.uint32)[0])
                 for child in np.random.SeedSequence(seed).spawn(n))


def child_rng(seed: int, index: int) -> np.random.Generator:
    """Generator for the ``index``-th child stream of ``seed``.

    Equivalent to ``np.random.default_rng(spawn_seeds(seed, index + 1)[index])``
    — use it when the consumer wants a Generator rather than a spec field.
    """
    if index < 0:
        raise ValueError("index must be non-negative")
    return np.random.default_rng(spawn_seeds(seed, index + 1)[index])
