"""Multi-phase trace composition.

The interference experiments (§2.2, Figure 3) present an online learner
with one access pattern, then switch to a different one, and optionally
return to the first.  This module builds such phased traces and keeps
per-phase boundaries so experiments can score each phase separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..seeding import spawn_seeds
from . import generators
from .generators import PatternSpec
from .trace import Trace


@dataclass(frozen=True)
class Phase:
    """One phase of a phased trace.

    Attributes:
        pattern: Table 1 pattern name (see ``generators.PATTERN_NAMES``).
        n: Number of accesses in the phase.
        spec_overrides: PatternSpec fields to override for this phase.
    """

    pattern: str
    n: int = 1000
    spec_overrides: dict = field(default_factory=dict)


@dataclass
class PhasedTrace:
    """A trace plus the [start, stop) boundary of each phase."""

    trace: Trace
    boundaries: list[tuple[int, int]]
    phases: list[Phase]

    def phase_slice(self, index: int) -> Trace:
        start, stop = self.boundaries[index]
        return self.trace.slice(start, stop, name=self.phases[index].pattern)

    def phase_of(self, access_index: int) -> int:
        for i, (start, stop) in enumerate(self.boundaries):
            if start <= access_index < stop:
                return i
        raise IndexError(access_index)


def build_phased_trace(phases: list[Phase], base_spec: PatternSpec = PatternSpec(),
                       seed: int = 0) -> PhasedTrace:
    """Concatenate pattern phases into one trace with recorded boundaries.

    Each phase gets a distinct base address region (offset by phase index)
    so patterns do not collide in memory — matching how distinct application
    phases touch distinct structures.
    """
    if not phases:
        raise ValueError("need at least one phase")
    traces: list[Trace] = []
    boundaries: list[tuple[int, int]] = []
    cursor = 0
    phase_seeds = spawn_seeds(seed, len(phases))
    for i, phase in enumerate(phases):
        overrides = dict(phase.spec_overrides)
        overrides.setdefault("n", phase.n)
        overrides.setdefault("seed", phase_seeds[i])
        overrides.setdefault("base", base_spec.base + i * 0x1000_0000)
        spec = PatternSpec(
            n=overrides.pop("n"),
            element_size=overrides.pop("element_size", base_spec.element_size),
            working_set=overrides.pop("working_set", base_spec.working_set),
            base=overrides.pop("base"),
            seed=overrides.pop("seed"),
        )
        traces.append(generators.generate(phase.pattern, spec, **overrides))
        boundaries.append((cursor, cursor + len(traces[-1])))
        cursor += len(traces[-1])

    combined = traces[0]
    for t in traces[1:]:
        combined = combined.concat(t)
    combined.name = "+".join(p.pattern for p in phases)
    return PhasedTrace(trace=combined, boundaries=boundaries, phases=list(phases))


def pattern_pairs(seed: int = 0) -> list[tuple[str, str]]:
    """The pattern pairs used for the Figure 3 interference study.

    The paper selects "different pairs of patterns" from Table 1; we use
    three representative pairs mixing regular and irregular patterns, which
    matches the three panel pairs (a–c)/(d–f) in Figure 3.
    """
    del seed  # fixed set, kept for signature stability
    return [
        ("stride", "pointer_chase"),
        ("indirect_index", "stride"),
        ("pointer_chase", "indirect_stride"),
    ]
