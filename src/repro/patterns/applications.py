"""Application-like trace synthesizers.

The paper evaluates online prefetching (Figure 5) on traces of four real
applications — TensorFlow training ResNet-50, PageRank on GraphChi, SPEC
mcf, and graph500 — and reports a negative result (§5.3) on memcached and
cachebench.  Those traces (2 billion accesses each, collected on real
hardware) are not released, so this module synthesizes traces that
reproduce each application's *dominant access structure*, which is what an
online learner can or cannot exploit:

- ``resnet_training``: epoch-repeated tiled streaming over inputs plus hot,
  repeatedly-touched parameter regions.
- ``pagerank_graphchi``: per-shard sequential edge streaming with
  vertex-value reads indexed by a fixed graph, repeated across iterations.
- ``mcf``: alternating sequential arc-array scans and pointer-network
  traversals with node-field offsets (network simplex flavour).
- ``graph500``: repeated BFS over a fixed RMAT-style graph — sequential
  adjacency reads per vertex, pseudorandom-but-fixed frontier order.
- ``memcached`` / ``cachebench``: hash-bucket + item-chain lookups driven by
  fresh random key draws every step; by construction there is almost no
  sequence structure for an address-delta learner to find (§5.3).

All generators are deterministic for a fixed seed and scale linearly with
``n``, so the paper's 2B-access scale is only a parameter away (documented
substitution #1 in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from .trace import Trace

#: Figure 5 application set, in paper order.
FIG5_APPLICATIONS = ("resnet", "pagerank", "mcf", "graph500")

#: §5.3 pointer-based caching applications where delta learning fails.
HARD_APPLICATIONS = ("memcached", "cachebench")

ALL_APPLICATIONS = FIG5_APPLICATIONS + HARD_APPLICATIONS

_KB = 1024
_MB = 1024 * 1024


@dataclass(frozen=True)
class AppSpec:
    """Shared knobs for application synthesizers.

    Attributes:
        n: Total number of accesses to emit (generators may emit up to a few
            accesses fewer to keep inner loops whole).
        seed: RNG seed; fixes the synthetic data-structure layout.
        scale: Working-set scale factor.  1.0 gives footprints of a few
            thousand 4 KiB pages — large enough for a 50%-of-footprint
            memory (Figure 5's setup) to produce a meaningful miss stream,
            small enough for fast tests.
    """

    n: int = 100_000
    seed: int = 0
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError("n must be positive")
        if self.scale <= 0:
            raise ValueError("scale must be positive")

    def scaled(self, value: int, minimum: int = 1) -> int:
        return max(minimum, int(value * self.scale))


def resnet_training(spec: AppSpec = AppSpec()) -> Trace:
    """TensorFlow/ResNet-50-like training loop.

    Structure per step: stream one input batch tile-by-tile (sequential,
    constant stride), touch the hot parameter region (same addresses every
    step), and stream an activation buffer.  Steps repeat over a bounded
    number of distinct batches, modelling epoch re-reads of a dataset.
    """
    rng = np.random.default_rng(spec.seed)
    input_base = 0x1000_0000
    param_base = 0x4000_0000
    act_base = 0x6000_0000

    n_batches = spec.scaled(16, 2)
    batch_bytes = spec.scaled(512 * _KB, 64 * _KB)
    tile = 4 * _KB
    tiles_per_batch = batch_bytes // tile
    param_pages = spec.scaled(96, 8)
    act_pages = spec.scaled(48, 4)

    # Hot parameter pages are touched in a fixed (layer) order each step.
    param_order = rng.permutation(param_pages).astype(np.int64)

    chunks: list[np.ndarray] = []
    kind_chunks: list[np.ndarray] = []
    total = 0
    batch = 0
    while total < spec.n:
        b = batch % n_batches
        batch += 1
        seq = input_base + b * batch_bytes + np.arange(tiles_per_batch, dtype=np.int64) * tile
        params = param_base + param_order * 4096
        acts = act_base + np.arange(act_pages, dtype=np.int64) * 4096
        step = np.concatenate([seq, params, acts])
        kinds = np.zeros(len(step), dtype=np.uint8)
        kinds[len(seq) + len(params):] = 1  # activation buffer is written
        chunks.append(step)
        kind_chunks.append(kinds)
        total += len(step)
    addresses = np.concatenate(chunks)[: spec.n]
    kinds = np.concatenate(kind_chunks)[: spec.n]
    return Trace(
        name="resnet",
        addresses=addresses,
        kinds=kinds,
        metadata={"app": "resnet", "n_batches": n_batches, "seed": spec.seed},
    )


def pagerank_graphchi(spec: AppSpec = AppSpec()) -> Trace:
    """GraphChi-style PageRank: shard-sequential edges + indexed vertex reads.

    The graph is fixed at construction; every iteration replays the same
    shard order and the same per-edge vertex indices, so the pseudorandom
    vertex-access subsequences repeat across iterations — the learnable
    structure the paper relies on.
    """
    rng = np.random.default_rng(spec.seed)
    edge_base = 0x2000_0000
    vertex_base = 0x5000_0000

    n_shards = spec.scaled(8, 2)
    edges_per_shard = spec.scaled(512, 64)
    n_vertices = spec.scaled(2048, 128)
    # Edge records and vertex values are padded structs; the sizes keep the
    # page-level footprint large enough that a 50%-of-footprint memory
    # (Figure 5's setup) produces a meaningful miss stream.
    edge_bytes = 64
    vertex_bytes = 64

    # Fixed edge targets per shard (skewed like a power-law graph).
    targets = (rng.pareto(1.3, size=(n_shards, edges_per_shard)) * n_vertices * 0.05)
    targets = np.minimum(targets.astype(np.int64), n_vertices - 1)

    per_iter = n_shards * edges_per_shard * 2
    chunks: list[np.ndarray] = []
    total = 0
    while total < spec.n:
        for s in range(n_shards):
            edge_addr = (edge_base + s * edges_per_shard * edge_bytes
                         + np.arange(edges_per_shard, dtype=np.int64) * edge_bytes)
            vert_addr = vertex_base + targets[s] * vertex_bytes
            step = np.empty(edges_per_shard * 2, dtype=np.int64)
            step[0::2] = edge_addr
            step[1::2] = vert_addr
            chunks.append(step)
        total += per_iter
    addresses = np.concatenate(chunks)[: spec.n]
    kinds = np.zeros(len(addresses), dtype=np.uint8)
    kinds[1::2] = 1  # vertex rank accumulation is a read-modify-write
    return Trace(
        name="pagerank",
        addresses=addresses,
        kinds=kinds,
        metadata={"app": "pagerank", "n_shards": n_shards, "n_vertices": n_vertices,
                  "seed": spec.seed},
    )


def mcf(spec: AppSpec = AppSpec()) -> Trace:
    """SPEC mcf-like network simplex: arc scans + node pointer traversals.

    Alternates a sequential scan over the arc array (pricing) with a
    pointer walk over a fixed spanning-tree order of nodes, touching two
    fields per node (cost/parent).  Both phases repeat each outer iteration.
    """
    rng = np.random.default_rng(spec.seed)
    arc_base = 0x3000_0000
    node_base = 0x7000_0000

    n_arcs = spec.scaled(4096, 256)
    n_nodes = spec.scaled(1024, 64)
    arc_bytes = 64
    node_bytes = 128

    tree_order = rng.permutation(n_nodes).astype(np.int64)
    node_addr = node_base + tree_order * node_bytes
    node_walk = np.empty(n_nodes * 2, dtype=np.int64)
    node_walk[0::2] = node_addr
    node_walk[1::2] = node_addr + 64  # second cache line of the node struct

    arc_scan = arc_base + np.arange(n_arcs, dtype=np.int64) * arc_bytes

    node_kinds = np.zeros(len(node_walk), dtype=np.uint8)
    node_kinds[1::2] = 1  # the second node field (flow/parent) is updated

    per_iter = len(arc_scan) + len(node_walk)
    chunks: list[np.ndarray] = []
    kind_chunks: list[np.ndarray] = []
    total = 0
    while total < spec.n:
        chunks.append(arc_scan)
        kind_chunks.append(np.zeros(len(arc_scan), dtype=np.uint8))
        chunks.append(node_walk)
        kind_chunks.append(node_kinds)
        total += per_iter
    addresses = np.concatenate(chunks)[: spec.n]
    kinds = np.concatenate(kind_chunks)[: spec.n]
    return Trace(
        name="mcf",
        addresses=addresses,
        kinds=kinds,
        metadata={"app": "mcf", "n_arcs": n_arcs, "n_nodes": n_nodes, "seed": spec.seed},
    )


def graph500(spec: AppSpec = AppSpec()) -> Trace:
    """graph500-like repeated BFS over a fixed RMAT-style graph.

    Builds a small RMAT graph (skewed degrees), runs BFS from a fixed
    source, and replays the resulting visit order: for each visited vertex,
    one vertex-array read then a sequential sweep of its adjacency list.
    Successive BFS runs repeat the same order (fixed graph, fixed source).
    """
    rng = np.random.default_rng(spec.seed)
    n_vertices = spec.scaled(256, 64)
    avg_degree = 8
    vertex_base = 0x8000_0000
    edge_base = 0x9000_0000
    # Padded records (see pagerank note): keeps the page footprint large
    # enough for the 50%-of-footprint memory setup.
    vertex_bytes = 4096
    edge_bytes = 128

    src, dst = _rmat_edges(n_vertices, n_vertices * avg_degree, rng)
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    degrees = np.bincount(src, minlength=n_vertices)
    offsets = np.concatenate([[0], np.cumsum(degrees)])

    visit_order = _bfs_order(n_vertices, src, dst, offsets, source=0)

    # One BFS pass: for each visited vertex, vertex read + adjacency sweep.
    pieces = []
    for v in visit_order:
        pieces.append(np.array([vertex_base + v * vertex_bytes], dtype=np.int64))
        lo, hi = int(offsets[v]), int(offsets[v + 1])
        if hi > lo:
            pieces.append(edge_base + np.arange(lo, hi, dtype=np.int64) * edge_bytes)
    one_pass = np.concatenate(pieces)

    reps = max(1, -(-spec.n // len(one_pass)))
    addresses = np.tile(one_pass, reps)[: spec.n]
    return Trace(
        name="graph500",
        addresses=addresses,
        metadata={"app": "graph500", "n_vertices": n_vertices, "seed": spec.seed},
    )


def memcached(spec: AppSpec = AppSpec(), zipf_s: float = 1.1) -> Trace:
    """memcached-like GET storm: hash bucket probe then item-chain walk.

    Keys are drawn fresh from a Zipf distribution each access, so while the
    *objects* are fixed, the sequence order is random: consecutive-address
    deltas carry almost no information (§5.3's negative result).
    """
    rng = np.random.default_rng(spec.seed)
    n_keys = spec.scaled(8192, 512)
    bucket_base = 0xA000_0000
    item_base = 0xB000_0000
    n_buckets = n_keys  # load factor 1
    item_bytes = 128

    key_bucket = rng.permutation(n_buckets).astype(np.int64)  # fixed hash
    key_item = rng.permutation(n_keys).astype(np.int64)       # fixed heap layout
    chain_len = rng.integers(1, 4, size=n_keys)

    # Oversample lookups so truncation to exactly n accesses always succeeds.
    lookups = max(1, spec.n // 2 + 8)
    keys = _zipf(rng, zipf_s, n_keys, lookups)

    pieces = []
    total = 0
    for k in keys:
        bucket = bucket_base + key_bucket[k] * 8
        item = item_base + key_item[k] * item_bytes
        chain = item + np.arange(chain_len[k], dtype=np.int64) * item_bytes * n_keys // 4
        pieces.append(np.concatenate([[bucket], chain]))
        total += 1 + chain_len[k]
        if total >= spec.n:
            break
    addresses = np.concatenate(pieces)[: spec.n]
    if len(addresses) < spec.n:
        raise AssertionError("memcached generator under-produced; widen oversampling")
    return Trace(
        name="memcached",
        addresses=addresses,
        metadata={"app": "memcached", "n_keys": n_keys, "zipf_s": zipf_s, "seed": spec.seed},
    )


def cachebench(spec: AppSpec = AppSpec()) -> Trace:
    """CacheLib cachebench-like mix: uniform random lookups + rare scans."""
    rng = np.random.default_rng(spec.seed)
    n_items = spec.scaled(16384, 1024)
    item_base = 0xC000_0000
    item_bytes = 256

    layout = rng.permutation(n_items).astype(np.int64)
    pieces = []
    total = 0
    while total < spec.n:
        if rng.random() < 0.02:  # occasional utility scan
            start = int(rng.integers(0, n_items - 64))
            burst = item_base + layout[start:start + 64] * item_bytes
        else:
            burst = item_base + layout[rng.integers(0, n_items, size=8)] * item_bytes
        pieces.append(burst)
        total += len(burst)
    addresses = np.concatenate(pieces)[: spec.n]
    return Trace(
        name="cachebench",
        addresses=addresses,
        metadata={"app": "cachebench", "n_items": n_items, "seed": spec.seed},
    )


def generate_application(app: str, spec: AppSpec = AppSpec(), **kwargs: Any) -> Trace:
    """Generate an application trace by name (see ``ALL_APPLICATIONS``)."""
    try:
        factory = _FACTORIES[app]
    except KeyError:
        raise ValueError(
            f"unknown application {app!r}; expected one of {ALL_APPLICATIONS}"
        ) from None
    return factory(spec, **kwargs)


# ----------------------------------------------------------------------
# Graph helpers
# ----------------------------------------------------------------------
def _rmat_edges(n_vertices: int, n_edges: int,
                rng: np.random.Generator,
                probs: tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05),
                ) -> tuple[np.ndarray, np.ndarray]:
    """Kronecker/RMAT-style edge list with skewed degree distribution."""
    levels = max(1, int(np.ceil(np.log2(max(2, n_vertices)))))
    a, b, c, _d = probs
    src = np.zeros(n_edges, dtype=np.int64)
    dst = np.zeros(n_edges, dtype=np.int64)
    for _ in range(levels):
        r = rng.random(n_edges)
        right = (r >= a) & (r < a + b)
        down = (r >= a + b) & (r < a + b + c)
        diag = r >= a + b + c
        src = src * 2 + (down | diag)
        dst = dst * 2 + (right | diag)
    src %= n_vertices
    dst %= n_vertices
    return src, dst


def _bfs_order(n_vertices: int, src: np.ndarray, dst: np.ndarray,
               offsets: np.ndarray, source: int) -> list[int]:
    """BFS visit order over a CSR graph; unreached vertices are skipped."""
    visited = np.zeros(n_vertices, dtype=bool)
    visited[source] = True
    order = [source]
    frontier = [source]
    while frontier:
        nxt: list[int] = []
        for v in frontier:
            lo, hi = int(offsets[v]), int(offsets[v + 1])
            for u in dst[lo:hi]:
                u = int(u)
                if not visited[u]:
                    visited[u] = True
                    nxt.append(u)
                    order.append(u)
        frontier = nxt
    return order


def _zipf(rng: np.random.Generator, s: float, n: int, size: int) -> np.ndarray:
    """Bounded Zipf(s) draws over [0, n) via inverse-CDF sampling."""
    weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), s)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    return np.searchsorted(cdf, rng.random(size)).astype(np.int64)


_FACTORIES = {
    "resnet": resnet_training,
    "pagerank": pagerank_graphchi,
    "mcf": mcf,
    "graph500": graph500,
    "memcached": memcached,
    "cachebench": cachebench,
}
