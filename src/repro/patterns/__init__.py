"""Access-pattern and trace substrates (Table 1, Figure 5 workloads)."""

from .trace import KIND_LOAD, KIND_STORE, MemoryAccess, Trace, interleave
from .generators import (
    PATTERN_NAMES,
    PatternSpec,
    generate,
    indirect_index,
    indirect_stride,
    pointer_chase,
    pointer_offset,
    stride,
)
from .applications import (
    ALL_APPLICATIONS,
    FIG5_APPLICATIONS,
    HARD_APPLICATIONS,
    AppSpec,
    cachebench,
    generate_application,
    graph500,
    mcf,
    memcached,
    pagerank_graphchi,
    resnet_training,
)
from .phases import Phase, PhasedTrace, build_phased_trace, pattern_pairs

__all__ = [
    "KIND_LOAD",
    "KIND_STORE",
    "MemoryAccess",
    "Trace",
    "interleave",
    "PATTERN_NAMES",
    "PatternSpec",
    "generate",
    "stride",
    "pointer_chase",
    "indirect_stride",
    "indirect_index",
    "pointer_offset",
    "ALL_APPLICATIONS",
    "FIG5_APPLICATIONS",
    "HARD_APPLICATIONS",
    "AppSpec",
    "generate_application",
    "resnet_training",
    "pagerank_graphchi",
    "mcf",
    "graph500",
    "memcached",
    "cachebench",
    "Phase",
    "PhasedTrace",
    "build_phased_trace",
    "pattern_pairs",
]
