"""Memory access traces.

A trace is the unit of work for every simulator and experiment in this
repository: an ordered sequence of memory accesses, each with an address,
an access kind, an issuing stream, and a logical timestamp.  Addresses are
byte addresses; simulators map them to pages or cache lines themselves.

Traces are stored column-wise in numpy arrays so that multi-million-access
traces stay cheap, with a thin object API on top.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

import numpy as np

#: Access kinds, encoded as small integers in the ``kinds`` column.
KIND_LOAD = 0
KIND_STORE = 1

_KIND_NAMES = {KIND_LOAD: "load", KIND_STORE: "store"}
_KIND_CODES = {name: code for code, name in _KIND_NAMES.items()}


@dataclass(frozen=True)
class MemoryAccess:
    """A single memory access.

    Attributes:
        address: Byte address accessed.
        kind: ``KIND_LOAD`` or ``KIND_STORE``.
        stream_id: Logical stream (thread/process/SM) that issued it.
        timestamp: Logical issue time in nanoseconds.
    """

    address: int
    kind: int = KIND_LOAD
    stream_id: int = 0
    timestamp: int = 0

    @property
    def kind_name(self) -> str:
        return _KIND_NAMES[self.kind]


@dataclass
class Trace:
    """An ordered memory access trace.

    Attributes:
        name: Human-readable label ("stride", "mcf", ...).
        addresses: int64 array of byte addresses.
        kinds: uint8 array of access kinds (defaults to all loads).
        stream_ids: int32 array of issuing stream ids (defaults to 0).
        timestamps: int64 array of logical nanosecond timestamps.  When not
            supplied, accesses are spaced ``default_gap_ns`` apart.
        metadata: Free-form generator parameters, for provenance.
    """

    name: str
    addresses: np.ndarray
    kinds: np.ndarray | None = None
    stream_ids: np.ndarray | None = None
    timestamps: np.ndarray | None = None
    metadata: dict = field(default_factory=dict)
    default_gap_ns: int = 100

    #: Memoized (universe, compact ids) per page size — see page_index().
    _page_index_cache: dict = field(default_factory=dict, init=False,
                                    repr=False, compare=False)

    def __post_init__(self) -> None:
        self.addresses = np.asarray(self.addresses, dtype=np.int64)
        if self.addresses.ndim != 1:
            raise ValueError("addresses must be a 1-D array")
        n = len(self.addresses)
        if self.kinds is None:
            self.kinds = np.zeros(n, dtype=np.uint8)
        else:
            self.kinds = np.asarray(self.kinds, dtype=np.uint8)
        if self.stream_ids is None:
            self.stream_ids = np.zeros(n, dtype=np.int32)
        else:
            self.stream_ids = np.asarray(self.stream_ids, dtype=np.int32)
        if self.timestamps is None:
            self.timestamps = np.arange(n, dtype=np.int64) * self.default_gap_ns
        else:
            self.timestamps = np.asarray(self.timestamps, dtype=np.int64)
        for column, label in (
            (self.kinds, "kinds"),
            (self.stream_ids, "stream_ids"),
            (self.timestamps, "timestamps"),
        ):
            if len(column) != n:
                raise ValueError(f"{label} length {len(column)} != addresses length {n}")

    def __len__(self) -> int:
        return len(self.addresses)

    def __iter__(self) -> Iterator[MemoryAccess]:
        for i in range(len(self)):
            yield self[i]

    def __getitem__(self, i: int) -> MemoryAccess:
        return MemoryAccess(
            address=int(self.addresses[i]),
            kind=int(self.kinds[i]),
            stream_id=int(self.stream_ids[i]),
            timestamp=int(self.timestamps[i]),
        )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def pages(self, page_size: int = 4096) -> np.ndarray:
        """Page numbers touched by each access, in order."""
        if page_size <= 0 or page_size & (page_size - 1):
            raise ValueError("page_size must be a positive power of two")
        shift = page_size.bit_length() - 1
        return self.addresses >> shift

    def page_index(self, page_size: int = 4096) -> tuple[np.ndarray, np.ndarray]:
        """``(universe, cids)``: sorted distinct pages and per-access ids.

        ``universe[cids[i]]`` is the page of access ``i``.  Compact ids are
        what make the span-batched simulator's residency test a plain array
        lookup.  The result is memoized per page size — treat traces as
        immutable after construction (``slice``/``concat`` return copies),
        as the columns are shared, not re-derived.
        """
        cached = self._page_index_cache.get(page_size)
        if cached is None:
            universe, cids = np.unique(self.pages(page_size),
                                       return_inverse=True)
            cached = (universe, cids)
            self._page_index_cache[page_size] = cached
        return cached

    def footprint_pages(self, page_size: int = 4096) -> int:
        """Number of distinct pages the trace touches."""
        return int(self.page_index(page_size)[0].size)

    def footprint_bytes(self, page_size: int = 4096) -> int:
        return self.footprint_pages(page_size) * page_size

    def deltas(self) -> np.ndarray:
        """Address deltas between consecutive accesses (length n-1)."""
        return np.diff(self.addresses)

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def concat(self, other: "Trace", name: str | None = None) -> "Trace":
        """Append ``other`` after this trace, shifting its timestamps."""
        if len(self) == 0:
            offset = 0
        else:
            offset = int(self.timestamps[-1]) + self.default_gap_ns
        return Trace(
            name=name or f"{self.name}+{other.name}",
            addresses=np.concatenate([self.addresses, other.addresses]),
            kinds=np.concatenate([self.kinds, other.kinds]),
            stream_ids=np.concatenate([self.stream_ids, other.stream_ids]),
            timestamps=np.concatenate([self.timestamps, other.timestamps + offset]),
            metadata={"parts": [self.metadata, other.metadata]},
        )

    def slice(self, start: int, stop: int, name: str | None = None) -> "Trace":
        return Trace(
            name=name or f"{self.name}[{start}:{stop}]",
            addresses=self.addresses[start:stop].copy(),
            kinds=self.kinds[start:stop].copy(),
            stream_ids=self.stream_ids[start:stop].copy(),
            timestamps=self.timestamps[start:stop].copy(),
            metadata=dict(self.metadata),
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Save as a .npz archive with a JSON metadata sidecar entry."""
        path = Path(path)
        np.savez_compressed(
            path,
            addresses=self.addresses,
            kinds=self.kinds,
            stream_ids=self.stream_ids,
            timestamps=self.timestamps,
            meta=np.frombuffer(
                json.dumps({"name": self.name, "metadata": self.metadata}).encode(),
                dtype=np.uint8,
            ),
        )

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        with np.load(Path(path)) as data:
            meta = json.loads(bytes(data["meta"].tobytes()).decode())
            return cls(
                name=meta["name"],
                addresses=data["addresses"],
                kinds=data["kinds"],
                stream_ids=data["stream_ids"],
                timestamps=data["timestamps"],
                metadata=meta["metadata"],
            )

    @classmethod
    def from_accesses(cls, name: str, accesses: Iterable[MemoryAccess],
                      **kwargs: Any) -> "Trace":
        accesses = list(accesses)
        return cls(
            name=name,
            addresses=np.array([a.address for a in accesses], dtype=np.int64),
            kinds=np.array([a.kind for a in accesses], dtype=np.uint8),
            stream_ids=np.array([a.stream_id for a in accesses], dtype=np.int32),
            timestamps=np.array([a.timestamp for a in accesses], dtype=np.int64),
            **kwargs,
        )


def interleave(traces: list[Trace], seed: int = 0, name: str = "interleaved") -> Trace:
    """Randomly interleave traces, preserving each trace's internal order.

    This models the centralized UVM driver's view (§4): several independent
    access streams arrive merged into one.  Each source trace keeps its own
    ``stream_id`` so consumers can still separate them.
    """
    if not traces:
        raise ValueError("need at least one trace")
    rng = np.random.default_rng(seed)
    lengths = np.array([len(t) for t in traces])
    order = np.repeat(np.arange(len(traces)), lengths)
    rng.shuffle(order)

    cursors = np.zeros(len(traces), dtype=np.int64)
    n = int(lengths.sum())
    addresses = np.empty(n, dtype=np.int64)
    kinds = np.empty(n, dtype=np.uint8)
    stream_ids = np.empty(n, dtype=np.int32)
    for out_i, t_idx in enumerate(order):
        t = traces[t_idx]
        c = cursors[t_idx]
        addresses[out_i] = t.addresses[c]
        kinds[out_i] = t.kinds[c]
        stream_ids[out_i] = t_idx
        cursors[t_idx] += 1
    return Trace(name=name, addresses=addresses, kinds=kinds, stream_ids=stream_ids,
                 metadata={"sources": [t.name for t in traces], "seed": seed})
