"""Synthetic generators for the Table 1 memory access patterns.

The paper evaluates online learning on five data-structure-level patterns
(Table 1, adapted from Ayers et al. [10]):

==================  ==========  ================================================
Pattern             Code        Behaviour
==================  ==========  ================================================
Stride              ``a[i]``    regular delta (streaming / array traversal)
Pointer chase       ``*ptr``    pseudorandom walk over a fixed linked structure
Indirect stride     ``*(a[i])`` strided reads of a pointer array, dereferencing
                                each pointer
Indirect index      ``b[a[i]]`` strided reads of an index array, then indexed
                                reads into a second array
Pointer offset      ``*ptr``,   pointer chase where each node's fields at fixed
                    ``*(ptr+i)``  offsets are also touched
==================  ==========  ================================================

Every generator is deterministic for a fixed seed and produces a
:class:`~repro.patterns.trace.Trace`.  The underlying data structures
(linked lists, pointer arrays) are fixed at construction, so repeating a
traversal repeats the same address sequence — which is what makes these
patterns *learnable* by an online model, and what makes forgetting them
costly (§2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..seeding import child_rng
from .trace import Trace

#: Names of all Table 1 patterns, in paper order.
PATTERN_NAMES = (
    "stride",
    "pointer_chase",
    "indirect_stride",
    "indirect_index",
    "pointer_offset",
)

_DEFAULT_BASE = 0x10_0000  # keep addresses away from 0 so deltas are honest


@dataclass(frozen=True)
class PatternSpec:
    """Shared knobs for all Table 1 generators.

    Attributes:
        n: Number of accesses to emit.
        element_size: Bytes per element; deltas are multiples of this.
        working_set: Number of distinct elements in the traversed structure.
            The traversal wraps around, so the same addresses repeat every
            ``working_set`` steps (every ``working_set`` nodes for chases).
        base: Base byte address of the primary structure.
        seed: RNG seed for any pseudorandom layout.
    """

    n: int = 1000
    element_size: int = 64
    working_set: int = 100
    base: int = _DEFAULT_BASE
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError("n must be positive")
        if self.element_size <= 0:
            raise ValueError("element_size must be positive")
        if self.working_set <= 0:
            raise ValueError("working_set must be positive")


def stride(spec: PatternSpec = PatternSpec(), stride_elements: int = 1) -> Trace:
    """``a[i]``: accesses at a constant delta, wrapping over the working set."""
    idx = (np.arange(spec.n, dtype=np.int64) * stride_elements) % spec.working_set
    addresses = spec.base + idx * spec.element_size
    return Trace(
        name="stride",
        addresses=addresses,
        metadata={"pattern": "stride", "stride_elements": stride_elements, **_meta(spec)},
    )


def pointer_chase(spec: PatternSpec = PatternSpec()) -> Trace:
    """``*ptr``: repeated traversal of a fixed pseudorandom linked list.

    The list is a random Hamiltonian cycle over ``working_set`` nodes, so the
    address sequence is pseudorandom but periodic with period ``working_set``.
    """
    order = _node_cycle(spec)
    idx = order[np.arange(spec.n, dtype=np.int64) % spec.working_set]
    addresses = spec.base + idx * spec.element_size
    return Trace(
        name="pointer_chase",
        addresses=addresses,
        metadata={"pattern": "pointer_chase", **_meta(spec)},
    )


def indirect_stride(spec: PatternSpec = PatternSpec(), stride_elements: int = 1) -> Trace:
    """``*(a[i])``: strided pointer-array reads, each followed by its target.

    Even positions in the trace walk the pointer array ``a`` at a regular
    delta; odd positions dereference the (fixed, pseudorandom) pointer stored
    there.  Emits ``n`` accesses total.
    """
    rng = np.random.default_rng(spec.seed)
    # Fixed pointer targets, one per array slot, in a disjoint region.
    target_base = spec.base + 2 * spec.working_set * spec.element_size
    targets = rng.permutation(spec.working_set).astype(np.int64)

    pairs = (spec.n + 1) // 2
    slot = (np.arange(pairs, dtype=np.int64) * stride_elements) % spec.working_set
    array_addr = spec.base + slot * 8  # pointer slots are 8 bytes
    target_addr = target_base + targets[slot] * spec.element_size

    addresses = np.empty(pairs * 2, dtype=np.int64)
    addresses[0::2] = array_addr
    addresses[1::2] = target_addr
    return Trace(
        name="indirect_stride",
        addresses=addresses[: spec.n],
        metadata={"pattern": "indirect_stride", "stride_elements": stride_elements,
                  **_meta(spec)},
    )


def indirect_index(spec: PatternSpec = PatternSpec(), stride_elements: int = 1) -> Trace:
    """``b[a[i]]``: strided index-array reads, then indexed reads of ``b``.

    ``a`` holds a fixed pseudorandom permutation of indices into ``b``; the
    trace alternates the strided read of ``a[i]`` with the dependent read of
    ``b[a[i]]``.
    """
    # Child stream 0 of spec.seed: independent of the structure layouts
    # drawn from default_rng(spec.seed) itself (RL001: no seed arithmetic).
    rng = child_rng(spec.seed, 0)
    b_base = spec.base + 2 * spec.working_set * 8
    indices = rng.permutation(spec.working_set).astype(np.int64)

    pairs = (spec.n + 1) // 2
    slot = (np.arange(pairs, dtype=np.int64) * stride_elements) % spec.working_set
    a_addr = spec.base + slot * 8
    b_addr = b_base + indices[slot] * spec.element_size

    addresses = np.empty(pairs * 2, dtype=np.int64)
    addresses[0::2] = a_addr
    addresses[1::2] = b_addr
    return Trace(
        name="indirect_index",
        addresses=addresses[: spec.n],
        metadata={"pattern": "indirect_index", "stride_elements": stride_elements,
                  **_meta(spec)},
    )


def pointer_offset(spec: PatternSpec = PatternSpec(), offsets: tuple[int, ...] = (0, 16, 32)) -> Trace:
    """``*ptr`` then ``*(ptr+i)``: pointer chase touching fields of each node."""
    if not offsets:
        raise ValueError("offsets must be non-empty")
    order = _node_cycle(spec)
    per_node = len(offsets)
    nodes_needed = (spec.n + per_node - 1) // per_node
    idx = order[np.arange(nodes_needed, dtype=np.int64) % spec.working_set]
    node_addr = spec.base + idx * spec.element_size

    addresses = (node_addr[:, None] + np.asarray(offsets, dtype=np.int64)[None, :]).ravel()
    return Trace(
        name="pointer_offset",
        addresses=addresses[: spec.n],
        metadata={"pattern": "pointer_offset", "offsets": list(offsets), **_meta(spec)},
    )


def generate(pattern: str, spec: PatternSpec = PatternSpec(), **kwargs: Any) -> Trace:
    """Generate a Table 1 pattern by name."""
    try:
        factory = _FACTORIES[pattern]
    except KeyError:
        raise ValueError(
            f"unknown pattern {pattern!r}; expected one of {PATTERN_NAMES}"
        ) from None
    return factory(spec, **kwargs)


def _node_cycle(spec: PatternSpec) -> np.ndarray:
    """A random Hamiltonian cycle's visit order over the working set."""
    rng = np.random.default_rng(spec.seed)
    return rng.permutation(spec.working_set).astype(np.int64)


def _meta(spec: PatternSpec) -> dict:
    return {
        "n": spec.n,
        "element_size": spec.element_size,
        "working_set": spec.working_set,
        "seed": spec.seed,
    }


_FACTORIES = {
    "stride": stride,
    "pointer_chase": pointer_chase,
    "indirect_stride": indirect_stride,
    "indirect_index": indirect_index,
    "pointer_offset": pointer_offset,
}
