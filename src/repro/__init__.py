"""repro — reproduction of "Prefetching Using Principles of
Hippocampal-Neocortical Interaction" (Wu et al., HotOS 2023).

The package builds, from scratch, everything the paper describes:

- ``repro.patterns`` — Table 1 access-pattern generators and synthetic
  application traces (Figure 5's workloads).
- ``repro.memsim`` — the paged-memory trace simulator of Figure 1.
- ``repro.nn`` — the LSTM baseline (§2) and the sparse Hebbian network
  (§3.1), with exact op counting and the calibrated latency model
  (Figure 2, Table 2).
- ``repro.core`` — the CLS prefetcher: hippocampal episodic store,
  interleaved replay (§3.2), and the §5 policy surface (sampling,
  length/width, encodings, replay variants, availability).
- ``repro.baselines`` — classic prefetchers and an oracle bound.
- ``repro.systems`` — the §4 target systems: disaggregated memory and
  CPU-GPU UVM.
- ``repro.harness`` — drivers that regenerate every table and figure.

Quickstart::

    from repro.core import CLSPrefetcher, CLSPrefetcherConfig
    from repro.memsim import SimConfig, baseline_misses, simulate
    from repro.patterns import AppSpec, generate_application

    trace = generate_application("pagerank", AppSpec(n=20_000))
    base = baseline_misses(trace, SimConfig(memory_fraction=0.5))
    run = simulate(trace, CLSPrefetcher(CLSPrefetcherConfig()),
                   SimConfig(memory_fraction=0.5))
    print(f"{run.percent_misses_removed(base):.1f}% of misses removed")
"""

from . import baselines, core, harness, memsim, nn, patterns, systems, telemetry

__version__ = "0.1.0"

__all__ = [
    "baselines",
    "core",
    "harness",
    "memsim",
    "nn",
    "patterns",
    "systems",
    "telemetry",
    "__version__",
]
