"""Command-line interface.

Three subcommands cover the library's day-to-day uses:

- ``generate`` — synthesize a Table 1 pattern or application trace to a
  ``.npz`` file;
- ``simulate`` — replay a trace (generated inline or loaded from disk)
  against a prefetcher and print the miss/accuracy report;
- ``experiment`` — regenerate a paper table/figure (same drivers the
  benchmarks use);
- ``telemetry`` — inspect the JSONL run records written by
  ``--telemetry-dir`` (see :mod:`repro.telemetry`);
- ``serve`` — run the online train-and-serve prefetch daemon
  (:mod:`repro.serve`) over a generated multi-tenant miss mix, in
  deterministic lockstep or on real threads, plus a quick threaded
  latency probe (``serve bench``);
- ``bench`` — pivot the repo-root ``BENCH_PR*.json`` files into
  cross-PR speedup/fleet/serving trend tables.

Examples::

    python -m repro generate --pattern pointer_chase --n 8000 -o chase.npz
    python -m repro simulate --trace chase.npz --model hebbian --length 2
    python -m repro simulate --app pagerank --n 20000 --model lstm
    python -m repro experiment table2
    python -m repro experiment fig5 --n 20000
    python -m repro --profile simulate --app resnet_training --model hebbian
    python -m repro simulate --app mcf --model hebbian --telemetry-dir runs/
    python -m repro telemetry summarize runs/
    python -m repro serve run --tenants 8 --n 2000 --threaded
    python -m repro serve bench --offered-eps 2000
    python -m repro bench trend

``--profile`` (before the subcommand) wraps any run in :mod:`cProfile`
and prints the 25 hottest functions by cumulative time — the same view
``benchmarks/profile_cls.py`` uses to attack the CLS hot path.
"""

from __future__ import annotations

import argparse
import cProfile
import dataclasses
import pstats
import sys

from . import telemetry
from .baselines import (
    LeapPrefetcher,
    MarkovPrefetcher,
    NextLinePrefetcher,
    StridePrefetcher,
)
from .core.cls_prefetcher import CLSPrefetcher, CLSPrefetcherConfig
from .harness import fig2, fig5, fig6, tables
from .harness.export import export_rows_csv
from .harness.interference import InterferenceConfig, run_interference
from .harness.models import (
    experiment_hebbian_config,
    experiment_lstm,
    experiment_lstm_config,
)
from .harness.reporting import format_series, print_table
from .memsim.prefetcher import NullPrefetcher, Prefetcher
from .memsim.simulator import SimConfig, baseline_misses, simulate
from .patterns.applications import ALL_APPLICATIONS, AppSpec, generate_application
from .patterns.generators import PATTERN_NAMES, PatternSpec, generate
from .patterns.phases import pattern_pairs
from .patterns.trace import Trace


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hippocampal-neocortical prefetching (HotOS'23) toolkit")
    parser.add_argument("--profile", action="store_true",
                        help="run the subcommand under cProfile and print "
                             "the top 25 functions by cumulative time")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesize a trace to a .npz file")
    source = gen.add_mutually_exclusive_group(required=True)
    source.add_argument("--pattern", choices=PATTERN_NAMES)
    source.add_argument("--app", choices=ALL_APPLICATIONS)
    gen.add_argument("--n", type=int, default=10_000, help="accesses")
    gen.add_argument("--working-set", type=int, default=200,
                     help="elements (pattern traces)")
    gen.add_argument("--element-size", type=int, default=4096)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("-o", "--out", required=True, help="output .npz path")

    sim = sub.add_parser("simulate", help="replay a trace with a prefetcher")
    source = sim.add_mutually_exclusive_group(required=True)
    source.add_argument("--trace", help=".npz trace file")
    source.add_argument("--pattern", choices=PATTERN_NAMES)
    source.add_argument("--app", choices=ALL_APPLICATIONS)
    sim.add_argument("--n", type=int, default=10_000)
    sim.add_argument("--working-set", type=int, default=200)
    sim.add_argument("--element-size", type=int, default=4096)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--model",
                     choices=["hebbian", "lstm", "nextline", "stride",
                              "markov", "leap", "none"],
                     default="hebbian")
    sim.add_argument("--encoder", choices=["delta", "page", "region"],
                     default="delta")
    sim.add_argument("--vocab", type=int, default=256)
    sim.add_argument("--length", type=int, default=2,
                     help="prefetch length (§5.2)")
    sim.add_argument("--width", type=int, default=2,
                     help="prefetch width (§5.2)")
    sim.add_argument("--mode", choices=["rollout", "direct"],
                     default="rollout")
    sim.add_argument("--min-confidence", type=float, default=0.25)
    sim.add_argument("--memory-fraction", type=float, default=0.5)
    sim.add_argument("--delay", type=int, default=0,
                     help="prefetch landing delay in accesses")
    sim.add_argument("--observe-hits", action="store_true")
    sim.add_argument("--replay", choices=["full", "ring", "confidence",
                                          "prototype", "consolidating",
                                          "generative", "off"],
                     default="full")
    sim.add_argument("--recall", action="store_true",
                     help="enable the Fig. 4 hippocampal recall fast path")
    sim.add_argument("--telemetry-dir", default=None,
                     help="observe the run and write windowed series + "
                          "manifest JSONL into this directory "
                          "(see `repro telemetry summarize`)")
    sim.add_argument("--telemetry-interval", type=int, default=None,
                     help="accesses per telemetry window (default 1000)")
    sim.add_argument("--backend",
                     choices=["auto", "numpy", "numba", "c", "int8"],
                     default="auto",
                     help="kernel backend for the simulator and Hebbian "
                          "hot paths (see repro.nn.backends); 'auto' "
                          "prefers a compiled backend and falls back to "
                          "numpy; 'int8' quantizes Hebbian serving only")

    exp = sub.add_parser("experiment",
                         help="regenerate a paper table/figure")
    exp.add_argument("which", choices=["table1", "table2", "fig2", "fig3",
                                       "fig5", "fig6", "variance"])
    exp.add_argument("--n", type=int, default=20_000,
                     help="accesses per workload (fig5/variance)")
    exp.add_argument("--seed", type=int, default=0)
    exp.add_argument("--seeds", type=int, default=3,
                     help="number of seeds (variance)")
    exp.add_argument("--jobs", type=int, default=None,
                     help="worker processes for grid experiments "
                          "(fig5/variance); default auto-detects from CPU "
                          "count, falling back to serial on one core")
    exp.add_argument("--trace-cache-dir", default=None,
                     help="directory for the shared trace-materialization "
                          "cache (fig5/variance); traces are generated once "
                          "per (app, n, seed) and reused across cells and "
                          "invocations")
    exp.add_argument("--cache-dir", default=None,
                     help="on-disk JSON result cache for grid cells; "
                          "reruns with the same specs are served from disk")
    exp.add_argument("--csv", help="also write the result rows to a CSV file")
    exp.add_argument("--telemetry-dir", default=None,
                     help="write per-run telemetry JSONL for every computed "
                          "grid cell (fig5/variance) into this directory")
    exp.add_argument("--telemetry-interval", type=int, default=None,
                     help="accesses per telemetry window (default 1000)")
    exp.add_argument("--backend",
                     choices=["auto", "numpy", "numba", "c"],
                     default="auto",
                     help="kernel backend every grid worker resolves "
                          "'auto' to; never part of the result-cache key "
                          "(backends are bit-identical)")

    fleet = sub.add_parser(
        "fleet", help="run a multi-tenant fleet of simulation lanes in "
                      "one batched loop")
    fleet.add_argument("--tenants", type=int, default=64,
                       help="number of concurrent lanes")
    fleet.add_argument("--pattern", action="append", choices=PATTERN_NAMES,
                       default=None,
                       help="pattern(s) lanes cycle through (repeatable; "
                            "default: all Table 1 patterns)")
    fleet.add_argument("--n", type=int, default=4000,
                       help="accesses per lane")
    fleet.add_argument("--working-set", type=int, default=200)
    fleet.add_argument("--model",
                       choices=["none", "nextline", "stride", "markov",
                                "leap", "hebbian"],
                       default="none",
                       help="per-lane prefetcher ('hebbian' clones one "
                            "CLS prototype per lane)")
    fleet.add_argument("--vocab", type=int, default=256)
    fleet.add_argument("--memory-fraction", type=float, default=0.5)
    fleet.add_argument("--delay", type=int, default=0,
                       help="prefetch landing delay in accesses")
    fleet.add_argument("--width", type=int, default=256,
                       help="cohort slot count (lanes beyond it queue "
                            "and refill freed slots)")
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--jobs", type=int, default=None,
                       help="worker processes for cohort sharding "
                            "(default: auto-detect from CPU affinity; "
                            "under two means run serially in-process)")
    fleet.add_argument("--backend",
                       choices=["auto", "numpy", "numba", "c"],
                       default="auto")
    fleet.add_argument("--manifest-dir", default=None,
                       help="write the fleet JSONL manifest (aggregate "
                            "rollup + one record per tenant) here")

    serve = sub.add_parser(
        "serve", help="online train-and-serve prefetch daemon")
    serve_sub = serve.add_subparsers(dest="serve_command", required=True)
    serve_run = serve_sub.add_parser(
        "run", help="replay a generated multi-tenant miss mix through "
                    "the daemon (deterministic lockstep, or --threaded)")
    serve_run.add_argument("--tenants", type=int, default=4)
    serve_run.add_argument("--pattern", action="append",
                           choices=list(PATTERN_NAMES),
                           help="trace pattern(s), cycled across tenants "
                                "(default: all)")
    serve_run.add_argument("--n", type=int, default=2000,
                           help="miss events per tenant")
    serve_run.add_argument("--working-set", type=int, default=64)
    serve_run.add_argument("--vocab", type=int, default=128)
    serve_run.add_argument("--length", type=int, default=2,
                           help="prefetch rollout length")
    serve_run.add_argument("--width", type=int, default=2,
                           help="prefetch rollout width")
    serve_run.add_argument("--max-staleness", type=int, default=256)
    serve_run.add_argument("--ring-capacity", type=int, default=1024)
    serve_run.add_argument("--max-batch", type=int, default=64)
    serve_run.add_argument("--scalar", action="store_true",
                           help="per-lane stepping instead of the "
                                "stacked HebbianFleet path")
    serve_run.add_argument("--threaded", action="store_true",
                           help="drive the actors on real threads "
                                "(default: deterministic lockstep)")
    serve_run.add_argument("--seed", type=int, default=0)
    serve_run.add_argument("--manifest-dir", default=None,
                           help="write the serve JSONL manifest here")
    serve_bench = serve_sub.add_parser(
        "bench", help="quick threaded latency probe: p50/p99 query "
                      "latency at one offered load")
    serve_bench.add_argument("--tenants", type=int, default=4)
    serve_bench.add_argument("--events", type=int, default=2000)
    serve_bench.add_argument("--offered-eps", type=float, default=2000.0,
                             help="offered events+queries per second")
    serve_bench.add_argument("--vocab", type=int, default=128)
    serve_bench.add_argument("--seed", type=int, default=0)

    bench = sub.add_parser("bench", help="inspect benchmark artifacts")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_trend = bench_sub.add_parser(
        "trend", help="per-workload speedup trajectory across all "
                      "BENCH_PR*.json files")
    bench_trend.add_argument("--dir", default=".",
                             help="directory holding BENCH_PR*.json "
                                  "(default: current directory)")

    tel = sub.add_parser("telemetry", help="inspect telemetry output")
    tel_sub = tel.add_subparsers(dest="telemetry_command", required=True)
    tel_sum = tel_sub.add_parser(
        "summarize", help="render the runs recorded in a telemetry directory")
    tel_sum.add_argument("dir", help="directory of <run_id>.jsonl files")
    tel_sum.add_argument("--rows", type=int, default=20,
                         help="max table rows per run (subsampled)")

    return parser


# ----------------------------------------------------------------------
def cmd_generate(args: argparse.Namespace) -> int:
    trace = _build_trace(args)
    trace.save(args.out)
    print(f"wrote {args.out}: {trace.name}, {len(trace)} accesses, "
          f"{trace.footprint_pages()} pages footprint")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    if args.trace:
        trace = Trace.load(args.trace)
    else:
        trace = _build_trace(args)
    sim_cfg = SimConfig(memory_fraction=args.memory_fraction,
                        prefetch_delay_accesses=args.delay)
    baseline = baseline_misses(trace, sim_cfg)
    prefetcher = _build_prefetcher(args)
    sink = None
    if args.telemetry_dir is not None:
        sink = telemetry.Telemetry(
            interval=args.telemetry_interval or telemetry.DEFAULT_INTERVAL)
    # ``int8`` only reinterprets Hebbian serving; the simulator itself
    # keeps availability-based selection in that case.
    sim_backend = "auto" if args.backend == "int8" else args.backend
    run = simulate(trace, prefetcher, sim_cfg, backend=sim_backend,
                   telemetry=sink)
    if sink is not None:
        path = sink.write(args.telemetry_dir)
        print(f"telemetry: {len(sink.windows)} windows -> {path}")

    print(f"trace: {trace.name}, {len(trace)} accesses, "
          f"{trace.footprint_pages()} pages, memory {run.capacity_pages} pages")
    print_table(
        ["prefetcher", "demand misses", "misses removed %", "accuracy",
         "coverage"],
        [
            ["none", baseline.demand_misses, 0.0, 0.0, 0.0],
            [run.prefetcher_name, run.demand_misses,
             run.percent_misses_removed(baseline),
             run.stats.prefetch_accuracy, run.stats.coverage],
        ])
    if isinstance(prefetcher, CLSPrefetcher):
        stats = prefetcher.stats
        print(f"\ntrained steps: {stats.trained_steps}, replayed pairs: "
              f"{stats.replayed_pairs}, phases seen: {stats.phases_seen}")
        if prefetcher.recall_memory is not None:
            print(f"recall: consulted {prefetcher.recall_stats.consulted}, "
                  f"answered {prefetcher.recall_stats.answered}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    which = args.which
    headers: list[str] = []
    table_rows: list[list] = []
    title = ""
    if which == "table1":
        headers = ["pattern", "distinct_deltas", "dominant_share", "period"]
        table_rows = [[s.pattern, s.distinct_deltas, s.dominant_delta_share,
                       s.period if s.period else "-"]
                      for s in tables.table1_signatures()]
        title = "Table 1 — pattern signatures"
    elif which == "table2":
        headers = ["model", "params", "params_paper", "inference_ops",
                   "training_ops"]
        table_rows = [[r.model, r.parameters, r.paper_parameters,
                       r.inference_ops, r.training_ops]
                      for r in tables.table2_rows()]
        title = "Table 2 — resource needs"
    elif which == "fig2":
        headers = ["panel", "series", "x", "latency_us"]
        for panel, series_list in (("inference", fig2.inference_panel()),
                                   ("training", fig2.training_panel())):
            for series in series_list:
                for x, y in zip(series.xs, series.latencies_us):
                    table_rows.append([panel, series.label, x, y])
        print("Figure 2a — inference latency (us) vs future predictions")
        for series in fig2.inference_panel():
            print(" ", format_series(series.label, series.xs,
                                     series.latencies_us))
        print("Figure 2b — per-example training latency (us) vs batch")
        for series in fig2.training_panel():
            print(" ", format_series(series.label, series.xs,
                                     series.latencies_us))
        title = ""  # already printed as series
    elif which == "fig3":
        config = InterferenceConfig(seed=args.seed, probe_len=100,
                                    probe_every=1000)
        headers = ["pair", "replay", "conf_A_before", "conf_A_after",
                   "conf_B_after"]
        for pattern_a, pattern_b in pattern_pairs():
            for replay in (False, True):
                run = run_interference(
                    lambda v: experiment_lstm(v, seed=args.seed),
                    pattern_a, pattern_b, replay=replay, config=config)
                table_rows.append([f"{pattern_a}->{pattern_b}", replay,
                                   run.summary.conf_a_before,
                                   run.summary.conf_a_after,
                                   run.summary.conf_b_after])
        title = "Figure 3 — interference and replay"
    elif which == "fig5":
        config = fig5.Fig5Config(n_accesses=args.n, seed=args.seed)
        result = fig5.run_fig5(config, jobs=args.jobs,
                               cache_dir=args.cache_dir,
                               trace_cache_dir=args.trace_cache_dir,
                               telemetry_dir=args.telemetry_dir,
                               telemetry_interval=args.telemetry_interval,
                               backend=args.backend)
        headers = ["application", "hebbian_removed_pct", "lstm_removed_pct"]
        for app in config.applications:
            per_model = result.for_app(app)
            table_rows.append([app,
                               per_model["cls-hebbian"].percent_misses_removed,
                               per_model["cls-lstm"].percent_misses_removed])
        title = "Figure 5 — online prefetching"
    elif which == "variance":
        from .harness.variance import fig5_seed_sweep

        config = fig5.Fig5Config(n_accesses=args.n, seed=args.seed)
        rows = fig5_seed_sweep(seeds=tuple(range(args.seeds)), config=config,
                               jobs=args.jobs, cache_dir=args.cache_dir,
                               trace_cache_dir=args.trace_cache_dir,
                               telemetry_dir=args.telemetry_dir,
                               telemetry_interval=args.telemetry_interval,
                               backend=args.backend)
        headers = ["application", "model", "mean_removed_pct", "std", "worst"]
        table_rows = [[r.application, r.model, r.mean, r.std, r.worst]
                      for r in rows]
        title = "Figure 5 seed sweep — % misses removed, mean ± std"
    elif which == "fig6":
        config = fig6.Fig6Config(seed=args.seed)
        disagg = fig6.run_disaggregated(config)
        uvm = fig6.run_uvm(config)
        headers = ["configuration", "speedup"]
        table_rows = [
            ["disagg: decentralized hebbian", disagg.hebbian_speedup],
            ["disagg: decentralized lstm", disagg.lstm_speedup],
            ["disagg: decentralized leap", disagg.leap_speedup],
            ["disagg: centralized hebbian", disagg.centralized_speedup],
            ["uvm: shared w1", uvm.shared.speedup_over(uvm.baseline)],
        ] + [[f"uvm: per-stream w{w}", r.speedup_over(uvm.baseline)]
             for w, r in sorted(uvm.per_stream_by_width.items())]
        title = "Figure 6 — target-system speedups"

    if title:
        print_table(headers, table_rows, title=title)
    if args.csv and table_rows:
        count = export_rows_csv(
            args.csv, [dict(zip(headers, row)) for row in table_rows])
        print(f"\nwrote {count} rows to {args.csv}")
    return 0


# ----------------------------------------------------------------------
def _build_trace(args: argparse.Namespace) -> Trace:
    if getattr(args, "app", None):
        return generate_application(args.app, AppSpec(n=args.n, seed=args.seed))
    spec = PatternSpec(n=args.n, working_set=args.working_set,
                       element_size=args.element_size, seed=args.seed)
    return generate(args.pattern, spec)


def _build_prefetcher(args: argparse.Namespace) -> Prefetcher:
    if args.model == "none":
        return NullPrefetcher()
    if args.model == "nextline":
        return NextLinePrefetcher(degree=args.width)
    if args.model == "stride":
        return StridePrefetcher(degree=args.width)
    if args.model == "markov":
        return MarkovPrefetcher(degree=args.width)
    if args.model == "leap":
        return LeapPrefetcher(max_degree=max(2, args.width * 2))

    model_cfg = {}
    if args.model == "hebbian":
        hebbian_cfg = experiment_hebbian_config(args.vocab, args.seed)
        backend = getattr(args, "backend", "auto")
        if backend != "auto":
            hebbian_cfg = dataclasses.replace(hebbian_cfg, backend=backend)
        model_cfg["hebbian"] = hebbian_cfg
    else:
        model_cfg["lstm"] = experiment_lstm_config(args.vocab, args.seed)
    return CLSPrefetcher(CLSPrefetcherConfig(
        model=args.model,
        vocab_size=args.vocab,
        encoder=args.encoder,
        prefetch_length=args.length,
        prefetch_width=args.width,
        prediction_mode=args.mode,
        min_confidence=args.min_confidence,
        observe_hits=args.observe_hits,
        replay_policy=None if args.replay == "off" else args.replay,
        recall=args.recall,
        seed=args.seed,
        **model_cfg,
    ))


def cmd_fleet(args: argparse.Namespace) -> int:
    from .harness.fleet import run_fleet, write_fleet_manifest
    from .harness.runner import resolve_jobs
    from .memsim.fleet import FleetLaneSpec

    patterns = args.pattern or list(PATTERN_NAMES)
    workers = resolve_jobs(args.jobs, args.tenants)
    if workers > 1:
        # Sharded path: JSON lane jobs, materialized inside each worker
        # (see harness.fleet.materialize_lane_spec — same lane recipe as
        # the in-process builder below).
        from .harness.fleet import run_fleet_jobs, write_fleet_jobs_manifest

        job_kind = ("cls-hebbian" if args.model == "hebbian"
                    else args.model)
        lane_jobs = []
        for tenant in range(args.tenants):
            job: dict = {
                "pattern": patterns[tenant % len(patterns)],
                "n": args.n,
                "working_set": args.working_set,
                "seed": args.seed + tenant,
                "prefetcher": job_kind,
                "sim": {"memory_fraction": args.memory_fraction,
                        "prefetch_delay_accesses": args.delay},
            }
            if job_kind == "cls-hebbian":
                job["cls"] = {"vocab": args.vocab, "seed": args.seed}
            lane_jobs.append(job)
        jobs_report = run_fleet_jobs(lane_jobs, jobs=workers,
                                     backend=args.backend,
                                     max_width=args.width)
        rollup = jobs_report.rollup()
        print_table(["metric", "value"],
                    [[key, value] for key, value in rollup.items()],
                    title=f"Fleet — {args.tenants} tenants x {args.n} "
                          f"accesses ({args.model}, "
                          f"{jobs_report.jobs} jobs)")
        if args.manifest_dir is not None:
            path = write_fleet_jobs_manifest(jobs_report,
                                             args.manifest_dir)
            print(f"manifest: {path}")
        return 0

    sim_cfg = SimConfig(memory_fraction=args.memory_fraction,
                        prefetch_delay_accesses=args.delay)
    prototype = None
    if args.model == "hebbian":
        from .nn.hebbian import SparseHebbianNetwork

        hebbian_cfg = experiment_hebbian_config(args.vocab, args.seed)
        if args.backend != "auto":
            hebbian_cfg = dataclasses.replace(hebbian_cfg,
                                              backend=args.backend)
        prototype = SparseHebbianNetwork(hebbian_cfg)

    def lane_prefetcher() -> Prefetcher:
        if args.model == "none":
            return NullPrefetcher()
        if args.model == "nextline":
            return NextLinePrefetcher()
        if args.model == "stride":
            return StridePrefetcher()
        if args.model == "markov":
            return MarkovPrefetcher()
        if args.model == "leap":
            return LeapPrefetcher()
        assert prototype is not None
        # All lanes share the prototype's fixed structures and memo
        # caches via clone(); learned weights stay per-lane.
        return CLSPrefetcher(CLSPrefetcherConfig(
            model="hebbian", vocab_size=args.vocab,
            hebbian=prototype.config, seed=args.seed),
            model=prototype.clone())

    specs = []
    for tenant in range(args.tenants):
        pattern = patterns[tenant % len(patterns)]
        trace = generate(pattern, PatternSpec(
            n=args.n, working_set=args.working_set,
            seed=args.seed + tenant))
        specs.append(FleetLaneSpec(trace=trace,
                                   prefetcher=lane_prefetcher(),
                                   config=sim_cfg))
    report = run_fleet(specs, backend=args.backend, max_width=args.width)
    rollup = report.rollup()
    print_table(["metric", "value"],
                [[key, value] for key, value in rollup.items()],
                title=f"Fleet — {args.tenants} tenants x {args.n} "
                      f"accesses ({args.model})")
    if args.manifest_dir is not None:
        path = write_fleet_manifest(report, args.manifest_dir)
        print(f"manifest: {path}")
    return 0


def cmd_telemetry(args: argparse.Namespace) -> int:
    if args.telemetry_command == "summarize":
        print(telemetry.summarize_dir(args.dir, max_rows=args.rows))
    return 0


def _serve_events(tenants: int, patterns: list[str], n: int,
                  working_set: int, seed: int
                  ) -> list[tuple[int, int, int]]:
    """A round-robin multi-tenant miss mix from the Table 1 generators.

    Trace seeds derive from the root seed via ``spawn_seeds`` (not
    ``seed + tenant``), so tenant streams stay decorrelated and the
    tenant set can grow without re-seeding existing lanes.
    """
    from .seeding import spawn_seeds

    seeds = spawn_seeds(seed, max(tenants, 1))
    streams = []
    for tenant in range(tenants):
        trace = generate(patterns[tenant % len(patterns)],
                         PatternSpec(n=n, working_set=working_set,
                                     element_size=4096,
                                     seed=seeds[tenant]))
        streams.append(trace.addresses)
    return [(tenant, int(streams[tenant][i]), i)
            for i in range(n) for tenant in range(tenants)]


def cmd_serve(args: argparse.Namespace) -> int:
    from .serve import PrefetchService, ServeConfig, replay_lockstep
    from .serve.loop import ThreadScheduler

    if args.serve_command == "run":
        config = ServeConfig(
            vocab_size=args.vocab, prefetch_length=args.length,
            prefetch_width=args.width, max_staleness=args.max_staleness,
            ring_capacity=args.ring_capacity, max_batch=args.max_batch,
            stacked=not args.scalar, seed=args.seed)
        service = PrefetchService(config)
        patterns = args.pattern or list(PATTERN_NAMES)
        events = _serve_events(args.tenants, patterns, args.n,
                               args.working_set, args.seed)
        if args.threaded:
            sched = ThreadScheduler()
            for actor in service.actors():
                sched.add(actor)
            sched.start()
            try:
                for tenant, address, timestamp in events:
                    service.submit_miss(tenant, address, timestamp)
                    ticket = service.query(tenant)
                    if not ticket.wait(30.0):
                        raise RuntimeError(
                            f"query {ticket.qid} unanswered after 30 s")
            finally:
                sched.stop()
        else:
            replay_lockstep(service, events)
        rows = [[key, value] for key, value in service.counters().items()]
        rows += [[f"latency_{key}", round(value, 4)]
                 for key, value in service.latency_percentiles().items()]
        rows += [[f"swap_pause_{key}", round(value, 4)]
                 for key, value in service.swap_pause_percentiles().items()]
        mode = "threaded" if args.threaded else "lockstep"
        print_table(["metric", "value"], rows,
                    title=f"Serve — {args.tenants} tenants x {args.n} "
                          f"events ({mode})")
        if args.manifest_dir is not None:
            path = service.write_manifest(args.manifest_dir)
            print(f"manifest: {path}")
        return 0

    # serve bench: paced threaded probe at one offered load.
    import time as _time

    service = PrefetchService(ServeConfig(vocab_size=args.vocab,
                                          seed=args.seed))
    sched = ThreadScheduler()
    for actor in service.actors():
        sched.add(actor)
    sched.start()
    period = 1.0 / args.offered_eps
    tickets = []
    try:
        start = _time.perf_counter()
        for i in range(args.events):
            tenant = i % args.tenants
            service.submit_miss(tenant, 4096 * ((3 * i + tenant) % 64), i)
            tickets.append(service.query(tenant))
            deadline = start + (i + 1) * period
            remaining = deadline - _time.perf_counter()
            if remaining > 0:
                _time.sleep(remaining)
        for ticket in tickets:
            if not ticket.wait(30.0):
                raise RuntimeError(
                    f"query {ticket.qid} unanswered after 30 s")
    finally:
        sched.stop()
    latency = service.latency_percentiles()
    print_table(["metric", "value"],
                [["offered_eps", args.offered_eps],
                 ["queries", int(latency["n"])],
                 ["p50_ms", round(latency["p50_ms"], 4)],
                 ["p99_ms", round(latency["p99_ms"], 4)]],
                title=f"Serve bench — {args.tenants} tenants at "
                      f"{args.offered_eps:g} events/s offered")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    if args.bench_command == "trend":
        from .harness.bench_trend import (
            find_bench_files,
            fleet_table,
            serve_table,
            trend_table,
        )

        files = find_bench_files(args.dir)
        if not files:
            print(f"no BENCH_PR*.json files found in {args.dir}")
            return 1
        headers, rows = trend_table(args.dir)
        print_table(headers, rows,
                    title="Benchmark speedup trajectory (per-PR, vs that "
                          "PR's own baseline; '—' = not measured)")
        fleet_headers, fleet_rows = fleet_table(args.dir)
        if fleet_rows:
            print()
            print_table(fleet_headers, fleet_rows,
                        title="Fleet throughput (batched engine vs "
                              "N sequential simulate() calls)")
        serve_headers, serve_rows = serve_table(args.dir)
        if serve_rows:
            print()
            print_table(serve_headers, serve_rows,
                        title="Online serving SLOs (query latency, "
                              "swap pause, daemon throughput)")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": cmd_generate,
        "simulate": cmd_simulate,
        "experiment": cmd_experiment,
        "fleet": cmd_fleet,
        "telemetry": cmd_telemetry,
        "serve": cmd_serve,
        "bench": cmd_bench,
    }
    handler = handlers[args.command]
    if args.profile:
        profiler = cProfile.Profile()
        status = profiler.runcall(handler, args)
        stats = pstats.Stats(profiler, stream=sys.stdout)
        print("\n--- cProfile: top 25 by cumulative time ---")
        stats.sort_stats("cumulative").print_stats(25)
        return status
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
