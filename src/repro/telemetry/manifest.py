"""Per-run provenance manifests.

A run manifest answers "what produced this JSONL file?" months later:
the canonical spec of the run (trace identity, prefetcher, simulator
configuration, telemetry interval) hashed with the same
:func:`~repro.harness.runner.spec_key` machinery the result cache uses,
plus the volatile environment (git SHA, wall time, library versions)
kept under a separate ``env`` key so schema tests can pin the stable
fields exactly and only assert the volatile ones exist.

Wall-clock and subprocess reads live here, outside the simulation zones,
so repro-lint's RL002 wall-clock ban on ``core``/``memsim``/``patterns``
still holds: the simulator only ever hands data *to* the sink.
"""

from __future__ import annotations

import platform
import subprocess
import sys
from typing import Any, Mapping

import numpy as np

from ..harness.runner import spec_key
from ..memsim.simulator import SimConfig
from ..patterns.trace import Trace

#: Bump when the JSONL record layout changes; the golden-schema test
#: (tests/telemetry/test_golden_schema.py) forces the bump to be
#: deliberate.  v2: kernel backend recorded under ``env`` (volatile —
#: ``auto`` resolves per machine; backends are bit-identical so the
#: backend can never change a result).
SCHEMA_VERSION = 2


def run_spec(trace: Trace, prefetcher_name: str, config: SimConfig,
             interval: int) -> dict:
    """Canonical, JSON-serializable spec of one telemetry-observed run."""
    metadata = {key: value for key, value in sorted(trace.metadata.items())
                if isinstance(value, (str, int, float, bool, type(None)))}
    return {
        "kind": "telemetry_run",
        "trace": trace.name,
        "n_accesses": len(trace.addresses),
        "trace_metadata": metadata,
        "prefetcher": prefetcher_name,
        "page_size": config.page_size,
        "memory_fraction": config.memory_fraction,
        "capacity_pages": config.capacity_pages,
        "prefetch_delay_accesses": config.prefetch_delay_accesses,
        "max_prefetches_per_miss": config.max_prefetches_per_miss,
        "interval": interval,
    }


def git_sha() -> str | None:
    """The repository HEAD SHA, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=5, check=False)
    except OSError:
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def environment() -> dict:
    """The volatile provenance fields (never part of the spec hash)."""
    return {
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": sys.platform,
    }


def build_serve_manifest(spec: Mapping[str, Any], *,
                         counters: Mapping[str, int],
                         latency: Mapping[str, float],
                         swap_pause: Mapping[str, float]) -> dict:
    """The head record of an online-serving JSONL manifest.

    Same provenance machinery as the simulation manifest — the spec is
    hashed with :func:`~repro.harness.runner.spec_key` and the volatile
    environment lives under ``env`` — but the payload is the service's
    operational record: exact event/query/drop counters and the measured
    p50/p99 query-latency and swap-pause milliseconds the §5.5
    availability claim is judged on.
    """
    spec_hash = spec_key(dict(spec))
    return {
        "record": "serve_manifest",
        "schema_version": SCHEMA_VERSION,
        "run_id": spec_hash[:16],
        "spec_hash": spec_hash,
        "spec": dict(spec),
        "counters": dict(counters),
        "latency": dict(latency),
        "swap_pause": dict(swap_pause),
        "env": environment(),
    }


def build_manifest(spec: Mapping[str, Any], *, seed: int | None,
                   engine: str, capacity_pages: int, wall_time_s: float,
                   n_windows: int, backend: str = "unknown") -> dict:
    """Assemble the manifest record for a finished run.

    ``seed`` is the trace generator's seed when the trace carries one in
    its metadata; synthetic traces built inline (tests, fixtures) may
    not, and record null.  ``backend`` (the resolved kernel backend) is
    recorded under ``env``: backends are bit-identical by contract, so
    like the numpy version it is provenance, not part of the result's
    identity — and ``auto`` resolves differently per machine.
    """
    spec_hash = spec_key(dict(spec))
    return {
        "record": "manifest",
        "schema_version": SCHEMA_VERSION,
        "run_id": spec_hash[:16],
        "spec_hash": spec_hash,
        "spec": dict(spec),
        "seed": seed,
        "engine": engine,
        "capacity_pages": capacity_pages,
        "wall_time_s": wall_time_s,
        "n_windows": n_windows,
        "env": {**environment(), "backend": backend},
    }
