"""The live telemetry sink.

One :class:`Telemetry` instance observes one ``simulate()`` run (it may
be reused sequentially; ``begin_run`` resets per-run state).  The
simulator drives the sink at window boundaries — observation happens
*between* engine segments, never inside them, which is why an enabled
sink cannot perturb the simulation: the engines execute the identical
per-access/per-span code either way, just restarted at boundary indices,
and the boundary restarts are exact by the segmented-engine equivalence
argument in :mod:`repro.memsim.simulator`.

Wall-clock reads (``perf_counter`` for run timing and named timers) are
confined to this module, which is outside repro-lint's RL002 simulation
zones by design.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from ..harness.runner import spec_key
from .manifest import build_manifest, run_spec
from .nullsink import NullTelemetry
from .windowing import WindowAccumulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..memsim.pagecache import PageCache
    from ..memsim.pagecache_reference import ReferencePageCache
    from ..memsim.simulator import SimConfig
    from ..patterns.trace import Trace

    AnyPageCache = PageCache | ReferencePageCache

#: Default accesses per window; chosen so the paper-scale figs get a few
#: hundred windows and the test-scale traces a few dozen.
DEFAULT_INTERVAL = 1000


class Telemetry(NullTelemetry):
    """Collects windowed series, named counters/timers, and a manifest.

    Attributes:
        interval: Accesses per window.
        windows: Per-window records of the last (or current) run.
        counters: Named monotone counters bumped via :meth:`counter`.
        timers: Accumulated seconds per named :meth:`timer` block.
    """

    enabled = True

    def __init__(self, interval: int = DEFAULT_INTERVAL) -> None:
        self._acc = WindowAccumulator(interval)
        self.counters: dict[str, int] = {}
        self.timers: dict[str, float] = {}
        self._spec: dict | None = None
        self._seed: int | None = None
        self._capacity_pages = 0
        self._engine = "unknown"
        self._backend = "unknown"
        self._started_at = 0.0
        self._wall_time_s = 0.0
        self._final_stats: dict | None = None
        self._finished = False

    @property
    def interval(self) -> int:
        return self._acc.interval

    @property
    def windows(self) -> list[dict]:
        return self._acc.windows

    # -- simulator-facing hooks -------------------------------------------

    def begin_run(self, trace: "Trace", prefetcher_name: str,
                  config: "SimConfig", capacity_pages: int) -> None:
        self._acc.reset()
        self._spec = run_spec(trace, prefetcher_name, config, self.interval)
        seed = trace.metadata.get("seed")
        self._seed = int(seed) if isinstance(seed, int) else None
        self._capacity_pages = capacity_pages
        self._engine = "unknown"
        self._backend = "unknown"
        self._final_stats = None
        self._finished = False
        self._started_at = time.perf_counter()

    def boundaries(self, n: int) -> list[int]:
        return self._acc.boundaries(n)

    def on_window(self, stop: int, cache: "AnyPageCache",
                  queue_depth: int, prefetcher: object) -> None:
        poll = getattr(prefetcher, "telemetry_counters", None)
        extra = poll() if callable(poll) else None
        self._acc.emit(stop, cache.stats, len(cache), queue_depth, extra)

    def on_fallback_restart(self) -> None:
        """The batched engine bailed out; the run restarts from access 0."""
        self.counter("engine_fallback_restarts")
        self._acc.reset()

    def end_run(self, engine: str, backend: str = "unknown") -> None:
        self._wall_time_s = time.perf_counter() - self._started_at
        self._engine = engine
        self._backend = backend
        if self.windows:
            last = self.windows[-1]
            self._final_stats = {
                "accesses": sum(w["accesses"] for w in self.windows),
                "demand_misses": sum(w["demand_misses"]
                                     for w in self.windows),
                "prefetch_hits": sum(w["prefetch_hits"]
                                     for w in self.windows),
                "resident": last["resident"],
            }
        self._finished = True

    # -- named counters/timers --------------------------------------------

    def counter(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.timers[name] = self.timers.get(name, 0.0) + elapsed

    # -- output -----------------------------------------------------------

    def manifest(self) -> dict:
        if self._spec is None:
            raise RuntimeError("no run observed (begin_run never called)")
        return build_manifest(
            self._spec, seed=self._seed, engine=self._engine,
            backend=self._backend,
            capacity_pages=self._capacity_pages,
            wall_time_s=self._wall_time_s, n_windows=len(self.windows))

    def summary(self) -> dict:
        record: dict = {"record": "summary"}
        if self._final_stats is not None:
            record.update(self._final_stats)
        record["counters"] = dict(sorted(self.counters.items()))
        record["timers"] = {name: round(seconds, 6) for name, seconds
                           in sorted(self.timers.items())}
        return record

    def records(self) -> list[dict]:
        """All JSONL records in file order: manifest, windows, summary."""
        return [self.manifest(), *self.windows, self.summary()]

    def run_id(self) -> str:
        if self._spec is None:
            raise RuntimeError("no run observed (begin_run never called)")
        return spec_key(self._spec)[:16]

    def write(self, directory: str | Path) -> Path:
        """Write ``<run_id>.jsonl`` atomically into ``directory``."""
        out_dir = Path(directory)
        out_dir.mkdir(parents=True, exist_ok=True)
        records = self.records()
        path = out_dir / f"{records[0]['run_id']}.jsonl"
        fd, tmp_name = tempfile.mkstemp(dir=out_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                for record in records:
                    handle.write(json.dumps(record, sort_keys=True))
                    handle.write("\n")
            os.replace(tmp_name, path)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise
        return path
