"""The disabled telemetry sink: every hook is a no-op.

``NullTelemetry`` defines the full sink surface the simulator and
harness drive, so :class:`~repro.telemetry.sink.Telemetry` subclasses it
rather than re-declaring the contract.  The simulator additionally
short-circuits on ``enabled`` — with a null (or absent) sink it runs a
single ``[0, n)`` segment through exactly the pre-telemetry code path,
which is how the ≤2% overhead acceptance bound is met: disabled
telemetry costs one attribute check per ``simulate()`` call, not one
per access.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..memsim.pagecache import PageCache
    from ..memsim.pagecache_reference import ReferencePageCache
    from ..memsim.simulator import SimConfig
    from ..patterns.trace import Trace

    AnyPageCache = PageCache | ReferencePageCache


class NullTelemetry:
    """A sink that observes nothing and costs nothing.

    Attributes:
        enabled: False; the simulator checks this once per run and takes
            the unsegmented fast path.
    """

    enabled: bool = False

    def begin_run(self, trace: "Trace", prefetcher_name: str,
                  config: "SimConfig", capacity_pages: int) -> None:
        del trace, prefetcher_name, config, capacity_pages

    def boundaries(self, n: int) -> list[int]:
        """Segment ends for a run of ``n`` accesses: one segment."""
        return [n]

    def on_window(self, stop: int, cache: "AnyPageCache",
                  queue_depth: int, prefetcher: object) -> None:
        del stop, cache, queue_depth, prefetcher

    def on_fallback_restart(self) -> None:
        pass

    def end_run(self, engine: str, backend: str = "unknown") -> None:
        del engine, backend

    def counter(self, name: str, amount: int = 1) -> None:
        del name, amount

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        del name
        yield


#: Shared default instance; stateless, safe across runs and processes.
NULL_TELEMETRY = NullTelemetry()
