"""Reading and rendering telemetry JSONL files (``repro telemetry``).

A run file is self-describing: the first record is the manifest, the
middle records are windows, the last is the summary.  These helpers
parse that layout back and render the per-window accuracy/coverage view
the CLI's ``telemetry summarize`` subcommand prints.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class RunRecords:
    """One parsed telemetry run file."""

    path: Path
    manifest: dict
    windows: list[dict] = field(default_factory=list)
    summary: dict = field(default_factory=dict)


def load_run(path: str | Path) -> RunRecords:
    """Parse one ``<run_id>.jsonl`` file; raises ValueError on bad layout."""
    path = Path(path)
    manifest: dict | None = None
    windows: list[dict] = []
    summary: dict = {}
    with path.open() as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("record")
            if kind == "manifest":
                manifest = record
            elif kind == "window":
                windows.append(record)
            elif kind == "summary":
                summary = record
            else:
                raise ValueError(
                    f"{path}:{line_no}: unknown record kind {kind!r}")
    if manifest is None:
        raise ValueError(f"{path}: no manifest record")
    return RunRecords(path=path, manifest=manifest, windows=windows,
                      summary=summary)


def iter_runs(directory: str | Path) -> list[RunRecords]:
    """Load every ``*.jsonl`` run in ``directory``, sorted by filename."""
    runs = []
    for path in sorted(Path(directory).glob("*.jsonl")):
        runs.append(load_run(path))
    return runs


def _sparkline(values: list[float]) -> str:
    blocks = "▁▂▃▄▅▆▇█"
    return "".join(blocks[min(int(v * (len(blocks) - 1) + 0.5),
                              len(blocks) - 1)]
                   if v == v else "?" for v in values)


def format_run(run: RunRecords, max_rows: int = 20) -> str:
    """Render one run: header, per-window table, sparkline overview."""
    m = run.manifest
    spec = m.get("spec", {})
    lines = [
        f"run {m.get('run_id')}  trace={spec.get('trace')}  "
        f"prefetcher={spec.get('prefetcher')}  engine={m.get('engine')}  "
        f"seed={m.get('seed')}",
        f"  spec_hash={m.get('spec_hash', '')[:32]}…  "
        f"windows={m.get('n_windows')}  interval={spec.get('interval')}  "
        f"wall={m.get('wall_time_s', 0.0):.3f}s",
    ]
    if run.windows:
        accuracy = [float(w["accuracy"]) for w in run.windows]
        coverage = [float(w["coverage"]) for w in run.windows]
        miss_rate = [float(w["miss_rate"]) for w in run.windows]
        lines.append(f"  accuracy  {_sparkline(accuracy)}")
        lines.append(f"  coverage  {_sparkline(coverage)}")
        lines.append(f"  miss_rate {_sparkline(miss_rate)}")
        lines.append("  window        end  accuracy  coverage  miss_rate"
                     "  queue  evictions")
        step = max(1, len(run.windows) // max_rows)
        shown = run.windows[::step]
        if run.windows[-1] is not shown[-1]:
            shown.append(run.windows[-1])
        for w in shown:
            lines.append(
                f"  {run.windows.index(w):6d} {w['index_stop']:10d}"
                f"  {w['accuracy']:8.3f}  {w['coverage']:8.3f}"
                f"  {w['miss_rate']:9.3f}  {w['queue_depth']:5d}"
                f"  {w['evictions']:9d}")
    counters = run.summary.get("counters") or {}
    if counters:
        joined = "  ".join(f"{k}={v}" for k, v in counters.items())
        lines.append(f"  counters: {joined}")
    timers = run.summary.get("timers") or {}
    if timers:
        joined = "  ".join(f"{k}={v:.4f}s" for k, v in timers.items())
        lines.append(f"  timers: {joined}")
    return "\n".join(lines)


def summarize_dir(directory: str | Path, max_rows: int = 20) -> str:
    """Render every run in ``directory``; empty-directory message if none."""
    runs = iter_runs(directory)
    if not runs:
        return f"no telemetry runs in {directory}"
    return "\n\n".join(format_run(run, max_rows=max_rows) for run in runs)
