"""Run-telemetry observability (PR 5).

Zero-overhead-when-disabled instrumentation for the simulator and
harness.  The pieces:

- :class:`~repro.telemetry.nullsink.NullTelemetry` — the default no-op
  sink; ``simulate()`` runs the exact pre-telemetry code path when the
  sink is absent or disabled.
- :class:`~repro.telemetry.sink.Telemetry` — windowed time series
  (accuracy, coverage, timeliness, miss rate, queue depth, evictions,
  replay invocations), named counters/timers, and a per-run provenance
  manifest, written as one JSONL file per run.
- :mod:`~repro.telemetry.windowing` / :mod:`~repro.telemetry.manifest` /
  :mod:`~repro.telemetry.report` — the accumulation, provenance, and
  rendering layers.

Harness plumbing mirrors :mod:`repro.harness.trace_cache`: the output
directory is per-process module state set by :func:`configure`, which
``run_grid`` forwards to worker processes through its initializer, so
telemetry never enters cell specs or cache keys — observed and
unobserved grid runs share result-cache entries.
"""

from __future__ import annotations

from pathlib import Path

from .manifest import SCHEMA_VERSION, build_manifest, run_spec
from .nullsink import NULL_TELEMETRY, NullTelemetry
from .report import RunRecords, format_run, iter_runs, load_run, summarize_dir
from .sink import DEFAULT_INTERVAL, Telemetry
from .windowing import STAT_FIELDS, WindowAccumulator, snapshot_stats

__all__ = [
    "DEFAULT_INTERVAL",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "RunRecords",
    "SCHEMA_VERSION",
    "STAT_FIELDS",
    "Telemetry",
    "WindowAccumulator",
    "build_manifest",
    "configure",
    "configured_dir",
    "configured_interval",
    "format_run",
    "iter_runs",
    "load_run",
    "maybe_sink",
    "run_spec",
    "snapshot_stats",
    "summarize_dir",
]

_telemetry_dir: Path | None = None
_telemetry_interval: int = DEFAULT_INTERVAL


def configure(directory: str | Path | None,  # repro-lint: zone=init
              interval: int | None = None) -> Path | None:
    """Set (or clear, with ``None``) this process's telemetry directory.

    Returns the previous directory so callers can restore it (the serial
    ``run_grid`` path brackets cell execution with configure/restore).
    """
    global _telemetry_dir, _telemetry_interval
    previous = _telemetry_dir
    if interval is not None:
        if interval <= 0:
            raise ValueError("telemetry interval must be positive")
        _telemetry_interval = interval
    if directory is None:
        _telemetry_dir = None
        return previous
    path = Path(directory)
    if path.exists() and not path.is_dir():
        raise ValueError(f"telemetry_dir {path} exists and is not "
                         "a directory")
    path.mkdir(parents=True, exist_ok=True)
    _telemetry_dir = path
    return previous


def configured_dir() -> Path | None:
    """The directory run sinks currently write into, if any."""
    return _telemetry_dir


def configured_interval() -> int:
    """The window interval new sinks are created with."""
    return _telemetry_interval


def maybe_sink() -> Telemetry | None:
    """A fresh sink when a directory is configured, else None.

    Harness cells call this before ``simulate()`` and, when it returns a
    sink, hand it to the simulator and :meth:`~repro.telemetry.sink.
    Telemetry.write` it into :func:`configured_dir` afterwards.
    """
    if _telemetry_dir is None:
        return None
    return Telemetry(interval=_telemetry_interval)
