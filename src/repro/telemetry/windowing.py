"""Windowed time-series accumulation over a run's counter stream.

The paper's claims are measurements *over* a run (online accuracy under a
phase change, Figure 3; stall behaviour in deployments, Figure 6), but the
simulator's :class:`~repro.memsim.pagecache.CacheStats` only accumulates
end-of-run totals.  :class:`WindowAccumulator` turns those monotone
counters into per-interval deltas: the simulator runs each engine over
window-aligned segments and hands the accumulator one snapshot per
boundary; the accumulator differences consecutive snapshots and derives
the per-window rates (miss rate, prefetch accuracy, coverage, timeliness)
from the deltas alone.

Because both simulation engines stop at the same window boundaries, a
span-batched run and a per-access scalar run produce byte-identical
window records — observation is pure accounting, never simulation input
(``tests/telemetry/test_engine_parity.py`` pins this).
"""

from __future__ import annotations

from typing import Mapping

from ..core.metrics import window_rates
from ..memsim.pagecache import CacheStats

#: CacheStats counters snapshotted at every window boundary, in schema
#: order.  All are monotone non-decreasing, so deltas are well-defined.
STAT_FIELDS = (
    "accesses",
    "hits",
    "demand_misses",
    "prefetch_hits",
    "prefetches_issued",
    "prefetches_redundant",
    "prefetches_evicted_unused",
    "demand_evictions_by_prefetch",
    "writebacks",
)


def snapshot_stats(stats: CacheStats) -> tuple[int, ...]:
    """Copy the monotone counters of ``stats`` (cheap: nine int reads)."""
    return (
        stats.accesses,
        stats.hits,
        stats.demand_misses,
        stats.prefetch_hits,
        stats.prefetches_issued,
        stats.prefetches_redundant,
        stats.prefetches_evicted_unused,
        stats.demand_evictions_by_prefetch,
        stats.writebacks,
    )


class WindowAccumulator:
    """Differences counter snapshots into per-window records.

    Attributes:
        interval: Accesses per window (> 0).
        windows: Emitted window records, in order, JSON-ready.
    """

    def __init__(self, interval: int) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.windows: list[dict] = []
        self._prev_stats: tuple[int, ...] = (0,) * len(STAT_FIELDS)
        self._prev_resident = 0
        self._prev_extra: dict[str, int | float] = {}
        self._prev_index = 0

    def boundaries(self, n: int) -> list[int]:
        """Window-aligned segment ends covering ``[0, n)`` (last is ``n``)."""
        stops = list(range(self.interval, n, self.interval))
        stops.append(n)
        return stops

    def reset(self) -> None:
        """Discard all windows and snapshots (engine fallback restart)."""
        self.windows = []
        self._prev_stats = (0,) * len(STAT_FIELDS)
        self._prev_resident = 0
        self._prev_extra = {}
        self._prev_index = 0

    def emit(self, end_index: int, stats: CacheStats, resident: int,
             queue_depth: int,
             extra: Mapping[str, int | float] | None = None) -> dict:
        """Close the window ending at ``end_index`` and record it.

        ``extra`` carries component counters (e.g. the prefetcher's
        ``telemetry_counters()``): integer values are treated as monotone
        counters and differenced against the previous window's snapshot;
        floats are gauges and recorded as-is.
        """
        current = snapshot_stats(stats)
        deltas = {name: now - before for name, now, before
                  in zip(STAT_FIELDS, current, self._prev_stats)}
        record: dict = {
            "record": "window",
            "index_start": self._prev_index,
            "index_stop": end_index,
        }
        record.update(deltas)
        # Evictions are not a CacheStats counter, but they are implied
        # exactly: every fill or non-redundant prefetch insertion beyond
        # what residency grew by displaced a page.
        fills = (deltas["demand_misses"] + deltas["prefetches_issued"]
                 - deltas["prefetches_redundant"])
        record["evictions"] = fills - (resident - self._prev_resident)
        record["resident"] = resident
        record["queue_depth"] = queue_depth
        record.update(window_rates(deltas))
        if extra:
            for name, value in extra.items():
                if isinstance(value, bool) or not isinstance(value, int):
                    record[name] = value  # gauge
                else:
                    prev = self._prev_extra.get(name, 0)
                    record[name] = value - int(prev)
            self._prev_extra = dict(extra)
        self._prev_stats = current
        self._prev_resident = resident
        self._prev_index = end_index
        self.windows.append(record)
        return record
