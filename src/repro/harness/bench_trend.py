"""Cross-PR benchmark trajectory: ``repro bench trend``.

Each perf-focused PR leaves a ``BENCH_PR<N>.json`` at the repo root
recording paired before/after measurements for its workloads.  The file
layouts differ per PR (sections appear and disappear as the perf
campaign moves), but every measured cell shares one convention: a dict
carrying a numeric ``"speedup"``.  This module walks every bench file
for those cells and pivots them into a per-workload trajectory table,
so "how did stride-resnet fare across PRs 3→4→6?" is one command
instead of four ``jq`` invocations.

Cells a PR did not measure (or that report an ``overhead_pct`` instead
of a speedup, like the PR 5 telemetry-overhead table) render as ``—``.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any

#: Bench files match this at the repo root.
_BENCH_RE = re.compile(r"^BENCH_PR(\d+)\.json$")

#: Top-level provenance keys that are not measurement sections.
_META_KEYS = frozenset({"pr", "python", "numpy", "cpu_count",
                        "before_commit"})


def find_bench_files(root: str | Path) -> list[tuple[int, Path]]:
    """``(pr_number, path)`` for every ``BENCH_PR*.json`` under ``root``,
    sorted by PR number."""
    found = []
    for path in Path(root).iterdir():
        match = _BENCH_RE.match(path.name)
        if match:
            found.append((int(match.group(1)), path))
    return sorted(found)


def extract_speedups(payload: Any, _path: tuple[str, ...] = ()
                     ) -> dict[str, float]:
    """Every ``"speedup"``-bearing dict in ``payload``, keyed by its
    "/"-joined key path (e.g. ``"simulate/stride-resnet"``).

    Lists are walked too (elements keyed by index), so scaling curves —
    sequences of measurement dicts, as the PR 8 fleet bench emits —
    contribute their cells instead of being silently skipped.
    """
    out: dict[str, float] = {}
    if isinstance(payload, list):
        for i, value in enumerate(payload):
            out.update(extract_speedups(value, _path + (str(i),)))
        return out
    if not isinstance(payload, dict):
        return out
    speedup = payload.get("speedup")
    if isinstance(speedup, (int, float)) and not isinstance(speedup, bool):
        out["/".join(_path)] = float(speedup)
    for key, value in payload.items():
        if not _path and key in _META_KEYS:
            continue
        out.update(extract_speedups(value, _path + (str(key),)))
    return out


def extract_fleet_cells(payload: Any, _path: tuple[str, ...] = ()
                        ) -> list[tuple[str, dict]]:
    """Fleet throughput cells: dicts carrying ``tenants`` and
    ``fleet_events_per_sec``, with their "/"-joined key paths."""
    out: list[tuple[str, dict]] = []
    if isinstance(payload, list):
        for i, value in enumerate(payload):
            out.extend(extract_fleet_cells(value, _path + (str(i),)))
        return out
    if not isinstance(payload, dict):
        return out
    if ("tenants" in payload and "fleet_events_per_sec" in payload):
        out.append(("/".join(_path), payload))
    for key, value in payload.items():
        if not _path and key in _META_KEYS:
            continue
        out.extend(extract_fleet_cells(value, _path + (str(key),)))
    return out


def extract_serve_cells(payload: Any, _path: tuple[str, ...] = ()
                        ) -> list[tuple[str, dict]]:
    """Online-serving cells: throughput dicts carrying
    ``serve_events_per_sec`` and latency dicts carrying ``p99_ms``
    (the PR 10 serve bench emits both shapes)."""
    out: list[tuple[str, dict]] = []
    if isinstance(payload, list):
        for i, value in enumerate(payload):
            out.extend(extract_serve_cells(value, _path + (str(i),)))
        return out
    if not isinstance(payload, dict):
        return out
    if "serve_events_per_sec" in payload or "p99_ms" in payload:
        out.append(("/".join(_path), payload))
    for key, value in payload.items():
        if not _path and key in _META_KEYS:
            continue
        out.extend(extract_serve_cells(value, _path + (str(key),)))
    return out


def _workload(label: str) -> str:
    """The pivot key: the leaf of the key path (section names vary per
    PR, workload names are the stable vocabulary).  A bare list index is
    no vocabulary at all, so numeric leaves keep their named parent
    (``fleet/stride/2`` pivots as ``stride/2``, not ``2``)."""
    parts = label.split("/")
    leaf = parts[-1]
    if leaf.isdigit() and len(parts) > 1:
        return "/".join(parts[-2:])
    return leaf


def trend_table(root: str | Path) -> tuple[list[str], list[list[object]]]:
    """Pivot every bench file into ``(headers, rows)``.

    One row per workload (leaf label), one column per PR; cells are that
    PR's measured speedup for the workload or ``—``.  A workload
    measured under two sections of the same file keeps the last-walked
    value — bench files do not reuse workload names across sections.
    """
    files = find_bench_files(root)
    per_pr: list[tuple[int, dict[str, float]]] = []
    workloads: list[str] = []
    for pr, path in files:
        with path.open("r", encoding="utf-8") as fh:
            speedups = extract_speedups(json.load(fh))
        by_workload = {_workload(label): value
                       for label, value in sorted(speedups.items())}
        per_pr.append((pr, by_workload))
        for name in by_workload:
            if name not in workloads:
                workloads.append(name)

    headers = ["workload"] + [f"PR{pr}" for pr, _ in per_pr]
    rows: list[list[object]] = []
    for name in workloads:
        row: list[object] = [name]
        for _, by_workload in per_pr:
            value = by_workload.get(name)
            row.append("—" if value is None else value)
        rows.append(row)
    return headers, rows


def fleet_table(root: str | Path) -> tuple[list[str], list[list[object]]]:
    """Fleet throughput cells across all bench files, flattened.

    One row per (PR, workload, tenant count): the fleet's events/sec,
    the N-sequential-``simulate()`` events/sec when measured, and the
    speedup.  Empty when no bench file carries fleet measurements.
    ``jobs`` is the sharding worker count for multi-process cells; PR≤8
    bench files (and single-process cells) lack it and render ``—``.
    """
    headers = ["PR", "workload", "tenants", "jobs",
               "fleet_events_per_sec", "sequential_events_per_sec",
               "speedup"]
    rows: list[list[object]] = []
    for pr, path in find_bench_files(root):
        with path.open("r", encoding="utf-8") as fh:
            cells = extract_fleet_cells(json.load(fh))
        for label, cell in sorted(cells):
            named = [p for p in label.split("/") if not p.isdigit()]
            workload = named[-1] if named else label
            rows.append([
                f"PR{pr}", workload, cell["tenants"],
                cell.get("jobs", "—"),
                cell["fleet_events_per_sec"],
                cell.get("sequential_events_per_sec", "—"),
                cell.get("speedup", "—"),
            ])
    return headers, rows


def serve_table(root: str | Path) -> tuple[list[str], list[list[object]]]:
    """Online-serving SLO cells across all bench files, flattened.

    One row per serve cell: throughput rows carry ``tenants`` and
    ``serve_events_per_sec``; latency rows carry the offered load and
    the measured p50/p99 milliseconds (query latency or swap pause,
    distinguished by the section name in ``workload``).  Empty when no
    bench file carries serve measurements.
    """
    headers = ["PR", "workload", "tenants", "offered_eps",
               "serve_events_per_sec", "p50_ms", "p99_ms"]
    rows: list[list[object]] = []
    for pr, path in find_bench_files(root):
        with path.open("r", encoding="utf-8") as fh:
            cells = extract_serve_cells(json.load(fh))
        for label, cell in sorted(cells):
            named = [p for p in label.split("/") if not p.isdigit()]
            workload = named[-1] if named else label
            rows.append([
                f"PR{pr}", workload,
                cell.get("tenants", "—"),
                cell.get("offered_eps", "—"),
                cell.get("serve_events_per_sec", "—"),
                cell.get("p50_ms", "—"),
                cell.get("p99_ms", "—"),
            ])
    return headers, rows
