"""The Figure 3 experiment: catastrophic interference and its replay cure.

Protocol (§2.2, §3.2): train the model online on pattern A's 1000-access
trace until it is confident, then train on pattern B's trace; monitor the
model's confidence (probability assigned to the correct next access) on
both patterns throughout.  Without replay, confidence on A collapses while
B is learned (Figure 3 a-c).  With interleaved replay — retraining on A's
stored examples at a 0.1x learning rate after each step on B — A's
confidence survives (Figure 3 d-f).

The experiment runs at data-structure granularity ("to avoid confounding
effects possible in page-level prefetching"), on class sequences produced
by the shared delta encoder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..core.encoding import DeltaVocabEncoder, classify_addresses
from ..core.hippocampus import Episode
from ..core.metrics import ConfidenceCurve, InterferenceSummary
from ..core.replay import ReplayScheduler, make_replay_policy
from ..seeding import spawn_seeds
from ..nn.base import SequenceModel
from ..patterns.generators import PatternSpec, generate

ModelFactory = Callable[[int], SequenceModel]  # vocab_size -> model


@dataclass
class InterferenceRun:
    """Everything one Figure 3 panel needs."""

    pattern_a: str
    pattern_b: str
    replay: bool
    curve_a: ConfidenceCurve
    curve_b: ConfidenceCurve
    summary: InterferenceSummary
    replayed_pairs: int = 0


@dataclass
class InterferenceConfig:
    """Experiment knobs (defaults follow the paper).

    Attributes:
        n_accesses: Accesses per pattern trace (paper: 1000).
        working_set: Elements per pattern structure.
        probe_len: Transitions scored per confidence probe.
        probe_every: Training steps between confidence probes.
        replay_policy: Replay policy kind for the replay arm.
        replay_kwargs: Extra arguments for the replay policy.
        replay_per_step: Replayed pairs per new training step.
        replay_lr_scale: Replay learning-rate scale (paper: 0.1).
        vocab_size: Shared encoder/model vocabulary.
        element_size: Bytes per element in the generated patterns.
        seed: Trace-generation seed.
    """

    n_accesses: int = 1000
    working_set: int = 50
    probe_len: int = 120
    probe_every: int = 50
    replay_policy: str = "full"
    replay_kwargs: dict[str, int | float | str | bool] = field(default_factory=dict)
    replay_per_step: int = 1
    replay_lr_scale: float = 0.1
    vocab_size: int = 128
    element_size: int = 64
    seed: int = 0


def pattern_class_sequences(pattern_a: str, pattern_b: str,
                            config: InterferenceConfig
                            ) -> tuple[list[int], list[int]]:
    """Encode both patterns' traces into one shared class space."""
    spec_a = PatternSpec(n=config.n_accesses, working_set=config.working_set,
                         element_size=config.element_size, seed=config.seed)
    spec_b = PatternSpec(n=config.n_accesses, working_set=config.working_set,
                         element_size=config.element_size,
                         base=spec_a.base + 0x1000_0000,
                         seed=spawn_seeds(config.seed, 1)[0])
    trace_a = generate(pattern_a, spec_a)
    trace_b = generate(pattern_b, spec_b)

    encoder = DeltaVocabEncoder(vocab_size=config.vocab_size,
                                granularity=config.element_size)
    seq_a = classify_addresses(encoder, trace_a.addresses)
    encoder.reset_stream()  # the phase switch is a stream boundary
    seq_b = classify_addresses(encoder, trace_b.addresses)
    return seq_a, seq_b


def run_interference(model_factory: ModelFactory, pattern_a: str, pattern_b: str,
                     replay: bool,
                     config: InterferenceConfig = InterferenceConfig()
                     ) -> InterferenceRun:
    """Run one Figure 3 panel; returns both confidence curves + summary."""
    seq_a, seq_b = pattern_class_sequences(pattern_a, pattern_b, config)
    probe_a = seq_a[: config.probe_len + 1]
    probe_b = seq_b[: config.probe_len + 1]

    model = model_factory(config.vocab_size)
    curve_a = ConfidenceCurve(label=f"{pattern_a} (old)")
    curve_b = ConfidenceCurve(label=f"{pattern_b} (new)")

    scheduler: ReplayScheduler | None = None
    if replay:
        policy = make_replay_policy(config.replay_policy, **config.replay_kwargs)
        scheduler = ReplayScheduler(policy=policy,
                                    per_step=config.replay_per_step,
                                    lr_scale=config.replay_lr_scale,
                                    seed=config.seed)

    step = 0
    # Phase 1: learn pattern A online.
    model.reset_state()
    for i, class_id in enumerate(seq_a):
        model.step(class_id, train=True)
        if scheduler is not None and i > 0:
            scheduler.record(Episode(input_class=seq_a[i - 1], target_class=class_id,
                                     phase_id=0))
        step += 1
        if step % config.probe_every == 0:
            curve_a.append(step, model.evaluate_sequence(probe_a))

    conf_a_before = model.evaluate_sequence(probe_a)
    curve_a.append(step, conf_a_before)

    # Phase 2: learn pattern B online, optionally with interleaved replay.
    model.reset_state()
    replayed = 0
    for i, class_id in enumerate(seq_b):
        model.step(class_id, train=True)
        if scheduler is not None:
            if i > 0:
                scheduler.record(Episode(input_class=seq_b[i - 1],
                                         target_class=class_id, phase_id=1))
            replayed += scheduler.step(model, current_phase=1)
        step += 1
        if step % config.probe_every == 0:
            curve_a.append(step, model.evaluate_sequence(probe_a))
            curve_b.append(step, model.evaluate_sequence(probe_b))

    conf_a_after = model.evaluate_sequence(probe_a)
    conf_b_after = model.evaluate_sequence(probe_b)
    curve_a.append(step, conf_a_after)
    curve_b.append(step, conf_b_after)

    summary = InterferenceSummary(
        pattern_a=pattern_a, pattern_b=pattern_b,
        conf_a_before=conf_a_before,
        conf_a_after=conf_a_after,
        conf_b_after=conf_b_after,
        replay=replay,
    )
    return InterferenceRun(pattern_a=pattern_a, pattern_b=pattern_b, replay=replay,
                           curve_a=curve_a, curve_b=curve_b, summary=summary,
                           replayed_pairs=replayed)
