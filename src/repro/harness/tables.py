"""Table 1 and Table 2 regenerators.

Table 1 is descriptive (the five access patterns); its "reproduction" is a
statistical signature of each generator proving the behaviour column:
stride has one delta, pointer chase has a pseudorandom periodic walk, the
indirect patterns alternate a regular and an irregular stream, and
pointer-offset interleaves field offsets into a chase.

Table 2 compares the resource needs of the two networks: parameters and
per-invocation op counts for inference and training.  We regenerate it
from our model configurations and report the paper's published values
alongside.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.costs import (
    hebbian_inference_ops,
    hebbian_parameter_count,
    hebbian_training_ops,
    lstm_inference_ops,
    lstm_training_ops,
)
from ..patterns.generators import PATTERN_NAMES, PatternSpec, generate
from .models import paper_hebbian_config, paper_lstm_config


@dataclass(frozen=True)
class PatternSignature:
    """Statistical fingerprint of one Table 1 generator."""

    pattern: str
    n_accesses: int
    distinct_deltas: int
    dominant_delta_share: float  # fraction of deltas equal to the mode
    period: int | None           # autocorrelation period of the address walk
    footprint_bytes: int


def pattern_signature(pattern: str, spec: PatternSpec = PatternSpec()) -> PatternSignature:
    trace = generate(pattern, spec)
    deltas = trace.deltas()
    values, counts = np.unique(deltas, return_counts=True)
    dominant = float(counts.max() / counts.sum()) if counts.size else 0.0
    return PatternSignature(
        pattern=pattern,
        n_accesses=len(trace),
        distinct_deltas=int(values.size),
        dominant_delta_share=dominant,
        period=_detect_period(trace.addresses),
        footprint_bytes=trace.footprint_bytes(page_size=spec.element_size
                                              if _pow2(spec.element_size) else 4096),
    )


def table1_signatures(spec: PatternSpec = PatternSpec()) -> list[PatternSignature]:
    return [pattern_signature(name, spec) for name in PATTERN_NAMES]


def _detect_period(addresses: np.ndarray, max_period: int = 512) -> int | None:
    """Smallest p with addresses[i] == addresses[i+p] for all i (if any)."""
    n = len(addresses)
    for p in range(1, min(max_period, n // 2) + 1):
        if np.array_equal(addresses[: n - p], addresses[p:]):
            return p
    return None


def _pow2(x: int) -> bool:
    return x > 0 and not x & (x - 1)


# ----------------------------------------------------------------------
# Table 2
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ResourceRow:
    """One Table 2 row."""

    model: str
    parameters: int
    inference_ops: int
    inference_kind: str   # "FP" or "INT"
    training_ops: int
    paper_parameters: int
    paper_inference_ops: int
    paper_training_ops: int


#: Paper's Table 2, verbatim.
PAPER_TABLE2 = {
    "lstm": {"parameters": 170_000, "inference_ops": 170_000,
             "training_ops": 400_000},
    "hebbian": {"parameters": 49_000, "inference_ops": 14_000,
                "training_ops": 64_000},
}


def table2_rows() -> list[ResourceRow]:
    lstm_cfg = paper_lstm_config()
    hebb_cfg = paper_hebbian_config()
    lstm_inf = lstm_inference_ops(lstm_cfg)
    lstm_train = lstm_training_ops(lstm_cfg)
    hebb_inf = hebbian_inference_ops(hebb_cfg)
    hebb_train = hebbian_training_ops(hebb_cfg)
    return [
        ResourceRow(
            model="lstm",
            parameters=lstm_cfg.parameter_count,
            inference_ops=lstm_inf.fp_ops + lstm_inf.transcendental_ops,
            inference_kind="FP",
            training_ops=lstm_train.fp_ops + lstm_train.transcendental_ops,
            paper_parameters=PAPER_TABLE2["lstm"]["parameters"],
            paper_inference_ops=PAPER_TABLE2["lstm"]["inference_ops"],
            paper_training_ops=PAPER_TABLE2["lstm"]["training_ops"],
        ),
        ResourceRow(
            model="hebbian",
            parameters=hebbian_parameter_count(hebb_cfg),
            inference_ops=hebb_inf.int_ops,
            inference_kind="INT",
            training_ops=hebb_train.int_ops,
            paper_parameters=PAPER_TABLE2["hebbian"]["parameters"],
            paper_inference_ops=PAPER_TABLE2["hebbian"]["inference_ops"],
            paper_training_ops=PAPER_TABLE2["hebbian"]["training_ops"],
        ),
    ]
