"""Shared trace-materialization cache (PR 4).

Generating a synthetic application trace is deterministic but not free
(tens of milliseconds at test scale, minutes at the paper's 2B-access
scale), and every harness cell for the same ``(app, n, seed, scale)``
regenerates the identical trace: the Figure 5 grid touches each
application once per model, a seed sweep multiplies that by the seed
count, and the ablation suite replays resnet dozens of times.  This
module memoizes materialized traces on disk as ``.npz`` archives keyed by
the same canonical :func:`~repro.harness.runner.spec_key` hash the result
cache uses, so any number of harness invocations — and any number of
worker processes — share one materialization per distinct trace spec.

The cache is configured per process via :func:`configure`;
:func:`~repro.harness.runner.run_grid` forwards its ``trace_cache_dir``
argument to worker processes through a ``ProcessPoolExecutor``
initializer.  Unconfigured, :func:`materialize` is exactly
``generate_application``, so cold-start results are identical with or
without a cache directory — the cache can only change *when* a trace is
built, never what it contains.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

from ..patterns.applications import AppSpec, generate_application
from ..patterns.trace import Trace
from .runner import spec_key

_cache_dir: Path | None = None


def configure(cache_dir: str | Path | None) -> Path | None:  # repro-lint: zone=init
    """Set (or clear, with ``None``) this process's trace cache directory.

    Creates the directory on demand and returns the previous setting so
    callers can restore it (``run_grid``'s serial path brackets cell
    execution with configure/restore).
    """
    global _cache_dir
    previous = _cache_dir
    if cache_dir is None:
        _cache_dir = None
        return previous
    path = Path(cache_dir)
    if path.exists() and not path.is_dir():
        raise ValueError(f"trace_cache_dir {path} exists and is not "
                         "a directory")
    path.mkdir(parents=True, exist_ok=True)
    _cache_dir = path
    return previous


def configured_dir() -> Path | None:
    """The directory :func:`materialize` currently caches into, if any."""
    return _cache_dir


def trace_spec(app: str, spec: AppSpec) -> dict:
    """Canonical cache spec of one materialized application trace."""
    return {"kind": "trace_materialization", "app": app,
            "n": spec.n, "seed": spec.seed, "scale": spec.scale}


def materialize(app: str, spec: AppSpec) -> Trace:
    """Generate ``app``'s trace, serving/storing the cache if configured.

    A cached archive that fails to load (torn write, foreign file) or
    fails the integrity check is regenerated and overwritten rather than
    served.
    """
    directory = _cache_dir
    if directory is None:
        return generate_application(app, spec)
    path = directory / f"{spec_key(trace_spec(app, spec))}.npz"
    if path.exists():
        cached = _load(path, app, spec)
        if cached is not None:
            return cached
    trace = generate_application(app, spec)
    _store(path, trace)
    return trace


def _load(path: Path, app: str, spec: AppSpec) -> Trace | None:
    try:
        trace = Trace.load(path)
    except Exception:  # truncated zip, bad JSON sidecar, missing columns
        return None
    # The sha256 key already covers the full spec; these checks catch a
    # file that loads cleanly but cannot be the requested trace.
    if trace.name != app or not 0 < len(trace) <= spec.n:
        return None
    return trace


def _store(path: Path, trace: Trace) -> None:
    """Atomic write (tmp + rename): concurrent workers racing to
    materialize the same trace each write a whole file and the last
    rename wins; readers never observe a torn archive."""
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp.npz")
    os.close(fd)
    try:
        trace.save(tmp)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
