"""Plain-text reporting for experiment harnesses.

Every benchmark prints the rows/series the corresponding paper table or
figure reports, via these helpers, so outputs are uniform and greppable in
``bench_output.txt``.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Fixed-width text table; floats rendered with 3 significant decimals."""
    rendered = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                title: str | None = None) -> None:
    print()
    print(format_table(headers, rows, title=title))


def format_series(label: str, xs: Sequence[object], ys: Sequence[float],
                  x_name: str = "x", y_name: str = "y") -> str:
    """One figure series as aligned (x, y) pairs."""
    pairs = "  ".join(f"({_cell(x)}, {_cell(y)})" for x, y in zip(xs, ys))
    return f"{label} [{x_name} -> {y_name}]: {pairs}"


def _cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
