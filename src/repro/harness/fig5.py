"""Figure 5: online memory prefetching performance, Hebbian vs LSTM.

The paper's setup (§3.1): four applications (TensorFlow/ResNet-50 training,
GraphChi PageRank, SPEC mcf, graph500); a 2-billion-access trace per
application; memory sized at 50% of the trace footprint; both prefetchers
deployed as in Figure 1 with a miss history length of 1; metric = the
percentage of misses removed vs a no-prefetching baseline.

We run the same protocol on the synthetic application traces (DESIGN.md
substitution #1) at a configurable trace length.  The paper's claim to
check: the Hebbian network's miss reduction is *comparable* to the
LSTM's on every application despite an order of magnitude fewer resources.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from pathlib import Path

from .. import telemetry
from ..core.cls_prefetcher import CLSPrefetcher, CLSPrefetcherConfig
from ..core.metrics import PrefetchSummary, summarize_prefetch
from ..memsim.simulator import SimConfig, baseline_misses, simulate
from ..patterns.applications import FIG5_APPLICATIONS, AppSpec
from .models import experiment_hebbian_config, experiment_lstm_config
from .runner import run_grid
from .trace_cache import materialize


@dataclass
class Fig5Config:
    """Experiment knobs.

    Attributes:
        applications: Which Figure 5 workloads to run.
        n_accesses: Trace length per application (paper: 2e9; default here
            keeps the full sweep to a few minutes — scale up freely).
        memory_fraction: Local memory vs trace footprint (paper: 0.5).
        vocab_size: Shared encoder/model vocabulary.
        prefetch_length: §5.2 length; 2 compensates prefetch-on-miss's
            every-other-miss visibility.
        prefetch_width: §5.2 width.
        min_confidence: Suppress predictions below this probability (§5.2's
            "highly selective" operating point).  Without it, mispredictions
            on hard streams (graph500's state-dependent misses) pollute the
            cache and push miss removal negative.
        observe_hits: Feed demand hits through the models too.  Default off
            — the paper's Figure 1 deployment trains on the *miss* history.
        seed: Trace and model seed.
    """

    applications: tuple[str, ...] = FIG5_APPLICATIONS
    n_accesses: int = 30_000
    memory_fraction: float = 0.5
    vocab_size: int = 192
    prefetch_length: int = 2
    prefetch_width: int = 2
    min_confidence: float = 0.25
    observe_hits: bool = False
    seed: int = 0


@dataclass
class Fig5Result:
    """All bars of the figure plus run metadata."""

    rows: list[PrefetchSummary] = field(default_factory=list)

    def for_app(self, app: str) -> dict[str, PrefetchSummary]:
        return {r.prefetcher_name: r for r in self.rows if r.trace_name == app}

    def models(self) -> list[str]:
        return sorted({r.prefetcher_name for r in self.rows})


def make_model_prefetcher(model: str, config: Fig5Config) -> CLSPrefetcher:
    """The Figure 1 deployment of one model family."""
    if model == "hebbian":
        model_cfg = {"hebbian": experiment_hebbian_config(config.vocab_size,
                                                          config.seed)}
    elif model == "lstm":
        model_cfg = {"lstm": experiment_lstm_config(config.vocab_size, config.seed)}
    else:
        raise ValueError(f"unknown model {model!r}")
    return CLSPrefetcher(CLSPrefetcherConfig(
        model=model,
        vocab_size=config.vocab_size,
        encoder="delta",
        prefetch_length=config.prefetch_length,
        prefetch_width=config.prefetch_width,
        min_confidence=config.min_confidence,
        observe_hits=config.observe_hits,
        seed=config.seed,
        **model_cfg,
    ))


def fig5_cell_spec(app: str, model: str, config: Fig5Config) -> dict:
    """The JSON cell spec for one (application, model) bar.

    ``applications`` is deliberately dropped: a cell's result depends only
    on its own app, so narrowing or widening the app list must not
    invalidate cached bars.
    """
    knobs = asdict(config)
    knobs.pop("applications")
    return {"kind": "fig5_cell", "app": app, "model": model, "config": knobs}


def fig5_cell(spec: dict) -> dict:
    """Run one Figure 5 bar from its spec (module-level: picklable).

    When this process has a telemetry directory configured (see
    ``repro.telemetry.configure`` / ``run_grid(telemetry_dir=...)``), the
    prefetcher run is observed and its windowed series + manifest written
    there as JSONL.  The sink never enters the spec, so the result-cache
    key is unchanged by observation.
    """
    config = Fig5Config(applications=(spec["app"],), **spec["config"])
    trace = materialize(spec["app"], AppSpec(n=config.n_accesses,
                                             seed=config.seed))
    sim_cfg = SimConfig(memory_fraction=config.memory_fraction)
    baseline = baseline_misses(trace, sim_cfg)
    prefetcher = make_model_prefetcher(spec["model"], config)
    sink = telemetry.maybe_sink()
    run = simulate(trace, prefetcher, sim_cfg, telemetry=sink)
    if sink is not None:
        out_dir = telemetry.configured_dir()
        assert out_dir is not None
        sink.write(out_dir)
    summary = summarize_prefetch(baseline, run)
    return asdict(summary)


def run_fig5(config: Fig5Config = Fig5Config(),
             models: tuple[str, ...] = ("hebbian", "lstm"),
             jobs: int | None = None,
             cache_dir: str | Path | None = None,
             trace_cache_dir: str | Path | None = None,
             telemetry_dir: str | Path | None = None,
             telemetry_interval: int | None = None,
             backend: str = "auto") -> Fig5Result:
    """Run the full Figure 5 grid; returns one summary per (app, model).

    ``jobs`` fans the (app, model) cells out across processes;
    ``cache_dir`` memoizes each cell on disk (see ``harness.runner``);
    ``trace_cache_dir`` shares materialized traces across cells and
    invocations (see ``harness.trace_cache``); ``telemetry_dir`` writes a
    per-run JSONL file per computed cell (see ``repro.telemetry``);
    ``backend`` pins the kernel backend in every worker without entering
    the cell specs (see ``harness.runner``).
    """
    specs = [fig5_cell_spec(app, model, config)
             for app in config.applications for model in models]
    rows = run_grid(specs, fig5_cell, jobs=jobs, cache_dir=cache_dir,
                    trace_cache_dir=trace_cache_dir,
                    telemetry_dir=telemetry_dir,
                    telemetry_interval=telemetry_interval,
                    backend=backend)
    return Fig5Result(rows=[PrefetchSummary(**row) for row in rows])
