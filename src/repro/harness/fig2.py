"""Figure 2: inference and training latency of the prefetch models.

The paper's figure has two panels, measured on an i7-8700:

- (a) inference time vs the number of future predictions, for the LSTM
  with one and two threads and with INT8 quantization — all well above the
  1-10 us deployment target — plus the Hebbian network, proportionately
  lower per its op counts;
- (b) per-example training time vs batch size, same families.

We regenerate both panels from the calibrated cost model
(`repro.nn.costs`), which converts *exactly counted* ops into
microseconds.  See DESIGN.md substitution #2.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..nn.costs import (
    DEFAULT_LATENCY_MODEL,
    LatencyModel,
    OpCount,
    hebbian_inference_ops,
    hebbian_training_ops,
    lstm_inference_ops,
    lstm_training_ops,
)
from .models import paper_hebbian_config, paper_lstm_config

FUTURE_STEPS = (1, 2, 4, 8, 16)
BATCH_SIZES = (1, 4, 16, 64)


@dataclass(frozen=True)
class LatencySeries:
    """One Figure 2 line: latency (us) across an x sweep."""

    label: str
    xs: tuple[int, ...]
    latencies_us: tuple[float, ...]


def inference_panel(model: LatencyModel = DEFAULT_LATENCY_MODEL,
                    future_steps: tuple[int, ...] = FUTURE_STEPS
                    ) -> list[LatencySeries]:
    """Figure 2a: inference latency vs number of future predictions."""
    lstm_cfg = paper_lstm_config()
    hebb_cfg = paper_hebbian_config()
    series = []
    series.append(LatencySeries(
        label="lstm-fp32-1t", xs=future_steps,
        latencies_us=tuple(model.inference_us(lstm_inference_ops(lstm_cfg, n), 1, "lstm")
                           for n in future_steps)))
    series.append(LatencySeries(
        label="lstm-fp32-2t", xs=future_steps,
        latencies_us=tuple(model.inference_us(lstm_inference_ops(lstm_cfg, n), 2, "lstm")
                           for n in future_steps)))
    series.append(LatencySeries(
        label="lstm-int8-1t", xs=future_steps,
        latencies_us=tuple(
            model.inference_us(lstm_inference_ops(lstm_cfg, n, quantized=True), 1, "lstm")
            for n in future_steps)))
    series.append(LatencySeries(
        label="hebbian-1t", xs=future_steps,
        latencies_us=tuple(model.inference_us(hebbian_inference_ops(hebb_cfg, n), 1, "hebbian")
                           for n in future_steps)))
    return series


def training_panel(model: LatencyModel = DEFAULT_LATENCY_MODEL,
                   batch_sizes: tuple[int, ...] = BATCH_SIZES
                   ) -> list[LatencySeries]:
    """Figure 2b: per-example training latency vs batch size."""
    lstm_cfg = paper_lstm_config()
    hebb_cfg = paper_hebbian_config()

    def per_example(ops_fn: Callable[[int], OpCount], family: str,
                    threads: int) -> tuple[float, ...]:
        out = []
        for b in batch_sizes:
            total = model.training_us(ops_fn(b), threads=threads, family=family,
                                      batch_size=b)
            out.append(total / b)
        return tuple(out)

    return [
        LatencySeries("lstm-train-1t", batch_sizes,
                      per_example(lambda b: lstm_training_ops(lstm_cfg, b), "lstm", 1)),
        LatencySeries("lstm-train-2t", batch_sizes,
                      per_example(lambda b: lstm_training_ops(lstm_cfg, b), "lstm", 2)),
        LatencySeries("hebbian-train-1t", batch_sizes,
                      per_example(lambda b: hebbian_training_ops(hebb_cfg, b), "hebbian", 1)),
    ]
