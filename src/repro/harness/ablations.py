"""Ablations over the §5 research-agenda design choices (A1-A6 in DESIGN.md).

Each function runs one controlled comparison and returns plain row dicts;
the corresponding benchmark prints them.  These are the measurable
versions of the paper's open questions:

- A1 training-instance sampling (§5.1)
- A2 prefetch length/width vs timeliness (§5.2)
- A3 input encodings, incl. the memcached/cachebench negative result (§5.3)
- A4 replay storage/selection variants (§5.4)
- A5 availability protocol + weight-noise robustness (§5.5)
- A6 Hebbian sparsity sweep (§3.1's efficiency knobs)
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import Any

import numpy as np

from ..core.availability import weight_noise_robustness
from ..core.cls_prefetcher import CLSPrefetcher, CLSPrefetcherConfig
from ..seeding import spawn_seeds
from ..memsim.prefetcher import NullPrefetcher
from ..memsim.simulator import SimConfig, baseline_misses, simulate
from ..nn.costs import hebbian_inference_ops, hebbian_parameter_count
from ..nn.hebbian import HebbianConfig, SparseHebbianNetwork
from ..patterns.applications import AppSpec
from ..patterns.generators import PatternSpec, pointer_chase, stride
from ..patterns.trace import Trace, interleave
from .interference import InterferenceConfig, run_interference
from .models import (
    experiment_hebbian,
    experiment_hebbian_config,
    experiment_lstm,
)
from .runner import run_grid
from .trace_cache import materialize

VOCAB = 192


def _hebbian_cls(seed: int = 0, **overrides: Any) -> CLSPrefetcher:
    config = CLSPrefetcherConfig(
        model="hebbian",
        vocab_size=VOCAB,
        hebbian=experiment_hebbian_config(VOCAB, seed),
        seed=seed,
        **overrides,
    )
    return CLSPrefetcher(config)


# ----------------------------------------------------------------------
# A1: training-instance sampling (§5.1)
# ----------------------------------------------------------------------
def _sampling_cell(spec: dict) -> dict:
    trace = materialize("resnet", AppSpec(n=spec["n_accesses"],
                                          seed=spec["seed"]))
    sim_cfg = SimConfig(memory_fraction=0.5)
    baseline = baseline_misses(trace, sim_cfg)
    prefetcher = _hebbian_cls(seed=spec["seed"], training=spec["policy"],
                              training_kwargs=spec["policy_kwargs"],
                              observe_hits=True)
    run = simulate(trace, prefetcher, sim_cfg)
    policy = prefetcher.training_policy
    return {
        "policy": policy.name,
        "trained_steps": policy.trained,
        "considered": policy.considered,
        "train_fraction": policy.trained / max(1, policy.considered),
        "misses_removed_pct": run.percent_misses_removed(baseline),
    }


def ablation_sampling(n_accesses: int = 15_000, seed: int = 0,
                      jobs: int | None = None,
                      cache_dir: str | Path | None = None,
                      trace_cache_dir: str | Path | None = None) -> list[dict]:
    # resnet's regular stream + demand-stream observation keep the input
    # distribution stationary, so model confidence saturates on learned
    # transitions and the confidence-filtered policy has real skips to make
    # (under miss-only observation, prefetch feedback keeps confidence low
    # everywhere and the filter degenerates to train-always).
    policies = [
        ("always", {}),
        ("every_k", {"k": 4}),
        ("random", {"probability": 0.25, "seed": seed}),
        ("confidence", {"skip_above": 0.9}),
    ]
    specs = [{"kind": "ablation_sampling", "n_accesses": n_accesses,
              "seed": seed, "policy": kind, "policy_kwargs": kwargs}
             for kind, kwargs in policies]
    return run_grid(specs, _sampling_cell, jobs=jobs, cache_dir=cache_dir,
                    trace_cache_dir=trace_cache_dir)


# ----------------------------------------------------------------------
# A2: prefetch length/width and timeliness (§5.2)
# ----------------------------------------------------------------------
def _length_width_cell(spec: dict) -> dict:
    trace = pointer_chase(PatternSpec(n=spec["n_accesses"], working_set=400,
                                      element_size=4096, seed=spec["seed"]))
    sim_cfg = SimConfig(memory_fraction=0.5,
                        prefetch_delay_accesses=spec["delay_accesses"])
    baseline = baseline_misses(trace, sim_cfg)
    prefetcher = _hebbian_cls(seed=spec["seed"],
                              prefetch_length=spec["length"],
                              prefetch_width=spec["width"])
    run = simulate(trace, prefetcher, sim_cfg)
    return {
        "delay_accesses": spec["delay_accesses"],
        "length": spec["length"],
        "width": spec["width"],
        "misses_removed_pct": run.percent_misses_removed(baseline),
        "prefetch_accuracy": run.stats.prefetch_accuracy,
    }


def ablation_length_width(n_accesses: int = 12_000, seed: int = 0,
                          lengths: tuple[int, ...] = (1, 2, 4),
                          widths: tuple[int, ...] = (1, 2, 4),
                          delays: tuple[int, ...] = (0, 4),
                          jobs: int | None = None,
                          cache_dir: str | Path | None = None) -> list[dict]:
    specs = [{"kind": "ablation_length_width", "n_accesses": n_accesses,
              "seed": seed, "delay_accesses": delay, "length": length,
              "width": width}
             for delay in delays for length in lengths for width in widths]
    return run_grid(specs, _length_width_cell, jobs=jobs, cache_dir=cache_dir)


def ablation_prediction_mode(n_accesses: int = 8_000, seed: int = 5,
                             delays: tuple[int, ...] = (0, 6),
                             jobs: int | None = None,
                             cache_dir: str | Path | None = None) -> list[dict]:
    """§5.2's two ways to predict L steps ahead, under landing delay.

    Rollout re-feeds the model its own prediction L times (L inferences,
    compounding error, horizon limited by inference cost); direct lag-L
    training predicts the miss L steps ahead in ONE inference.  With
    prefetch chaining (also triggering on hits), direct mode's coverage
    becomes delay-immune up to L.
    """
    configs = [
        ("rollout L=4", dict(prediction_mode="rollout", prefetch_length=4)),
        ("direct L=6", dict(prediction_mode="direct", prefetch_length=6)),
        ("direct L=6 + chain", dict(prediction_mode="direct", prefetch_length=6,
                                    observe_hits=True, trigger_on_hits=True)),
    ]
    specs = [{"kind": "ablation_prediction_mode", "n_accesses": n_accesses,
              "seed": seed, "delay_accesses": delay, "mode": label,
              "overrides": overrides}
             for delay in delays for label, overrides in configs]
    return run_grid(specs, _prediction_mode_cell, jobs=jobs,
                    cache_dir=cache_dir)


def _prediction_mode_cell(spec: dict) -> dict:
    trace = pointer_chase(PatternSpec(n=spec["n_accesses"], working_set=300,
                                      element_size=4096, seed=spec["seed"]))
    sim_cfg = SimConfig(memory_fraction=0.5,
                        prefetch_delay_accesses=spec["delay_accesses"])
    baseline = baseline_misses(trace, sim_cfg)
    overrides = spec["overrides"]
    prefetcher = CLSPrefetcher(CLSPrefetcherConfig(
        model="hebbian", vocab_size=512, encoder="page",
        hebbian=experiment_hebbian_config(512, spec["seed"]),
        prefetch_width=2, min_confidence=0.25, seed=spec["seed"],
        **overrides))
    run = simulate(trace, prefetcher, sim_cfg)
    inferences_per_trigger = (overrides["prefetch_length"]
                              if overrides["prediction_mode"] == "rollout"
                              else 1)
    return {
        "delay_accesses": spec["delay_accesses"],
        "mode": spec["mode"],
        "misses_removed_pct": run.percent_misses_removed(baseline),
        "prefetch_accuracy": run.stats.prefetch_accuracy,
        "inferences_per_trigger": inferences_per_trigger,
    }


# ----------------------------------------------------------------------
# A3: input encodings (§5.3)
# ----------------------------------------------------------------------
def _interleaved_strides(n_accesses: int, seed: int) -> Trace:
    """One thread walking two independent arrays: interleaved strided
    streams whose combined delta sequence is cross-structure garbage."""
    half = n_accesses // 2
    seed_a, seed_b, seed_mix = spawn_seeds(seed, 3)
    a = stride(PatternSpec(n=half, working_set=300, element_size=4096,
                           base=0x1000_0000, seed=seed_a))
    b = stride(PatternSpec(n=half, working_set=300, element_size=4096,
                           base=0x8000_0000, seed=seed_b), stride_elements=2)
    return interleave([a, b], seed=seed_mix, name="interleaved_strides")


def _encoding_workload(name: str, n_accesses: int, seed: int) -> Trace:
    if name == "pointer_chase":
        return pointer_chase(PatternSpec(n=n_accesses, working_set=300,
                                         element_size=4096, seed=seed))
    if name == "interleaved_strides":
        return _interleaved_strides(n_accesses, seed)
    if name == "graph500":
        # graph500 needs several whole BFS passes to become learnable
        return materialize("graph500", AppSpec(n=2 * n_accesses, seed=seed))
    return materialize(name, AppSpec(n=n_accesses, seed=seed))


def _encoding_cell(spec: dict) -> dict:
    name = spec["workload"]
    trace = _encoding_workload(name, spec["n_accesses"], spec["seed"])
    sim_cfg = SimConfig(memory_fraction=0.5)
    baseline = baseline_misses(trace, sim_cfg)
    # the interleaved case needs demand-stream observation so the
    # encoders see the structure interleaving, not its miss shadow
    observe_hits = name == "interleaved_strides"
    prefetcher = _hebbian_cls(seed=spec["seed"], encoder=spec["encoder"],
                              prefetch_length=2, prefetch_width=2,
                              min_confidence=0.25,
                              observe_hits=observe_hits)
    run = simulate(trace, prefetcher, sim_cfg)
    return {
        "workload": name,
        "encoder": spec["encoder"],
        "misses_removed_pct": run.percent_misses_removed(baseline),
        "prefetch_accuracy": run.stats.prefetch_accuracy,
    }


def ablation_encoding(n_accesses: int = 12_000, seed: int = 0,
                      jobs: int | None = None,
                      cache_dir: str | Path | None = None,
                      trace_cache_dir: str | Path | None = None) -> list[dict]:
    workloads = ("pointer_chase", "interleaved_strides", "graph500",
                 "memcached", "cachebench")
    specs = [{"kind": "ablation_encoding", "n_accesses": n_accesses,
              "seed": seed, "workload": name, "encoder": encoder}
             for name in workloads
             for encoder in ("delta", "page", "region")]
    return run_grid(specs, _encoding_cell, jobs=jobs, cache_dir=cache_dir,
                    trace_cache_dir=trace_cache_dir)


# ----------------------------------------------------------------------
# A10: adaptation speed after a phase switch
# ----------------------------------------------------------------------
def ablation_adaptation(n_per_phase: int = 3_000, window: int = 600,
                        seed: int = 0) -> list[dict]:
    """How fast each learner recovers when the access pattern changes.

    The paper's motivation (§1): "a prefetcher's ability to adapt to new
    access patterns as they emerge is becoming more crucial than ever."
    We switch from one pointer structure to a different one mid-trace and
    measure windowed miss removal after the switch.  The hippocampal
    recall path (A8) is the one-shot mechanism built for exactly this.
    """
    phase_a = pointer_chase(PatternSpec(n=n_per_phase, working_set=250,
                                        element_size=4096, seed=seed))
    phase_b = pointer_chase(PatternSpec(n=n_per_phase, working_set=250,
                                        element_size=4096,
                                        base=0x9000_0000,
                                        seed=spawn_seeds(seed, 1)[0]))
    trace = phase_a.concat(phase_b)
    # memory must be smaller than one phase's working set (250 pages of the
    # 500-page total) or the new phase simply fits and nothing misses
    sim_cfg = SimConfig(memory_fraction=0.3)
    baseline = simulate(trace, NullPrefetcher(), sim_cfg,
                        record_miss_indices=True)

    def windowed_misses(indices: list[int]) -> list[int]:
        counts = []
        for start in range(n_per_phase, 2 * n_per_phase, window):
            counts.append(sum(1 for i in indices if start <= i < start + window))
        return counts

    base_windows = windowed_misses(baseline.miss_indices)

    contenders = {
        "hebbian": dict(model="hebbian"),
        "hebbian+recall": dict(model="hebbian", recall=True),
        "lstm": dict(model="lstm"),
    }
    rows = []
    for label, overrides in contenders.items():
        model = overrides.pop("model")
        if model == "hebbian":
            extra = {"hebbian": experiment_hebbian_config(512, seed)}
        else:
            from .models import experiment_lstm_config
            extra = {"lstm": experiment_lstm_config(512, seed)}
        prefetcher = CLSPrefetcher(CLSPrefetcherConfig(
            model=model, vocab_size=512, encoder="page",
            prefetch_length=2, prefetch_width=2, min_confidence=0.25,
            seed=seed, **extra, **overrides))
        run = simulate(trace, prefetcher, sim_cfg, record_miss_indices=True)
        for w_index, (base_count, run_count) in enumerate(
                zip(base_windows, windowed_misses(run.miss_indices))):
            removed = (100.0 * (base_count - run_count) / base_count
                       if base_count else 0.0)
            rows.append({"model": label, "window": w_index,
                         "misses_removed_pct": removed})
    return rows


# ----------------------------------------------------------------------
# A4: replay variants (§5.4)
# ----------------------------------------------------------------------
def ablation_replay(seed: int = 0) -> list[dict]:
    config = InterferenceConfig(probe_len=80, probe_every=1000, seed=seed)
    variants: list[tuple[str | None, dict]] = [
        (None, {}),
        ("full", {}),
        ("ring", {"capacity": 128}),
        ("confidence", {"confidence_threshold": 0.9}),
        ("prototype", {}),
        ("consolidating", {"consolidated_above": 0.9}),
        ("generative", {"min_confidence": 0.5, "rollout_length": 4}),
    ]
    rows = []
    for kind, kwargs in variants:
        cfg = replace(config, replay_policy=kind or "full", replay_kwargs=kwargs)
        run = run_interference(
            lambda v: experiment_lstm(v, seed=seed),
            "stride", "pointer_chase",
            replay=kind is not None,
            config=cfg,
        )
        rows.append({
            "replay": kind or "none",
            "conf_A_before": run.summary.conf_a_before,
            "conf_A_after": run.summary.conf_a_after,
            "conf_B_after": run.summary.conf_b_after,
            "forgetting": run.summary.forgetting,
            "replayed_pairs": run.replayed_pairs,
        })
    return rows


# ----------------------------------------------------------------------
# A5: availability (§5.5)
# ----------------------------------------------------------------------
def _availability_cell(spec: dict) -> dict:
    trace = materialize("mcf", AppSpec(n=spec["n_accesses"],
                                       seed=spec["seed"]))
    sim_cfg = SimConfig(memory_fraction=0.5)
    baseline = baseline_misses(trace, sim_cfg)
    availability = spec["availability"]
    prefetcher = _hebbian_cls(seed=spec["seed"], availability=availability)
    run = simulate(trace, prefetcher, sim_cfg)
    return {
        "protocol": "shadow-copy" if availability else "train-in-place",
        "misses_removed_pct": run.percent_misses_removed(baseline),
        "redeploys": prefetcher.stats.redeploys,
    }


def ablation_availability(n_accesses: int = 12_000, seed: int = 0,
                          jobs: int | None = None,
                          cache_dir: str | Path | None = None,
                          trace_cache_dir: str | Path | None = None,
                          ) -> list[dict]:
    specs = [{"kind": "ablation_availability", "n_accesses": n_accesses,
              "seed": seed, "availability": availability}
             for availability in (False, True)]
    return run_grid(specs, _availability_cell, jobs=jobs, cache_dir=cache_dir,
                    trace_cache_dir=trace_cache_dir)


def ablation_noise_robustness(seed: int = 0) -> list[dict]:
    """§5.5's conjecture: small weight perturbations barely move outputs."""
    cycle = list(np.random.default_rng(seed).permutation(40)) * 25
    rows = []
    for family, model in (("hebbian", experiment_hebbian(64, seed)),
                          ("lstm", experiment_lstm(64, seed))):
        for class_id in cycle:
            model.step(int(class_id) % 64, train=True)
        probe = [int(c) % 64 for c in cycle[:80]]
        curve = weight_noise_robustness(model, probe, seed=seed)
        for sigma, confidence in curve.items():
            rows.append({"model": family, "sigma": sigma, "confidence": confidence})
    return rows


# ----------------------------------------------------------------------
# A6: Hebbian sparsity sweep (§3.1)
# ----------------------------------------------------------------------
def _sparsity_cell(spec: dict) -> dict:
    seed, conn, act = spec["seed"], spec["connectivity"], spec["activation"]
    rng = np.random.default_rng(seed)
    cycle = [int(c) for c in rng.permutation(60)] * 12
    probe = cycle[:120]
    # stationary sequence learning: use the HebbianConfig defaults
    # (the deployment-tuned experiment config trades learning speed
    # for inertia, which is off-topic for this sweep)
    cfg = HebbianConfig(vocab_size=128, hidden_dim=500,
                        connectivity_in=conn, connectivity_out=conn,
                        connectivity_rec=0.017,
                        activation_fraction=act, seed=seed)
    model = SparseHebbianNetwork(cfg)
    for class_id in cycle:
        model.step(class_id, train=True)
    ops = hebbian_inference_ops(cfg)
    return {
        "connectivity": conn,
        "activation": act,
        "confidence": model.evaluate_sequence(probe),
        "parameters": hebbian_parameter_count(cfg),
        "inference_int_ops": ops.int_ops,
    }


def ablation_sparsity(seed: int = 0,
                      connectivities: tuple[float, ...] = (0.05, 0.125, 0.25),
                      activations: tuple[float, ...] = (0.05, 0.10, 0.25),
                      jobs: int | None = None,
                      cache_dir: str | Path | None = None) -> list[dict]:
    specs = [{"kind": "ablation_sparsity", "seed": seed,
              "connectivity": conn, "activation": act}
             for conn in connectivities for act in activations]
    return run_grid(specs, _sparsity_cell, jobs=jobs, cache_dir=cache_dir)
