"""Seed-sweep variance for the headline comparison.

Single-seed results can flatter either model; this driver reruns the
Figure 5 protocol across seeds (new traces *and* new weight
initializations per seed) and reports mean +- std per (application,
model), so the comparability claim is a distribution statement rather
than a point estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .fig5 import Fig5Config, run_fig5


@dataclass(frozen=True)
class VarianceRow:
    """Mean/std of % misses removed across seeds."""

    application: str
    model: str
    mean: float
    std: float
    per_seed: tuple[float, ...]

    @property
    def worst(self) -> float:
        return min(self.per_seed)


def fig5_seed_sweep(seeds: tuple[int, ...] = (0, 1, 2),
                    config: Fig5Config = Fig5Config(n_accesses=10_000),
                    models: tuple[str, ...] = ("hebbian", "lstm")
                    ) -> list[VarianceRow]:
    """Run Figure 5 once per seed; aggregate % misses removed."""
    if not seeds:
        raise ValueError("need at least one seed")
    samples: dict[tuple[str, str], list[float]] = {}
    for seed in seeds:
        result = run_fig5(replace(config, seed=seed), models=models)
        for row in result.rows:
            key = (row.trace_name, row.prefetcher_name)
            samples.setdefault(key, []).append(row.percent_misses_removed)

    rows = []
    for (application, model), values in sorted(samples.items()):
        arr = np.asarray(values)
        rows.append(VarianceRow(
            application=application,
            model=model,
            mean=float(arr.mean()),
            std=float(arr.std()),
            per_seed=tuple(float(v) for v in arr),
        ))
    return rows
