"""Seed-sweep variance for the headline comparison.

Single-seed results can flatter either model; this driver reruns the
Figure 5 protocol across seeds (new traces *and* new weight
initializations per seed) and reports mean +- std per (application,
model), so the comparability claim is a distribution statement rather
than a point estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from .fig5 import Fig5Config, fig5_cell, fig5_cell_spec
from .runner import run_grid


@dataclass(frozen=True)
class VarianceRow:
    """Mean/std of % misses removed across seeds."""

    application: str
    model: str
    mean: float
    std: float
    per_seed: tuple[float, ...]

    @property
    def worst(self) -> float:
        return min(self.per_seed)


def fig5_seed_sweep(seeds: tuple[int, ...] = (0, 1, 2),
                    config: Fig5Config = Fig5Config(n_accesses=10_000),
                    models: tuple[str, ...] = ("hebbian", "lstm"),
                    jobs: int | None = None,
                    cache_dir: str | Path | None = None,
                    trace_cache_dir: str | Path | None = None,
                    telemetry_dir: str | Path | None = None,
                    telemetry_interval: int | None = None,
                    backend: str = "auto",
                    ) -> list[VarianceRow]:
    """Run Figure 5 once per seed; aggregate % misses removed.

    The whole seed × app × model cube is one flat grid, so ``jobs``
    parallelizes across seeds as well as cells, ``cache_dir`` reuses
    bars shared with previous ``run_fig5`` invocations, and
    ``trace_cache_dir`` shares each seed's materialized traces between
    that seed's hebbian and lstm cells (and any other harness).
    """
    if not seeds:
        raise ValueError("need at least one seed")
    specs = [fig5_cell_spec(app, model, replace(config, seed=seed))
             for seed in seeds
             for app in config.applications
             for model in models]
    rows = run_grid(specs, fig5_cell, jobs=jobs, cache_dir=cache_dir,
                    trace_cache_dir=trace_cache_dir,
                    telemetry_dir=telemetry_dir,
                    telemetry_interval=telemetry_interval,
                    backend=backend)
    samples: dict[tuple[str, str], list[float]] = {}
    for row in rows:
        key = (row["trace_name"], row["prefetcher_name"])
        baseline = row["misses_baseline"]
        removed = (100.0 * (baseline - row["misses_with_prefetch"]) / baseline
                   if baseline else 0.0)
        samples.setdefault(key, []).append(removed)

    rows = []
    for (application, model), values in sorted(samples.items()):
        arr = np.asarray(values)
        rows.append(VarianceRow(
            application=application,
            model=model,
            mean=float(arr.mean()),
            std=float(arr.std()),
            per_seed=tuple(float(v) for v in arr),
        ))
    return rows
