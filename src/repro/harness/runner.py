"""Parallel, cached experiment runner.

Every figure/ablation in this repository is a *grid*: a list of
independent cells (trace spec × prefetcher config × sim config × seed),
each mapping deterministically to a small JSON-serializable result row.
``run_grid`` executes such a grid with two orthogonal accelerations:

- **Process parallelism** — cells fan out across a
  :class:`~concurrent.futures.ProcessPoolExecutor` (``jobs`` workers).
  Cells are pure functions of their spec, so results are identical to a
  serial run regardless of scheduling.
- **On-disk memoization** — with ``cache_dir`` set, each cell's result is
  stored in ``<cache_dir>/<sha256(spec)>.json`` and served from disk on
  the next invocation.  The key hashes the *entire canonical spec* (plus
  ``CACHE_VERSION``), so changing any knob — trace length, seed, model
  config, sim config — invalidates exactly the affected cells.  Changing
  code does **not** invalidate the cache; bump :data:`CACHE_VERSION` when
  a semantic change makes old results stale, or delete the directory.

Cell functions must be module-level (picklable) and take a single JSON
dict; specs must be JSON-serializable (tuples become lists).
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import tempfile
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any

#: Bump when a code change invalidates previously cached results.
CACHE_VERSION = 1


def resolve_jobs(jobs: int | None, n_cells: int) -> int:
    """Resolve a ``jobs`` argument to an effective worker count.

    ``None`` auto-detects: one worker per *available* core — the
    process's CPU affinity mask where the platform exposes it
    (``sched_getaffinity``; containers and batch schedulers routinely
    restrict it well below ``os.cpu_count()``), the total core count
    otherwise — capped at the number of cells (a pool larger than the
    grid only adds spawn cost).  Explicit values are likewise capped at
    ``n_cells``.  Anything that resolves to fewer than two workers means
    "run serially" — on a single-core machine process fan-out is pure
    IPC overhead (measured 0.85x in BENCH_PR1.json), so auto-detection
    deliberately falls back to the in-process loop there.
    """
    if jobs is None:
        try:
            jobs = len(os.sched_getaffinity(0))
        except (AttributeError, OSError):
            jobs = os.cpu_count() or 1
    return max(1, min(jobs, n_cells))


class SpecError(TypeError):
    """A cell spec contains a value with no canonical JSON form.

    Raised instead of silently falling back to ``str()`` (or to json's
    non-canonical NaN handling): an unstable serialization would let two
    distinct cells share a cache key — or one cell take a fresh key every
    run — and the disk cache would quietly serve wrong results.
    """


def canonicalize_spec(spec: Any, _path: str = "spec") -> Any:
    """Validate + normalize a spec to its canonical JSON-ready form.

    Allowed values: ``str``/``bool``/``int``/finite ``float``/``None``,
    lists/tuples of allowed values (tuples normalize to lists, matching
    what a JSON round-trip produces), and string-keyed dicts of allowed
    values.  Anything else — numpy scalars, arrays, NaN/inf, callables,
    sets, non-string keys — raises :class:`SpecError` naming the exact
    offending field.
    """
    if spec is None or isinstance(spec, (str, bool, int)):
        return spec
    if isinstance(spec, float):
        if not math.isfinite(spec):
            raise SpecError(f"{_path} is {spec!r}: NaN/inf have no canonical "
                            "JSON form and would poison the cache key")
        return spec
    if isinstance(spec, (list, tuple)):
        return [canonicalize_spec(v, f"{_path}[{i}]") for i, v in enumerate(spec)]
    if isinstance(spec, dict):
        out: dict[str, Any] = {}
        for key, value in spec.items():
            if not isinstance(key, str):
                raise SpecError(f"{_path} has non-string key {key!r} "
                                f"({type(key).__name__}); JSON object keys "
                                "must be str")
            out[key] = canonicalize_spec(value, f"{_path}[{key!r}]")
        return out
    raise SpecError(f"{_path} is not JSON-serializable "
                    f"({type(spec).__name__}: {spec!r}); use "
                    "int/float/str/bool/None, lists/tuples, or "
                    "str-keyed dicts (numpy scalars: call .item() first)")


def spec_key(spec: dict) -> str:
    """Stable content hash of a cell spec (includes ``CACHE_VERSION``).

    Keys are canonical: dict insertion order, tuple-vs-list, and dict-key
    order never change the hash, and non-JSON values are rejected loudly
    (see :class:`SpecError`) so the runtime and repro-lint's RL005 agree
    on what may live in a spec.
    """
    canonical = json.dumps(
        {"cache_version": CACHE_VERSION, "spec": canonicalize_spec(spec)},
        sort_keys=True, separators=(",", ":"), allow_nan=False)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _cache_load(path: Path, spec: dict) -> Any:
    """Load a cached result, verifying the stored spec is the one asked for.

    The filename hash should make a mismatch impossible, but a hash
    collision, a foreign file dropped into the cache directory, or a
    stale file from a buggy writer would silently serve a wrong result
    for the lifetime of the cache — so the stored canonical spec is
    compared against the requested one and any mismatch is treated as a
    miss (the cell recomputes and overwrites).
    """
    try:
        with path.open("r", encoding="utf-8") as fh:
            payload = json.load(fh)
        stored_spec = payload["spec"]
        result = payload["result"]
    except (OSError, ValueError, KeyError):
        return None
    if stored_spec != canonicalize_spec(spec):
        return None
    return result


def _cache_store(path: Path, spec: dict, result: Any) -> None:
    """Atomic write (tmp + rename) so concurrent runs never see torn files."""
    payload = json.dumps({"spec": canonicalize_spec(spec), "result": result},
                         sort_keys=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(payload)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def _init_worker(trace_cache_dir: str | None,
                 telemetry_dir: str | None,
                 telemetry_interval: int | None,
                 backend: str = "auto") -> None:
    """ProcessPoolExecutor initializer: re-establish per-process module
    state (trace cache, telemetry sink directory, kernel backend) that
    does not survive the fork/spawn."""
    if trace_cache_dir is not None:
        from . import trace_cache

        trace_cache.configure(trace_cache_dir)
    if telemetry_dir is not None:
        from .. import telemetry

        telemetry.configure(telemetry_dir, telemetry_interval)
    if backend != "auto":
        from ..nn import backends

        backends.set_default_backend(backend)


def run_grid(specs: Sequence[dict], fn: Callable[[dict], object],
             jobs: int | None = None,
             cache_dir: str | Path | None = None,
             trace_cache_dir: str | Path | None = None,
             telemetry_dir: str | Path | None = None,
             telemetry_interval: int | None = None,
             backend: str = "auto") -> list[Any]:
    """Run ``fn(spec)`` for every spec; return results in spec order.

    Args:
        specs: JSON-serializable cell descriptions.  Duplicate specs are
            computed once and fanned back out.
        fn: Module-level cell function (pickled to workers when
            ``jobs > 1``).
        jobs: Worker processes.  ``None`` auto-detects from
            ``os.cpu_count()``; see :func:`resolve_jobs`.  ``0``/``1``
            (or a grid with a single uncached cell) runs serially
            in-process.
        cache_dir: Directory for the JSON result cache (created on
            demand).  ``None`` disables caching.
        trace_cache_dir: Directory for the shared trace-materialization
            cache (see ``harness.trace_cache``).  Configured in every
            worker process (or bracketed around the serial loop) for the
            duration of the grid; ``None`` leaves trace generation
            uncached.
        telemetry_dir: Directory telemetry-aware cells write per-run
            JSONL into (see ``repro.telemetry``).  Plumbed the same way
            as ``trace_cache_dir`` — per-process module state, never part
            of the cell spec, so observed and unobserved grids share
            result-cache entries.  Cells served from the result cache do
            not re-run and therefore write no telemetry.
        telemetry_interval: Window interval for those sinks (``None``
            keeps the telemetry package default).
        backend: Kernel backend every cell's ``"auto"`` resolves to
            (see ``repro.nn.backends``).  Plumbed as per-process ambient
            state, never into the cell specs: backends are bit-identical
            by contract, so the same spec maps to the same cache entry
            regardless of which backend computed it.  ``"auto"`` keeps
            availability-based selection.
    """
    from ..nn import backends

    if backend != "auto":
        # Fail in the caller, not inside a pool worker.
        backends.resolve_backend(backend)
    specs = list(specs)
    keys = [spec_key(spec) for spec in specs]
    results: dict[str, object] = {}

    cache_path = None
    if cache_dir is not None:
        cache_path = Path(cache_dir)
        if cache_path.exists() and not cache_path.is_dir():
            raise ValueError(f"cache_dir {cache_path} exists and is not "
                             "a directory")
        cache_path.mkdir(parents=True, exist_ok=True)
        for key, spec in zip(keys, specs):
            if key in results:
                continue
            cached = _cache_load(cache_path / f"{key}.json", spec)
            if cached is not None:
                results[key] = cached

    pending: list[tuple[str, dict]] = []
    seen = set(results)
    for key, spec in zip(keys, specs):
        if key not in seen:
            seen.add(key)
            pending.append((key, spec))

    if pending:
        workers = resolve_jobs(jobs, len(pending))
        needs_state = (trace_cache_dir is not None
                       or telemetry_dir is not None
                       or backend != "auto")
        if workers > 1:
            if needs_state:
                pool = ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_init_worker,
                    initargs=(
                        str(trace_cache_dir)
                        if trace_cache_dir is not None else None,
                        str(telemetry_dir)
                        if telemetry_dir is not None else None,
                        telemetry_interval,
                        backend,
                    ))
            else:
                pool = ProcessPoolExecutor(max_workers=workers)
            with pool:
                futures = [(key, spec, pool.submit(fn, spec))
                           for key, spec in pending]
                computed = [(key, spec, future.result())
                            for key, spec, future in futures]
        elif needs_state:
            from . import trace_cache
            from .. import telemetry

            prev_trace = (trace_cache.configure(trace_cache_dir)
                          if trace_cache_dir is not None else None)
            prev_telemetry = (telemetry.configure(telemetry_dir,
                                                  telemetry_interval)
                              if telemetry_dir is not None else None)
            prev_backend = backends.get_default_backend()
            if backend != "auto":
                backends.set_default_backend(backend)
            try:
                computed = [(key, spec, fn(spec)) for key, spec in pending]
            finally:
                if trace_cache_dir is not None:
                    trace_cache.configure(prev_trace)
                if telemetry_dir is not None:
                    telemetry.configure(prev_telemetry)
                if backend != "auto":
                    backends.set_default_backend(prev_backend)
        else:
            computed = [(key, spec, fn(spec)) for key, spec in pending]
        for key, spec, result in computed:
            results[key] = result
            if cache_path is not None:
                _cache_store(cache_path / f"{key}.json", spec, result)

    return [results[key] for key in keys]
