"""Shard scheduler and telemetry rollups for fleet simulation.

:func:`run_fleet` packs an arbitrary number of tenant lanes — each an
independent (trace, prefetcher, config) stream — into vectorized
:class:`~repro.memsim.fleet.FleetCohort` shards:

- Lanes are **grouped by their (hashable) ``SimConfig``** so every
  cohort is homogeneous in page size, delay and capacity policy; cohort
  dimensions are sized over the group once.
- Each group runs through a **fixed-width cohort** (``max_width`` slots)
  with drain-and-refill: a finished lane's result is harvested and its
  slot immediately reloaded from the pending queue, so the batched loop
  stays full until the tail.
- The scheduler records a **per-lane latency proxy** — wall-clock from a
  lane's load to the step on which it finished (step-boundary
  resolution; lanes share every step's work, so this measures fleet
  residency, not isolated lane cost) — and aggregate events/sec.

Rollups flow out three ways: the returned :class:`FleetReport`, optional
:class:`~repro.telemetry.Telemetry` counters/timers on a caller-provided
sink, and a JSONL manifest (:func:`write_fleet_manifest`) with one
aggregate record plus one per-tenant record.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from ..memsim.fleet import FleetCohort, FleetLaneSpec
from ..memsim.simulator import SimConfig, SimResult
from ..telemetry import Telemetry
from ..telemetry.manifest import SCHEMA_VERSION, environment
from .runner import _init_worker, resolve_jobs

__all__ = ["FleetJobsReport", "FleetReport", "LaneOutcome",
           "materialize_lane_spec", "run_fleet", "run_fleet_jobs",
           "write_fleet_jobs_manifest", "write_fleet_manifest"]


@dataclass(frozen=True)
class LaneOutcome:
    """One tenant lane's result plus its scheduler-side measurements."""

    result: SimResult
    accesses: int
    #: Wall-clock seconds from the lane's load to the step it finished
    #: on.  A *fleet residency* proxy, not an isolated per-lane cost —
    #: every step advances all co-resident lanes.
    wall_time_s: float


@dataclass
class FleetReport:
    """Aggregate outcome of one :func:`run_fleet` invocation."""

    outcomes: list[LaneOutcome] = field(repr=False)
    backend: str
    n_cohorts: int
    wall_time_s: float

    @property
    def n_lanes(self) -> int:
        return len(self.outcomes)

    @property
    def total_accesses(self) -> int:
        return sum(o.accesses for o in self.outcomes)

    @property
    def events_per_sec(self) -> float:
        if self.wall_time_s <= 0:
            return 0.0
        return self.total_accesses / self.wall_time_s

    def lane_latency_percentiles(self) -> tuple[float, float]:
        """(p50, p99) of the per-lane latency proxy, in seconds."""
        if not self.outcomes:
            return (0.0, 0.0)
        latencies = np.array([o.wall_time_s for o in self.outcomes])
        return (float(np.percentile(latencies, 50)),
                float(np.percentile(latencies, 99)))

    def rollup(self) -> dict:
        """JSON-ready aggregate summary (the manifest's headline record)."""
        p50, p99 = self.lane_latency_percentiles()
        return {
            "n_lanes": self.n_lanes,
            "n_cohorts": self.n_cohorts,
            "backend": self.backend,
            "total_accesses": self.total_accesses,
            "wall_time_s": round(self.wall_time_s, 6),
            "events_per_sec": round(self.events_per_sec, 1),
            "lane_latency_p50_s": round(p50, 6),
            "lane_latency_p99_s": round(p99, 6),
        }


def run_fleet(specs: Sequence[FleetLaneSpec], *, backend: str = "auto",
              max_width: int = 256, record_miss_indices: bool = False,
              stacked_cls: bool = True,
              telemetry: Telemetry | None = None) -> FleetReport:
    """Run every lane spec through config-grouped vectorized cohorts.

    Results come back in spec order and are bit-identical to running
    each spec through ``simulate()`` on its own (the fleet engine's
    contract; see ``tests/memsim/test_fleet_engine.py``).

    Args:
        specs: One entry per tenant lane.  Prefetcher instances must not
            be shared between lanes.
        backend: Kernel backend for the fleet walks (as in ``simulate``).
        max_width: Cohort slot count; lanes beyond it queue and refill
            freed slots.  Memory per cohort scales with
            ``width * max_trace_len``.
        record_miss_indices: Keep per-lane miss indices in the results.
        stacked_cls: Let cohorts batch same-config CLS lanes through the
            stacked Hebbian path (``False`` keeps the scalar per-miss
            path; both are bit-identical — this is the zero-regression
            escape hatch).
        telemetry: Optional sink; receives ``fleet_lanes_completed`` /
            ``fleet_accesses`` counters and a ``fleet_wall`` timer.
    """
    if max_width <= 0:
        raise ValueError("max_width must be positive")
    outcomes: list[LaneOutcome | None] = [None] * len(specs)
    # Bucket by config identity first (no dataclass hash per lane — specs
    # overwhelmingly share config instances), then merge equal-but-
    # distinct configs so cohort grouping stays semantic.
    by_id: dict[int, tuple[SimConfig, list[int]]] = {}
    for index, spec in enumerate(specs):
        entry = by_id.get(id(spec.config))
        if entry is None:
            entry = (spec.config, [])
            by_id[id(spec.config)] = entry
        entry[1].append(index)
    groups: dict[SimConfig, list[int]] = {}
    for config, bucket in by_id.values():
        groups.setdefault(config, []).extend(bucket)

    started = time.perf_counter()
    n_cohorts = 0
    backend_used = backend
    for indices in groups.values():
        group = [specs[i] for i in indices]
        cohort = FleetCohort.for_specs(
            group, width=min(len(group), max_width), backend=backend,
            record_miss_indices=record_miss_indices,
            stacked_cls=stacked_cls)
        backend_used = cohort.backend_used
        n_cohorts += 1
        pending = list(zip(indices, group))
        pending.reverse()
        slot_spec: dict[int, int] = {}
        load_at: dict[int, float] = {}

        def refill(slots: list[int]) -> None:
            batch_slots: list[int] = []
            batch_specs: list[FleetLaneSpec] = []
            for slot in slots:
                if not pending:
                    break
                index, spec = pending.pop()
                slot_spec[slot] = index
                batch_slots.append(slot)
                batch_specs.append(spec)
            # One batched load per step: slot-vector writes and cache
            # resets amortize across the refill batch (the per-lane load
            # cost is the fleet's throughput floor at scale).
            cohort.load_many(batch_slots, batch_specs)
            stamp = time.perf_counter()
            for slot in batch_slots:
                load_at[slot] = stamp

        refill(cohort.free_slots())
        while cohort.active_count():
            finished = cohort.step()
            now = time.perf_counter()
            for slot in finished:
                index = slot_spec.pop(slot)
                result = cohort.harvest(slot)
                accesses = len(specs[index].trace)
                outcomes[index] = LaneOutcome(
                    result=result, accesses=accesses,
                    wall_time_s=now - load_at.pop(slot))
                if telemetry is not None:
                    telemetry.counter("fleet_lanes_completed")
                    telemetry.counter("fleet_accesses", accesses)
            if pending and finished:
                refill(finished)
    wall = time.perf_counter() - started
    if telemetry is not None:
        telemetry.timers["fleet_wall"] = (
            telemetry.timers.get("fleet_wall", 0.0) + wall)
    final = [o for o in outcomes if o is not None]
    assert len(final) == len(specs)
    return FleetReport(outcomes=final, backend=backend_used,
                       n_cohorts=n_cohorts, wall_time_s=wall)


def write_fleet_manifest(report: FleetReport,
                         directory: str | Path) -> Path:
    """Write the fleet's JSONL manifest into ``directory``.

    Line 1 is the aggregate ``fleet_manifest`` record (rollup +
    provenance); each following line is one ``fleet_lane`` per-tenant
    record.  Written atomically (tmp + rename), named by a content-free
    timestamp-less scheme: ``fleet-<n_lanes>x-<backend>.jsonl`` —
    reruns of the same shape overwrite.
    """
    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    head = {
        "record": "fleet_manifest",
        "schema_version": SCHEMA_VERSION,
        **report.rollup(),
        "env": environment(),
    }
    lanes = []
    for outcome in report.outcomes:
        result = outcome.result
        lanes.append({
            "record": "fleet_lane",
            "trace": result.trace_name,
            "prefetcher": result.prefetcher_name,
            "capacity_pages": result.capacity_pages,
            "accesses": outcome.accesses,
            "demand_misses": result.stats.demand_misses,
            "prefetch_hits": result.stats.prefetch_hits,
            "wall_time_s": round(outcome.wall_time_s, 6),
        })
    path = out_dir / f"fleet-{report.n_lanes}x-{report.backend}.jsonl"
    fd, tmp = tempfile.mkstemp(dir=out_dir, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            for record in [head, *lanes]:
                fh.write(json.dumps(record, sort_keys=True))
                fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return path


# ----------------------------------------------------------------------
# Cross-process cohort sharding.
#
# Live lane specs (trace arrays, stateful prefetchers) don't cross a
# process boundary cheaply, so the sharded entry point takes
# JSON-serializable *lane jobs* and each worker materializes its shard's
# specs locally — the same recipe the CLI uses, so `repro fleet --jobs N`
# and `--jobs 1` build identical lanes.


@dataclass
class FleetJobsReport:
    """Aggregate outcome of one :func:`run_fleet_jobs` invocation.

    ``lanes`` holds one JSON-ready per-tenant rollup dict per job, in
    job order (each carries the full ``CacheStats`` under ``"stats"``
    plus the scheduler-side ``accesses``/``wall_time_s`` measurements).
    """

    lanes: list[dict] = field(repr=False)
    backend: str
    jobs: int
    n_shards: int
    wall_time_s: float

    @property
    def n_lanes(self) -> int:
        return len(self.lanes)

    @property
    def total_accesses(self) -> int:
        return sum(lane["accesses"] for lane in self.lanes)

    @property
    def events_per_sec(self) -> float:
        if self.wall_time_s <= 0:
            return 0.0
        return self.total_accesses / self.wall_time_s

    def lane_latency_percentiles(self) -> tuple[float, float]:
        """(p50, p99) of the per-lane latency proxy, in seconds."""
        if not self.lanes:
            return (0.0, 0.0)
        latencies = np.array([lane["wall_time_s"] for lane in self.lanes])
        return (float(np.percentile(latencies, 50)),
                float(np.percentile(latencies, 99)))

    def rollup(self) -> dict:
        """JSON-ready aggregate summary (the manifest's headline record)."""
        p50, p99 = self.lane_latency_percentiles()
        return {
            "n_lanes": self.n_lanes,
            "n_shards": self.n_shards,
            "jobs": self.jobs,
            "backend": self.backend,
            "total_accesses": self.total_accesses,
            "wall_time_s": round(self.wall_time_s, 6),
            "events_per_sec": round(self.events_per_sec, 1),
            "lane_latency_p50_s": round(p50, 6),
            "lane_latency_p99_s": round(p99, 6),
        }


def materialize_lane_spec(job: dict, prototypes: dict,
                          backend: str = "auto") -> FleetLaneSpec:
    """Build one live :class:`FleetLaneSpec` from a JSON lane job.

    Job shape::

        {"pattern": str, "n": int, "working_set": int, "seed": int,
         "prefetcher": "none" | "nextline" | "stride" | "markov"
                       | "leap" | "cls-hebbian",
         "sim": {...SimConfig kwargs...},            # optional
         "cls": {"vocab": int, "seed": int}}         # cls-hebbian only

    ``prototypes`` is a caller-held cache keyed by the CLS model recipe:
    same-recipe lanes in a shard clone one prototype, so they share
    fixed structures and memo caches exactly like the CLI's lane
    builder (and land in one stacked cohort group).
    """
    from ..patterns.generators import PatternSpec, generate

    trace = generate(job["pattern"], PatternSpec(
        n=int(job["n"]), working_set=int(job.get("working_set", 200)),
        seed=int(job.get("seed", 0))))
    config = SimConfig(**job.get("sim", {}))
    kind = job.get("prefetcher", "none")
    if kind == "none":
        from ..memsim.prefetcher import NullPrefetcher

        prefetcher: object = NullPrefetcher()
    elif kind == "nextline":
        from ..baselines import NextLinePrefetcher

        prefetcher = NextLinePrefetcher()
    elif kind == "stride":
        from ..baselines import StridePrefetcher

        prefetcher = StridePrefetcher()
    elif kind == "markov":
        from ..baselines import MarkovPrefetcher

        prefetcher = MarkovPrefetcher()
    elif kind == "leap":
        from ..baselines import LeapPrefetcher

        prefetcher = LeapPrefetcher()
    elif kind == "cls-hebbian":
        from ..core.cls_prefetcher import CLSPrefetcher, CLSPrefetcherConfig
        from ..nn.hebbian import SparseHebbianNetwork
        from .models import experiment_hebbian_config

        cls_job = job.get("cls", {})
        vocab = int(cls_job.get("vocab", 256))
        cls_seed = int(cls_job.get("seed", job.get("seed", 0)))
        key = (vocab, cls_seed, backend)
        prototype = prototypes.get(key)
        if prototype is None:
            hebbian_cfg = experiment_hebbian_config(vocab, cls_seed)
            if backend != "auto":
                hebbian_cfg = dataclasses.replace(hebbian_cfg,
                                                  backend=backend)
            prototype = SparseHebbianNetwork(hebbian_cfg)
            prototypes[key] = prototype
        prefetcher = CLSPrefetcher(CLSPrefetcherConfig(
            model="hebbian", vocab_size=vocab,
            hebbian=prototype.config, seed=cls_seed),
            model=prototype.clone())
    else:
        raise ValueError(f"unknown lane-job prefetcher {kind!r}")
    return FleetLaneSpec(trace=trace, prefetcher=prefetcher,  # type: ignore[arg-type]
                         config=config)


def _run_fleet_shard(shard_jobs: list[dict], backend: str, max_width: int,
                     record_miss_indices: bool,
                     stacked_cls: bool) -> dict:
    """One shard's worth of lane jobs, run in-process; returns rollups.

    Module-level so it pickles to pool workers.  The returned dict is
    plain JSON-ready data — per-tenant ``LaneOutcome`` rollups stream
    back over the pool's result pipe, never live simulator objects.
    """
    prototypes: dict = {}
    specs = [materialize_lane_spec(job, prototypes, backend=backend)
             for job in shard_jobs]
    report = run_fleet(specs, backend=backend, max_width=max_width,
                       record_miss_indices=record_miss_indices,
                       stacked_cls=stacked_cls)
    lanes = []
    for outcome in report.outcomes:
        result = outcome.result
        lane = {
            "record": "fleet_lane",
            "trace": result.trace_name,
            "prefetcher": result.prefetcher_name,
            "capacity_pages": result.capacity_pages,
            "accesses": outcome.accesses,
            "demand_misses": result.stats.demand_misses,
            "prefetch_hits": result.stats.prefetch_hits,
            "wall_time_s": round(outcome.wall_time_s, 6),
            "stats": result.stats.as_dict(),
        }
        if record_miss_indices:
            lane["miss_indices"] = list(result.miss_indices)
        lanes.append(lane)
    return {"backend": report.backend, "lanes": lanes}


def run_fleet_jobs(lane_jobs: Sequence[dict], *, jobs: int | None = None,
                   backend: str = "auto", max_width: int = 256,
                   record_miss_indices: bool = False,
                   stacked_cls: bool = True,
                   trace_cache_dir: str | Path | None = None,
                   telemetry_dir: str | Path | None = None,
                   telemetry_interval: int | None = None
                   ) -> FleetJobsReport:
    """Shard lane jobs across worker processes, one cohort run per shard.

    Reuses ``run_grid``'s worker plumbing: :func:`resolve_jobs` picks
    the worker count (CPU-affinity aware; anything under two means run
    serially in-process) and ``_init_worker`` re-establishes each
    worker's ambient state — trace cache, telemetry sink, kernel
    backend — exactly as grid cells get it.  Jobs shard contiguously so
    the flattened per-lane rollups come back in job order; per-shard
    results are bit-identical to a single-process run (each shard is
    just :func:`run_fleet` over its own lanes, and lanes never share
    state).

    Args:
        lane_jobs: JSON-serializable lane descriptions (see
            :func:`materialize_lane_spec` for the shape).
        jobs: Worker processes; ``None`` auto-detects.
        backend: Kernel backend, resolved fail-fast in the caller.
        stacked_cls: As in :func:`run_fleet`.
        trace_cache_dir / telemetry_dir / telemetry_interval: Ambient
            per-process state, plumbed like ``run_grid``.
    """
    from ..nn import backends

    if backend != "auto":
        # Fail in the caller, not inside a pool worker.
        backends.resolve_backend(backend)
    lane_jobs = list(lane_jobs)
    started = time.perf_counter()
    workers = resolve_jobs(jobs, len(lane_jobs)) if lane_jobs else 1
    if workers > 1:
        base, extra = divmod(len(lane_jobs), workers)
        shards: list[list[dict]] = []
        pos = 0
        for index in range(workers):
            size = base + (1 if index < extra else 0)
            if size:
                shards.append(lane_jobs[pos:pos + size])
                pos += size
        pool = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(
                str(trace_cache_dir)
                if trace_cache_dir is not None else None,
                str(telemetry_dir)
                if telemetry_dir is not None else None,
                telemetry_interval,
                backend,
            ))
        with pool:
            futures = [pool.submit(_run_fleet_shard, shard, backend,
                                   max_width, record_miss_indices,
                                   stacked_cls)
                       for shard in shards]
            shard_results = [future.result() for future in futures]
        lanes = [lane for shard_result in shard_results
                 for lane in shard_result["lanes"]]
        backend_used = (shard_results[0]["backend"] if shard_results
                        else backend)
        n_shards = len(shards)
    else:
        # Serial fallback: bracket the ambient state around the loop the
        # same way run_grid's serial path does (backend is passed
        # explicitly to the shard, so only trace cache and telemetry are
        # ambient here).
        from . import trace_cache
        from .. import telemetry as telemetry_mod

        prev_trace = (trace_cache.configure(trace_cache_dir)
                      if trace_cache_dir is not None else None)
        prev_telemetry = (telemetry_mod.configure(telemetry_dir,
                                                  telemetry_interval)
                          if telemetry_dir is not None else None)
        try:
            shard_result = _run_fleet_shard(lane_jobs, backend, max_width,
                                            record_miss_indices,
                                            stacked_cls)
        finally:
            if trace_cache_dir is not None:
                trace_cache.configure(prev_trace)
            if telemetry_dir is not None:
                telemetry_mod.configure(prev_telemetry)
        lanes = shard_result["lanes"]
        backend_used = shard_result["backend"]
        n_shards = 1
    wall = time.perf_counter() - started
    return FleetJobsReport(lanes=lanes, backend=backend_used,
                           jobs=workers, n_shards=n_shards,
                           wall_time_s=wall)


def write_fleet_jobs_manifest(report: FleetJobsReport,
                              directory: str | Path) -> Path:
    """Write a sharded run's single aggregated JSONL manifest.

    Same schema as :func:`write_fleet_manifest` — one
    ``fleet_manifest`` head (rollup grows ``jobs``/``n_shards``) plus
    one ``fleet_lane`` record per tenant, regardless of how many
    processes produced them.  Named
    ``fleet-<n_lanes>x-<jobs>j-<backend>.jsonl``.
    """
    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    head = {
        "record": "fleet_manifest",
        "schema_version": SCHEMA_VERSION,
        **report.rollup(),
        "env": environment(),
    }
    lanes = [{key: value for key, value in lane.items()
              if key not in ("stats", "miss_indices")}
             for lane in report.lanes]
    path = (out_dir / f"fleet-{report.n_lanes}x-{report.jobs}j-"
            f"{report.backend}.jsonl")
    fd, tmp = tempfile.mkstemp(dir=out_dir, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            for record in [head, *lanes]:
                fh.write(json.dumps(record, sort_keys=True))
                fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return path
