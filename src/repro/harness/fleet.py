"""Shard scheduler and telemetry rollups for fleet simulation.

:func:`run_fleet` packs an arbitrary number of tenant lanes — each an
independent (trace, prefetcher, config) stream — into vectorized
:class:`~repro.memsim.fleet.FleetCohort` shards:

- Lanes are **grouped by their (hashable) ``SimConfig``** so every
  cohort is homogeneous in page size, delay and capacity policy; cohort
  dimensions are sized over the group once.
- Each group runs through a **fixed-width cohort** (``max_width`` slots)
  with drain-and-refill: a finished lane's result is harvested and its
  slot immediately reloaded from the pending queue, so the batched loop
  stays full until the tail.
- The scheduler records a **per-lane latency proxy** — wall-clock from a
  lane's load to the step on which it finished (step-boundary
  resolution; lanes share every step's work, so this measures fleet
  residency, not isolated lane cost) — and aggregate events/sec.

Rollups flow out three ways: the returned :class:`FleetReport`, optional
:class:`~repro.telemetry.Telemetry` counters/timers on a caller-provided
sink, and a JSONL manifest (:func:`write_fleet_manifest`) with one
aggregate record plus one per-tenant record.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from ..memsim.fleet import FleetCohort, FleetLaneSpec
from ..memsim.simulator import SimConfig, SimResult
from ..telemetry import Telemetry
from ..telemetry.manifest import SCHEMA_VERSION, environment

__all__ = ["FleetReport", "LaneOutcome", "run_fleet",
           "write_fleet_manifest"]


@dataclass(frozen=True)
class LaneOutcome:
    """One tenant lane's result plus its scheduler-side measurements."""

    result: SimResult
    accesses: int
    #: Wall-clock seconds from the lane's load to the step it finished
    #: on.  A *fleet residency* proxy, not an isolated per-lane cost —
    #: every step advances all co-resident lanes.
    wall_time_s: float


@dataclass
class FleetReport:
    """Aggregate outcome of one :func:`run_fleet` invocation."""

    outcomes: list[LaneOutcome] = field(repr=False)
    backend: str
    n_cohorts: int
    wall_time_s: float

    @property
    def n_lanes(self) -> int:
        return len(self.outcomes)

    @property
    def total_accesses(self) -> int:
        return sum(o.accesses for o in self.outcomes)

    @property
    def events_per_sec(self) -> float:
        if self.wall_time_s <= 0:
            return 0.0
        return self.total_accesses / self.wall_time_s

    def lane_latency_percentiles(self) -> tuple[float, float]:
        """(p50, p99) of the per-lane latency proxy, in seconds."""
        if not self.outcomes:
            return (0.0, 0.0)
        latencies = np.array([o.wall_time_s for o in self.outcomes])
        return (float(np.percentile(latencies, 50)),
                float(np.percentile(latencies, 99)))

    def rollup(self) -> dict:
        """JSON-ready aggregate summary (the manifest's headline record)."""
        p50, p99 = self.lane_latency_percentiles()
        return {
            "n_lanes": self.n_lanes,
            "n_cohorts": self.n_cohorts,
            "backend": self.backend,
            "total_accesses": self.total_accesses,
            "wall_time_s": round(self.wall_time_s, 6),
            "events_per_sec": round(self.events_per_sec, 1),
            "lane_latency_p50_s": round(p50, 6),
            "lane_latency_p99_s": round(p99, 6),
        }


def run_fleet(specs: Sequence[FleetLaneSpec], *, backend: str = "auto",
              max_width: int = 256, record_miss_indices: bool = False,
              telemetry: Telemetry | None = None) -> FleetReport:
    """Run every lane spec through config-grouped vectorized cohorts.

    Results come back in spec order and are bit-identical to running
    each spec through ``simulate()`` on its own (the fleet engine's
    contract; see ``tests/memsim/test_fleet_engine.py``).

    Args:
        specs: One entry per tenant lane.  Prefetcher instances must not
            be shared between lanes.
        backend: Kernel backend for the fleet walks (as in ``simulate``).
        max_width: Cohort slot count; lanes beyond it queue and refill
            freed slots.  Memory per cohort scales with
            ``width * max_trace_len``.
        record_miss_indices: Keep per-lane miss indices in the results.
        telemetry: Optional sink; receives ``fleet_lanes_completed`` /
            ``fleet_accesses`` counters and a ``fleet_wall`` timer.
    """
    if max_width <= 0:
        raise ValueError("max_width must be positive")
    outcomes: list[LaneOutcome | None] = [None] * len(specs)
    # Bucket by config identity first (no dataclass hash per lane — specs
    # overwhelmingly share config instances), then merge equal-but-
    # distinct configs so cohort grouping stays semantic.
    by_id: dict[int, tuple[SimConfig, list[int]]] = {}
    for index, spec in enumerate(specs):
        entry = by_id.get(id(spec.config))
        if entry is None:
            entry = (spec.config, [])
            by_id[id(spec.config)] = entry
        entry[1].append(index)
    groups: dict[SimConfig, list[int]] = {}
    for config, bucket in by_id.values():
        groups.setdefault(config, []).extend(bucket)

    started = time.perf_counter()
    n_cohorts = 0
    backend_used = backend
    for indices in groups.values():
        group = [specs[i] for i in indices]
        cohort = FleetCohort.for_specs(
            group, width=min(len(group), max_width), backend=backend,
            record_miss_indices=record_miss_indices)
        backend_used = cohort.backend_used
        n_cohorts += 1
        pending = list(zip(indices, group))
        pending.reverse()
        slot_spec: dict[int, int] = {}
        load_at: dict[int, float] = {}

        def refill(slots: list[int]) -> None:
            batch_slots: list[int] = []
            batch_specs: list[FleetLaneSpec] = []
            for slot in slots:
                if not pending:
                    break
                index, spec = pending.pop()
                slot_spec[slot] = index
                batch_slots.append(slot)
                batch_specs.append(spec)
            # One batched load per step: slot-vector writes and cache
            # resets amortize across the refill batch (the per-lane load
            # cost is the fleet's throughput floor at scale).
            cohort.load_many(batch_slots, batch_specs)
            stamp = time.perf_counter()
            for slot in batch_slots:
                load_at[slot] = stamp

        refill(cohort.free_slots())
        while cohort.active_count():
            finished = cohort.step()
            now = time.perf_counter()
            for slot in finished:
                index = slot_spec.pop(slot)
                result = cohort.harvest(slot)
                accesses = len(specs[index].trace)
                outcomes[index] = LaneOutcome(
                    result=result, accesses=accesses,
                    wall_time_s=now - load_at.pop(slot))
                if telemetry is not None:
                    telemetry.counter("fleet_lanes_completed")
                    telemetry.counter("fleet_accesses", accesses)
            if pending and finished:
                refill(finished)
    wall = time.perf_counter() - started
    if telemetry is not None:
        telemetry.timers["fleet_wall"] = (
            telemetry.timers.get("fleet_wall", 0.0) + wall)
    final = [o for o in outcomes if o is not None]
    assert len(final) == len(specs)
    return FleetReport(outcomes=final, backend=backend_used,
                       n_cohorts=n_cohorts, wall_time_s=wall)


def write_fleet_manifest(report: FleetReport,
                         directory: str | Path) -> Path:
    """Write the fleet's JSONL manifest into ``directory``.

    Line 1 is the aggregate ``fleet_manifest`` record (rollup +
    provenance); each following line is one ``fleet_lane`` per-tenant
    record.  Written atomically (tmp + rename), named by a content-free
    timestamp-less scheme: ``fleet-<n_lanes>x-<backend>.jsonl`` —
    reruns of the same shape overwrite.
    """
    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    head = {
        "record": "fleet_manifest",
        "schema_version": SCHEMA_VERSION,
        **report.rollup(),
        "env": environment(),
    }
    lanes = []
    for outcome in report.outcomes:
        result = outcome.result
        lanes.append({
            "record": "fleet_lane",
            "trace": result.trace_name,
            "prefetcher": result.prefetcher_name,
            "capacity_pages": result.capacity_pages,
            "accesses": outcome.accesses,
            "demand_misses": result.stats.demand_misses,
            "prefetch_hits": result.stats.prefetch_hits,
            "wall_time_s": round(outcome.wall_time_s, 6),
        })
    path = out_dir / f"fleet-{report.n_lanes}x-{report.backend}.jsonl"
    fd, tmp = tempfile.mkstemp(dir=out_dir, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            for record in [head, *lanes]:
                fh.write(json.dumps(record, sort_keys=True))
                fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return path
