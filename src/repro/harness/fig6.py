"""Figure 6 / §4: the two target systems and their design-space claims.

The paper makes qualitative arguments about each deployment; this harness
turns them into measured comparisons:

1. **Disaggregated** (latency-bound, decentralized).  Timeliness is
   derived from each model's *modeled inference latency* (Figure 2) and
   the baseline's stall-inclusive access gap: the Hebbian network's
   few-microsecond inference yields a landing delay the §5.2
   length/width co-design can cover, while the LSTM's >150 us inference
   pushes its prefetches hopelessly late — the paper's deployability
   argument, measured.  Placement is compared too: per-node decentralized
   prefetchers (clean streams) vs one switch-centralized model fed the
   interleaved miss stream.
2. **UVM** (throughput-bound, centralized).  The driver-side prefetcher
   sees SIMT fault batches; isolating streams (per-stream demux) beats a
   single shared model, and wider prefetch output buys throughput, as §4
   argues for throughput-bound environments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..baselines.leap import LeapPrefetcher
from ..core.cls_prefetcher import CLSPrefetcher, CLSPrefetcherConfig
from ..seeding import spawn_seeds
from ..nn.costs import DEFAULT_LATENCY_MODEL, hebbian_inference_ops, lstm_inference_ops
from ..patterns.applications import AppSpec, generate_application
from ..patterns.generators import PatternSpec, stride
from ..systems.disaggregated import DisaggregatedSystem, DisaggResult
from ..systems.driver import PerStreamPrefetcher, SharedStreamPrefetcher
from ..systems.latency import DISAGGREGATED_FABRIC
from ..systems.uvm import UVMResult, UVMSystem
from .models import (
    experiment_hebbian_config,
    experiment_lstm_config,
    paper_hebbian_config,
    paper_lstm_config,
)


@dataclass
class Fig6Config:
    """Knobs for both target-system experiments."""

    n_nodes: int = 4
    node_apps: tuple[str, ...] = ("resnet", "pagerank", "mcf", "graph500")
    accesses_per_node: int = 8_000
    n_streams: int = 8
    accesses_per_stream: int = 3_000
    memory_fraction: float = 0.5
    vocab_size: int = 192
    prefetch_length: int = 12
    prefetch_width: int = 4
    # Selectivity comes from self-monitored accuracy rather than softmax
    # confidence: under prefetch feedback the model ranks well long before
    # its weights consolidate, so absolute probabilities stay flat.
    min_confidence: float = 0.0
    min_accuracy: float = 0.5
    seed: int = 0


def _cls_prefetcher(model: str, config: Fig6Config) -> CLSPrefetcher:
    if model == "hebbian":
        extra = {"hebbian": experiment_hebbian_config(config.vocab_size, config.seed)}
    else:
        extra = {"lstm": experiment_lstm_config(config.vocab_size, config.seed)}
    return CLSPrefetcher(CLSPrefetcherConfig(
        model=model,
        vocab_size=config.vocab_size,
        prefetch_length=config.prefetch_length,
        prefetch_width=config.prefetch_width,
        min_confidence=config.min_confidence,
        min_accuracy=config.min_accuracy,
        seed=config.seed,
        **extra,
    ))


def modeled_inference_ns(model: str) -> int:
    """Modeled single-inference latency (ns) at Table 2 scale."""
    if model == "hebbian":
        us = DEFAULT_LATENCY_MODEL.inference_us(
            hebbian_inference_ops(paper_hebbian_config()), family="hebbian")
    else:
        us = DEFAULT_LATENCY_MODEL.inference_us(
            lstm_inference_ops(paper_lstm_config()), family="lstm")
    return int(us * 1000)


@dataclass
class DisaggComparison:
    baseline: DisaggResult
    decentralized_hebbian: DisaggResult
    decentralized_lstm: DisaggResult
    decentralized_leap: DisaggResult
    centralized_hebbian: DisaggResult
    hebbian_delay_accesses: int
    lstm_delay_accesses: int

    @property
    def hebbian_speedup(self) -> float:
        return self.decentralized_hebbian.speedup_over(self.baseline)

    @property
    def lstm_speedup(self) -> float:
        return self.decentralized_lstm.speedup_over(self.baseline)

    @property
    def leap_speedup(self) -> float:
        return self.decentralized_leap.speedup_over(self.baseline)

    @property
    def centralized_speedup(self) -> float:
        return self.centralized_hebbian.speedup_over(self.baseline)


def run_disaggregated(config: Fig6Config = Fig6Config()) -> DisaggComparison:
    """§4 disaggregated experiment: timeliness + placement."""
    traces = []
    node_seeds = spawn_seeds(config.seed, config.n_nodes)
    for node in range(config.n_nodes):
        app = config.node_apps[node % len(config.node_apps)]
        traces.append(generate_application(
            app, AppSpec(n=config.accesses_per_node, seed=node_seeds[node])))

    probe = DisaggregatedSystem(node_traces=traces,
                                memory_fraction=config.memory_fraction,
                                prefetch_delay_accesses=0)
    baseline = probe.run_no_prefetch()
    gap_ns = max(1.0, baseline.mean_access_ns)

    fabric = DISAGGREGATED_FABRIC
    hebbian_delay = fabric.delay_accesses(gap_ns, modeled_inference_ns("hebbian"))
    lstm_delay = fabric.delay_accesses(gap_ns, modeled_inference_ns("lstm"))

    def system(delay: int) -> DisaggregatedSystem:
        return DisaggregatedSystem(node_traces=traces,
                                   memory_fraction=config.memory_fraction,
                                   prefetch_delay_accesses=delay)

    decentralized_hebbian = system(hebbian_delay).run_decentralized(
        lambda: _cls_prefetcher("hebbian", config))
    decentralized_lstm = system(lstm_delay).run_decentralized(
        lambda: _cls_prefetcher("lstm", config))
    # Leap is a table lookup (sub-microsecond): give it the small delay.
    decentralized_leap = system(min(2, hebbian_delay)).run_decentralized(
        lambda: LeapPrefetcher(max_degree=config.prefetch_width * 2))
    centralized_hebbian = system(hebbian_delay).run_centralized(
        lambda: SharedStreamPrefetcher(_cls_prefetcher("hebbian", config)))

    return DisaggComparison(
        baseline=baseline,
        decentralized_hebbian=decentralized_hebbian,
        decentralized_lstm=decentralized_lstm,
        decentralized_leap=decentralized_leap,
        centralized_hebbian=centralized_hebbian,
        hebbian_delay_accesses=hebbian_delay,
        lstm_delay_accesses=lstm_delay,
    )


@dataclass
class IrregularNodeComparison:
    """Hebbian vs Leap on a pointer-chasing node (no majority delta)."""

    baseline: DisaggResult
    hebbian: DisaggResult
    leap: DisaggResult

    @property
    def hebbian_speedup(self) -> float:
        return self.hebbian.speedup_over(self.baseline)

    @property
    def leap_speedup(self) -> float:
        return self.leap.speedup_over(self.baseline)


def run_irregular_node(config: Fig6Config = Fig6Config()) -> IrregularNodeComparison:
    """The workload §1 motivates: a node traversing pointer structures.

    A fixed linked traversal has *no* majority delta for Leap to vote on,
    but is perfectly learnable — the case where paying for a model (even
    with its larger landing delay) beats the table heuristic.
    """
    from ..patterns.generators import PatternSpec, pointer_chase

    trace = pointer_chase(PatternSpec(n=config.accesses_per_node,
                                      working_set=300, element_size=4096,
                                      seed=config.seed))

    def system(delay: int) -> DisaggregatedSystem:
        return DisaggregatedSystem(node_traces=[trace],
                                   memory_fraction=config.memory_fraction,
                                   prefetch_delay_accesses=delay)

    baseline = system(0).run_no_prefetch()
    gap_ns = max(1.0, baseline.mean_access_ns)
    hebbian_delay = DISAGGREGATED_FABRIC.delay_accesses(
        gap_ns, modeled_inference_ns("hebbian"))
    hebbian = system(hebbian_delay).run_decentralized(
        lambda: _cls_prefetcher("hebbian", config))
    leap = system(min(2, hebbian_delay)).run_decentralized(
        lambda: LeapPrefetcher(max_degree=config.prefetch_width * 2))
    return IrregularNodeComparison(baseline=baseline, hebbian=hebbian,
                                   leap=leap)


@dataclass
class UVMComparison:
    baseline: UVMResult
    shared: UVMResult
    per_stream_by_width: dict[int, UVMResult] = field(default_factory=dict)


def _uvm_stream_traces(config: Fig6Config) -> list:
    """SIMT-like streaming with warp divergence.

    Each stream (SM) walks three tensor tiles in its own region; which
    tile issues next varies (warp scheduling), so at any point the next
    page is one of ~three candidates.  That is exactly the structure where
    prefetch *width* (§5.2) pays: top-w prediction covers the candidate
    set even though no single rollout path can.
    """
    from ..patterns.trace import interleave

    traces = []
    per_tile = max(64, config.accesses_per_stream // 3)
    stream_seeds = spawn_seeds(config.seed, config.n_streams)
    for sid in range(config.n_streams):
        base = 0x1_0000_0000 + sid * 0x1000_0000
        # Children of the stream seed: tiles 0-2 lay out structures, child
        # 3 shuffles the interleave — all collision-free across streams.
        tile_seeds = spawn_seeds(stream_seeds[sid], 4)
        tiles = []
        for tile_id in range(3):
            spec = PatternSpec(n=per_tile,
                               element_size=4096,
                               working_set=max(48, per_tile // 4),
                               base=base + tile_id * 0x100_0000,
                               seed=tile_seeds[tile_id])
            tiles.append(stride(spec, stride_elements=1 + tile_id))
        merged = interleave(tiles, seed=tile_seeds[3],
                            name=f"uvm-stream{sid}")
        traces.append(merged)
    return traces


def run_uvm(config: Fig6Config = Fig6Config(),
            widths: tuple[int, ...] = (1, 2, 4)) -> UVMComparison:
    """§4 UVM experiment: stream isolation + prefetch-width sweep."""
    traces = _uvm_stream_traces(config)
    system = UVMSystem(stream_traces=traces,
                       memory_fraction=config.memory_fraction)
    baseline = system.run_no_prefetch()

    def uvm_prefetcher(width: int) -> CLSPrefetcher:
        # short length, varying width: the branchy SIMT streams reward
        # covering the candidate set, not deep greedy rollout
        cfg = Fig6Config(**{**config.__dict__, "prefetch_width": width,
                            "prefetch_length": 2})
        return _cls_prefetcher("hebbian", cfg)

    shared = system.run(SharedStreamPrefetcher(uvm_prefetcher(1)))
    per_stream = {}
    for width in widths:
        prefetcher = PerStreamPrefetcher(
            factory=lambda w=width: uvm_prefetcher(w),
            name=f"per-stream-w{width}")
        per_stream[width] = system.run(prefetcher)
    return UVMComparison(baseline=baseline, shared=shared,
                         per_stream_by_width=per_stream)


def required_prefetch_length(model: str, gap_ns: float,
                             mean_accesses_per_miss: float = 7.0) -> int:
    """How many misses ahead a model must predict to be timely (§5.2).

    length >= landing_delay / accesses-between-misses.  For the Hebbian
    network this is single digits; for the LSTM it is ~an order of
    magnitude more than any rollout can sustain — the co-design argument.
    """
    delay = DISAGGREGATED_FABRIC.delay_accesses(gap_ns, modeled_inference_ns(model))
    return max(1, math.ceil(delay / max(1.0, mean_accesses_per_miss)))
