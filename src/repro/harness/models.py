"""Standard model configurations used across experiments.

Two tiers per family:

- **Table-2 scale** (`paper_lstm_config` / `paper_hebbian_config`): the
  sizes the paper's resource table describes (LSTM ~170k parameters,
  Hebbian ~49k).  Used for op counting and the latency model (Figure 2,
  Table 2).
- **Experiment scale** (`experiment_lstm` / `experiment_hebbian`): the
  compressed configurations used to *run* trace experiments in reasonable
  time — the paper itself runs a compressed (~1 MB) deployment for the
  same reason (§2.1).  Learning rates are tuned for single-pass online
  learning on 1000-access traces.
"""

from __future__ import annotations

from ..nn.hebbian import HebbianConfig, SparseHebbianNetwork
from ..nn.lstm import LSTMConfig, OnlineLSTM


def paper_lstm_config(vocab_size: int = 128) -> LSTMConfig:
    """The Table 2 LSTM: ~173k parameters (paper: 170k)."""
    return LSTMConfig(vocab_size=vocab_size, embed_dim=64, hidden_dim=160)


def paper_hebbian_config(vocab_size: int = 128) -> HebbianConfig:
    """The Table 2 Hebbian network: 1000 hidden, 12.5% connectivity,
    10% activation sparsity — ~49k connected weights (paper: 49k)."""
    return HebbianConfig(vocab_size=vocab_size, hidden_dim=1000,
                         connectivity_in=0.125, connectivity_rec=0.017,
                         connectivity_out=0.125, activation_fraction=0.10)


def experiment_lstm(vocab_size: int = 128, seed: int = 0) -> OnlineLSTM:
    """Compressed online LSTM for trace experiments."""
    return OnlineLSTM(LSTMConfig(vocab_size=vocab_size, embed_dim=32,
                                 hidden_dim=64, window=4, lr=1.0, seed=seed))


def experiment_hebbian(vocab_size: int = 128, seed: int = 0) -> SparseHebbianNetwork:
    """Experiment-scale Hebbian network (500 hidden keeps runs fast while
    preserving the sparsity ratios of the paper's 1000-unit prototype)."""
    return SparseHebbianNetwork(HebbianConfig(
        vocab_size=vocab_size, hidden_dim=500,
        connectivity_in=0.125, connectivity_rec=0.017,
        connectivity_out=0.125, activation_fraction=0.10, seed=seed))


def experiment_lstm_config(vocab_size: int = 128, seed: int = 0) -> LSTMConfig:
    return LSTMConfig(vocab_size=vocab_size, embed_dim=32, hidden_dim=64,
                      window=4, lr=1.0, seed=seed)


def experiment_hebbian_config(vocab_size: int = 128, seed: int = 0) -> HebbianConfig:
    """Experiment-scale Hebbian config.

    ``weight_max=16`` / ``punish_wrong=False`` add inertia: online prefetch
    deployment makes the miss stream non-stationary (good prefetches change
    which accesses miss), and the error-driven punishment term flaps under
    that feedback.  The defaults in ``HebbianConfig`` remain tuned for
    stationary sequence learning.
    """
    return HebbianConfig(vocab_size=vocab_size, hidden_dim=500,
                         connectivity_in=0.125, connectivity_rec=0.017,
                         connectivity_out=0.125, activation_fraction=0.10,
                         weight_max=16.0, punish_wrong=False,
                         negative_scale=0.25,
                         seed=seed)
