"""CSV export for experiment results.

Every harness driver returns either row-dicts or small dataclasses; this
module flattens both into CSV files so results can be plotted or diffed
outside Python without any extra dependencies.
"""

from __future__ import annotations

import csv
import dataclasses
from pathlib import Path
from typing import Any, Iterable


def _as_dict(row: Any) -> dict:
    if isinstance(row, dict):
        return row
    if dataclasses.is_dataclass(row) and not isinstance(row, type):
        return dataclasses.asdict(row)
    raise TypeError(f"cannot export row of type {type(row).__name__}")


def export_rows_csv(path: str | Path, rows: Iterable[Any]) -> int:
    """Write rows (dicts or dataclasses) to ``path``; returns row count.

    The header is the union of keys across rows, in first-seen order, so
    heterogeneous row sets export without data loss.
    """
    dict_rows = [_as_dict(row) for row in rows]
    if not dict_rows:
        raise ValueError("nothing to export")
    fieldnames: list[str] = []
    for row in dict_rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)

    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for row in dict_rows:
            writer.writerow({k: _csv_value(row.get(k)) for k in fieldnames})
    return len(dict_rows)


def _csv_value(value: Any) -> Any:
    if isinstance(value, (tuple, list)):
        return ";".join(str(v) for v in value)
    return value
