"""Experiment drivers regenerating every paper table/figure + ablations."""

from .ablations import (
    ablation_adaptation,
    ablation_availability,
    ablation_encoding,
    ablation_length_width,
    ablation_noise_robustness,
    ablation_prediction_mode,
    ablation_replay,
    ablation_sampling,
    ablation_sparsity,
)
from .fig2 import BATCH_SIZES, FUTURE_STEPS, LatencySeries, inference_panel, training_panel
from .fig5 import Fig5Config, Fig5Result, make_model_prefetcher, run_fig5
from .fig6 import (
    DisaggComparison,
    Fig6Config,
    UVMComparison,
    run_disaggregated,
    run_uvm,
)
from .interference import (
    InterferenceConfig,
    InterferenceRun,
    pattern_class_sequences,
    run_interference,
)
from .models import (
    experiment_hebbian,
    experiment_hebbian_config,
    experiment_lstm,
    experiment_lstm_config,
    paper_hebbian_config,
    paper_lstm_config,
)
from .export import export_rows_csv
from .trace_cache import configure as configure_trace_cache, materialize
from .reporting import format_series, format_table, print_table
from .variance import VarianceRow, fig5_seed_sweep
from .tables import (
    PAPER_TABLE2,
    PatternSignature,
    ResourceRow,
    pattern_signature,
    table1_signatures,
    table2_rows,
)

__all__ = [
    "ablation_adaptation",
    "ablation_availability",
    "ablation_prediction_mode",
    "ablation_encoding",
    "ablation_length_width",
    "ablation_noise_robustness",
    "ablation_replay",
    "ablation_sampling",
    "ablation_sparsity",
    "BATCH_SIZES",
    "FUTURE_STEPS",
    "LatencySeries",
    "inference_panel",
    "training_panel",
    "Fig5Config",
    "Fig5Result",
    "make_model_prefetcher",
    "materialize",
    "run_fig5",
    "DisaggComparison",
    "Fig6Config",
    "UVMComparison",
    "run_disaggregated",
    "run_uvm",
    "InterferenceConfig",
    "InterferenceRun",
    "pattern_class_sequences",
    "run_interference",
    "experiment_hebbian",
    "experiment_hebbian_config",
    "experiment_lstm",
    "experiment_lstm_config",
    "paper_hebbian_config",
    "paper_lstm_config",
    "configure_trace_cache",
    "export_rows_csv",
    "format_series",
    "format_table",
    "print_table",
    "VarianceRow",
    "fig5_seed_sweep",
    "PAPER_TABLE2",
    "PatternSignature",
    "ResourceRow",
    "pattern_signature",
    "table1_signatures",
    "table2_rows",
]
