"""First-class fault injection for the serving layer.

Faults are part of the service's constructor surface, not test
monkey-patching: the same :class:`FaultPlan` drives the deterministic
fault matrix under the virtual scheduler and the soak leg on real
threads.  Every fault is observable through a service counter, so tests
assert the fault actually fired instead of trusting the knob.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.hebbian import SparseHebbianNetwork


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault schedule for one service run.

    Attributes:
        trainer_stall_events: While fewer than this many events have been
            ingested, the trainer refuses all work — the "background
            trainer wedged" scenario.  Queries must keep flowing from the
            stale live model.
        drop_from: Start (inclusive) of a submission-sequence window in
            which miss events are dropped *before* the ring — an ingest
            blackout burst.
        drop_until: End (exclusive) of the drop window.
        swap_on_query: Force a hot-swap on every queried lane right
            before its answer is computed — maximizes swap/query races
            for the torn-weights assertion.
        poison_after_trains: After this many background training steps,
            corrupt the shadow's weights with a NaN (a poisoned-update
            fault).  The swap path must reject the shadow, discard it,
            and keep serving finite weights.  None disables.
        trainer_pause_s: Threaded-mode only: the trainer sleeps this long
            (holding no locks) after each training step, simulating a
            slow background worker; query latency must not inherit it.
    """

    trainer_stall_events: int = 0
    drop_from: int = 0
    drop_until: int = 0
    swap_on_query: bool = False
    poison_after_trains: int | None = None
    trainer_pause_s: float = 0.0

    def __post_init__(self) -> None:
        if self.trainer_stall_events < 0:
            raise ValueError("trainer_stall_events must be >= 0")
        if self.drop_from < 0 or self.drop_until < self.drop_from:
            raise ValueError("drop window must satisfy 0 <= from <= until")
        if self.poison_after_trains is not None \
                and self.poison_after_trains < 0:
            raise ValueError("poison_after_trains must be >= 0 or None")
        if self.trainer_pause_s < 0:
            raise ValueError("trainer_pause_s must be >= 0")

    def drops(self, sequence: int) -> bool:
        """True when the event with this submission sequence is dropped."""
        return self.drop_from <= sequence < self.drop_until


def poison_weights(model: SparseHebbianNetwork) -> None:  # repro-lint: zone=fault-injection
    """Corrupt one weight with NaN — the poisoned-update fault body.

    Deliberately writes another class's state (that is the fault); the
    caller owns holding the lane lock around it."""
    w_out = model.w_out.copy()
    flat = w_out.reshape(-1)
    flat[0] = np.nan
    model.w_out = w_out
