"""Bounded drop-oldest event ring — the service's ingest backpressure.

A full ring never blocks the producer and never grows: the oldest
waiting event is dropped and counted.  For a prefetcher that is the
right policy — a stale miss event teaches less than a fresh one, and
the query path must stay bounded-latency regardless of ingest pressure.

Thread-safe; every mutation happens under one internal lock so the
counters are exact even under racing producers and consumers (the
hypothesis suite pins: ``pushed == popped + dropped + len(ring)`` and
FIFO order of the survivors, under random interleavings).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Generic, TypeVar

T = TypeVar("T")


class EventRing(Generic[T]):
    """Bounded FIFO with drop-oldest overflow and exact counters.

    Attributes:
        capacity: Maximum events held.
        pushed: Total events offered via :meth:`push`.
        popped: Total events handed out via :meth:`pop`/:meth:`pop_up_to`.
        dropped: Total events evicted by overflow.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.pushed = 0
        self.popped = 0
        self.dropped = 0
        self._items: deque[T] = deque()
        self._lock = threading.Lock()

    def push(self, item: T) -> bool:
        """Enqueue; returns False iff an older event was dropped to fit."""
        with self._lock:
            self.pushed += 1
            overflowed = len(self._items) >= self.capacity
            if overflowed:
                self._items.popleft()
                self.dropped += 1
            self._items.append(item)
            return not overflowed

    def pop(self) -> T | None:
        """Dequeue the oldest event, or None when empty."""
        with self._lock:
            if not self._items:
                return None
            self.popped += 1
            return self._items.popleft()

    def pop_up_to(self, n: int) -> list[T]:
        """Dequeue up to ``n`` oldest events (possibly empty)."""
        with self._lock:
            out: list[T] = []
            while self._items and len(out) < n:
                out.append(self._items.popleft())
            self.popped += len(out)
            return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)
