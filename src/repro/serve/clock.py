"""The clock seam: every time read in the serving layer goes through a
:class:`Clock` so tests can run the identical code under a deterministic
virtual clock.

``RealClock`` is ``perf_counter`` for production threads; wall-clock
reads are confined to this module (the simulation zones under
``core``/``memsim``/``nn``/``patterns`` stay clock-free per repro-lint
RL002).  ``VirtualClock`` only moves when a scheduler advances it, so
latencies measured under it are a pure function of the schedule.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """Monotonic seconds; the only time source the serve layer may use."""

    def now(self) -> float:
        """Current monotonic time in seconds."""
        ...


class RealClock:
    """Production clock: monotonic ``perf_counter`` seconds."""

    def now(self) -> float:
        return time.perf_counter()


class VirtualClock:
    """Deterministic clock advanced explicitly by the test scheduler.

    Time never flows on its own: two runs that take the same schedule
    read the same timestamps, so p50/p99 latencies asserted under this
    clock are exact, not statistical.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new now."""
        if seconds < 0:
            raise ValueError("time only moves forward")
        self._now += seconds
        return self._now
