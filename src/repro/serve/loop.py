"""The scheduler seam: actors and the two ways to drive them.

The service is decomposed into **actors** — objects exposing one atomic
unit of work, ``step() -> bool`` (True = made progress).  Production
runs each actor on its own thread (:class:`ThreadScheduler`); tests run
the *same* actors single-stepped under :class:`VirtualScheduler`, which
picks the next actor with a seeded RNG (or an injected chooser, so a
hypothesis ``data.draw`` can shrink the interleaving).  Because a step
is atomic by construction — the scheduler never preempts inside one —
every interleaving the virtual scheduler can produce is replayable
exactly from its seed, and any exception an actor raises is re-raised
annotated with that seed.
"""

from __future__ import annotations

import threading
from typing import Callable, Protocol, runtime_checkable

from ..seeding import child_rng
from .clock import VirtualClock

#: Given the names of currently-runnable actors, return the index to
#: step next.  Injected by property tests (hypothesis draws the index,
#: so failing interleavings shrink); ``None`` means "use the seeded RNG".
Chooser = Callable[[list[str]], int]


@runtime_checkable
class Actor(Protocol):
    """One schedulable unit of the service."""

    name: str

    def step(self) -> bool:
        """Run one atomic unit of work; True iff progress was made."""
        ...


class VirtualScheduler:
    """Single-stepped deterministic scheduler over a virtual clock.

    Each :meth:`step_once` picks one non-idle actor (seeded RNG or the
    injected ``chooser``), runs exactly one ``step()``, and advances the
    virtual clock by that actor's step cost.  An actor that reports no
    progress is parked until *any* actor progresses (progress may have
    unblocked it); when every actor is parked the system is quiescent.

    Attributes:
        seed: The interleaving seed; printed in every failure so the
            schedule replays exactly.
        trace: Actor names in execution order — the replayable schedule.
    """

    def __init__(self, clock: VirtualClock, *, seed: int = 0,
                 chooser: Chooser | None = None,
                 step_cost: float = 1e-6,
                 costs: dict[str, float] | None = None) -> None:
        self.clock = clock
        self.seed = seed
        self.trace: list[str] = []
        self.steps = 0
        self._rng = child_rng(seed, 0)
        self._chooser = chooser
        self._actors: list[Actor] = []
        self._idle: set[str] = set()
        self._step_cost = step_cost
        self._costs = dict(costs or {})

    def add(self, actor: Actor) -> None:
        if any(a.name == actor.name for a in self._actors):
            raise ValueError(f"duplicate actor name {actor.name!r}")
        self._actors.append(actor)

    def runnable(self) -> list[str]:
        """Names of actors not currently parked as idle."""
        return [a.name for a in self._actors if a.name not in self._idle]

    def step_once(self) -> str | None:
        """Step one actor; returns its name, or None when quiescent."""
        candidates = [a for a in self._actors if a.name not in self._idle]
        if not candidates:
            return None
        if self._chooser is not None:
            index = self._chooser([a.name for a in candidates])
            if not 0 <= index < len(candidates):
                raise IndexError(
                    f"chooser returned {index} for {len(candidates)} "
                    "runnable actors")
        else:
            index = int(self._rng.integers(len(candidates)))
        actor = candidates[index]
        try:
            progressed = actor.step()
        except Exception as exc:
            raise RuntimeError(
                f"actor {actor.name!r} failed at schedule step {self.steps} "
                f"under interleaving seed={self.seed}; rerun with "
                f"VirtualScheduler(seed={self.seed}) to replay exactly"
            ) from exc
        self.steps += 1
        self.trace.append(actor.name)
        self.clock.advance(self._costs.get(actor.name, self._step_cost))
        if progressed:
            # Progress anywhere may unblock anyone: un-park everything.
            self._idle.clear()
        else:
            self._idle.add(actor.name)
        return actor.name

    def run(self, max_steps: int) -> int:
        """Step up to ``max_steps`` times; returns steps actually run."""
        done = 0
        while done < max_steps:
            if self.step_once() is None:
                break
            done += 1
        return done

    def run_until_idle(self, max_steps: int = 1_000_000) -> int:
        """Step until every actor is quiescent; returns steps run.

        Raises if the budget is exhausted first — a live-lock under this
        schedule, reported with the seed that reproduces it.
        """
        done = self.run(max_steps)
        if done >= max_steps and self.step_once() is not None:
            raise RuntimeError(
                f"not quiescent after {max_steps} steps under interleaving "
                f"seed={self.seed}; replay with VirtualScheduler("
                f"seed={self.seed})")
        return done


class ThreadScheduler:
    """Production driver: one daemon thread per actor.

    Each thread loops the actor's ``step()``; when an actor reports no
    progress the thread backs off for ``poll_interval`` seconds instead
    of spinning.  :meth:`stop` joins every thread and re-raises the
    first actor exception, if any — failures never vanish into a dead
    thread.
    """

    def __init__(self, *, poll_interval: float = 1e-4) -> None:
        self._poll = poll_interval
        self._actors: list[Actor] = []
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._errors: list[tuple[str, BaseException]] = []
        self._errors_lock = threading.Lock()
        self.started = False

    def add(self, actor: Actor) -> None:
        if self.started:
            raise RuntimeError("cannot add actors after start()")
        self._actors.append(actor)

    def start(self) -> None:
        if self.started:
            raise RuntimeError("already started")
        self.started = True
        for actor in self._actors:
            thread = threading.Thread(target=self._drive, args=(actor,),
                                      name=f"serve-{actor.name}", daemon=True)
            self._threads.append(thread)
            thread.start()

    def _drive(self, actor: Actor) -> None:
        stop = self._stop
        while not stop.is_set():
            try:
                progressed = actor.step()
            except Exception as exc:
                with self._errors_lock:
                    self._errors.append((actor.name, exc))
                return
            if not progressed:
                stop.wait(self._poll)

    def stop(self, timeout: float = 10.0) -> None:
        """Signal every thread, join them, and surface actor failures."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout)
        alive = [t.name for t in self._threads if t.is_alive()]
        if alive:
            raise RuntimeError(f"actor threads failed to stop: {alive}")
        with self._errors_lock:
            if self._errors:
                name, exc = self._errors[0]
                raise RuntimeError(f"actor {name!r} failed") from exc
