"""Online train-and-serve prefetch daemon (§5.5 under real concurrency).

The paper asks whether a model can be trained and queried concurrently;
:mod:`repro.core.availability` answers with the shadow-copy protocol but
never runs it under actual concurrency.  This package is the serving
layer: a long-lived :class:`~repro.serve.service.PrefetchService` that
ingests miss events through a bounded drop-oldest ring, answers prefetch
queries through a request batcher (stacked across tenants via
:class:`~repro.nn.hebbian_fleet.HebbianFleet`), trains a shadow copy on
a background worker, and hot-swaps it through
:class:`~repro.core.availability.ShadowModelManager`.

All concurrency goes through the scheduler/clock seam
(:mod:`repro.serve.clock`, :mod:`repro.serve.loop`): the same actors run
on real threads in production (:class:`~repro.serve.loop.ThreadScheduler`)
and single-stepped under a seeded virtual clock in tests
(:class:`~repro.serve.loop.VirtualScheduler`), where interleavings are
replayable from their seed and shrinkable via an injected chooser.
"""

from .batcher import QueryTicket, RequestBatcher
from .clock import Clock, RealClock, VirtualClock
from .faults import FaultPlan
from .loop import Actor, ThreadScheduler, VirtualScheduler
from .ring import EventRing
from .service import (
    PrefetchService,
    ServeConfig,
    TenantLane,
    replay_lockstep,
)

__all__ = [
    "Actor",
    "Clock",
    "EventRing",
    "FaultPlan",
    "PrefetchService",
    "QueryTicket",
    "RealClock",
    "RequestBatcher",
    "ServeConfig",
    "TenantLane",
    "ThreadScheduler",
    "VirtualClock",
    "VirtualScheduler",
    "replay_lockstep",
]
