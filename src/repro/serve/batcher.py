"""Request batching for the query path.

Clients submit queries and receive a :class:`QueryTicket`; the serve
loop drains pending tickets in bounded batches, answers each from the
current live model, and resolves the ticket.  A ticket resolves exactly
once (double-resolution raises — the hypothesis suite leans on that),
and clients may block on :meth:`QueryTicket.wait` in threaded mode or
poll :attr:`QueryTicket.done` under the virtual scheduler.

The query path never touches the per-tenant training lock: answering is
reading the live model, which only the serve loop mutates (at swap
time), so a query can never block behind a training step.
"""

from __future__ import annotations

import threading
from collections import deque


class QueryTicket:
    """One in-flight prefetch query and, eventually, its answer.

    Attributes:
        qid: Monotone id assigned at submission.
        tenant: The querying tenant.
        submitted_at: Clock reading at submission.
        answered_at: Clock reading at resolution (None while pending).
        pages: The answer — predicted prefetch pages (None while pending).
        checksum: Serving-weights checksum at answer time, recorded when
            the service runs with ``record_checksums`` (the torn-swap
            assertion compares it against the swap history).
    """

    __slots__ = ("qid", "tenant", "submitted_at", "answered_at", "pages",
                 "checksum", "_event")

    def __init__(self, qid: int, tenant: int, submitted_at: float) -> None:
        self.qid = qid
        self.tenant = tenant
        self.submitted_at = submitted_at
        self.answered_at: float | None = None
        self.pages: list[int] | None = None
        self.checksum: str | None = None
        self._event = threading.Event()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def resolve(self, pages: list[int], answered_at: float,
                checksum: str | None = None) -> None:
        """Attach the answer; a ticket resolves exactly once."""
        if self._event.is_set():
            raise RuntimeError(f"ticket {self.qid} resolved twice")
        self.pages = pages
        self.answered_at = answered_at
        self.checksum = checksum
        self._event.set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block (threaded mode) until answered; True iff it was."""
        return self._event.wait(timeout)

    def latency(self) -> float:
        """Seconds from submission to answer (clock units)."""
        if self.answered_at is None:
            raise RuntimeError(f"ticket {self.qid} not answered yet")
        return self.answered_at - self.submitted_at


class RequestBatcher:
    """FIFO query queue drained in batches of at most ``max_batch``.

    Attributes:
        max_batch: Upper bound on tickets per :meth:`take_batch`.
        submitted: Total tickets issued.
        answered: Total tickets resolved through :meth:`answer`.
    """

    def __init__(self, max_batch: int) -> None:
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        self.max_batch = max_batch
        self.submitted = 0
        self.answered = 0
        self._pending: deque[QueryTicket] = deque()
        self._lock = threading.Lock()
        self._next_id = 0

    def submit(self, tenant: int, now: float) -> QueryTicket:
        """Enqueue a query; returns its ticket immediately."""
        with self._lock:
            ticket = QueryTicket(self._next_id, tenant, now)
            self._next_id += 1
            self.submitted += 1
            self._pending.append(ticket)
            return ticket

    def take_batch(self) -> list[QueryTicket]:
        """Dequeue up to ``max_batch`` tickets, FIFO."""
        with self._lock:
            out: list[QueryTicket] = []
            while self._pending and len(out) < self.max_batch:
                out.append(self._pending.popleft())
            return out

    def answer(self, ticket: QueryTicket, pages: list[int], now: float,
               checksum: str | None = None) -> None:
        """Resolve a ticket taken from :meth:`take_batch`."""
        ticket.resolve(pages, now, checksum)
        with self._lock:
            self.answered += 1

    def pending(self) -> int:
        with self._lock:
            return len(self._pending)
