"""The train-and-serve prefetch daemon.

:class:`PrefetchService` keeps one :class:`TenantLane` per tenant; each
lane owns a §5.5 :class:`~repro.core.availability.ShadowModelManager`
(live serves, shadow trains) plus the encoder/replay/accuracy state the
offline :class:`~repro.core.cls_prefetcher.CLSPrefetcher` keeps per
stream.  Two actors drive it:

- **serve** — drains the ingest ring into per-tenant rounds, advances
  every staged lane's *live* model in one stacked
  :class:`~repro.nn.hebbian_fleet.HebbianFleet` call, performs hot-swaps
  (redeploy on confidence drop or staleness), and answers query batches
  from batched fleet rollouts.  The serve actor is the only mutator of
  live models, so the answer path takes no lock and can never block
  behind a training step.
- **trainer** — consumes queued transitions and trains each lane's
  *shadow* copy (plus interleaved replay) under that lane's lock; the
  lock is shared only with the swap decision, never with answering.

The per-event pipeline is split into a *stage* sub-step (encode, score,
accuracy EMA — the offline ``_ingest`` prefix) and a *finish* sub-step
(confidence EMA, redeploy check, live-model step — the ``_ingest``
suffix), with training queued between them.  Under the lockstep schedule
``stage → drain trainer → finish → answer`` (see
:func:`replay_lockstep`) the daemon performs the offline pipeline's
operations in the identical order, which is why the differential suite
can assert bit-identity against ``simulate()`` — predictions, learned
``w_out``, and the confidence EMA.  Under any other schedule the service
is still correct (queries are answered from whatever weights are
deployed), just not bit-equal to the offline serialization.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from ..core.availability import ShadowModelManager, weights_finite
from ..core.encoding import OOV_CLASS, Encoder, make_encoder
from ..core.hippocampus import Episode
from ..core.replay import ReplayScheduler, make_replay_policy
from ..core.sampling import make_training_policy
from ..nn.hebbian import HebbianConfig, SparseHebbianNetwork
from ..nn.hebbian_fleet import HebbianFleet
from ..seeding import spawn_seeds
from ..telemetry.manifest import build_serve_manifest
from ..telemetry.sink import Telemetry
from .batcher import QueryTicket, RequestBatcher
from .clock import Clock, RealClock
from .faults import FaultPlan, poison_weights
from .loop import Actor
from .ring import EventRing

import threading

#: A beam rollout, as ``predict_rollout`` returns it.
Rollout = list[list[tuple[int, float]]]


@dataclass(frozen=True)
class ServeConfig:
    """Everything configurable about one service instance.

    The model/encoder/prediction fields deliberately mirror
    :class:`~repro.core.cls_prefetcher.CLSPrefetcherConfig` (rollout
    mode, no phase detection): the differential suite holds the daemon
    bit-identical to the offline prefetcher, so the serve path cannot
    fork semantics.

    Attributes:
        vocab_size: Miss-class vocabulary shared by encoder and model.
        encoder: "delta", "page" or "region" (§5.3).
        granularity: Bytes per encoded unit.
        page_size: Page size used to emit prefetch targets.
        prefetch_length: Rollout depth per query (§5.2).
        prefetch_width: Candidates per rollout step (§5.2).
        min_confidence: Candidate suppression threshold (§5.2).
        min_accuracy: Suppress all prefetching below this accuracy EMA.
        accuracy_ema_alpha: Smoothing of the self-monitored accuracy.
        training: Training-instance policy kind (§5.1); the batch
            accumulator is not servable (it owns training wholesale).
        replay_policy: Replay policy kind (§5.4), or None to disable.
        replay_per_step: Episodes replayed per background training step.
        replay_lr_scale: Replay learning-rate scale (paper: 0.1).
        redeploy_below: §5.5 confidence-EMA redeploy threshold.
        ema_alpha: §5.5 confidence-EMA smoothing.
        max_staleness: §5.5 staleness backstop (training steps).
        ring_capacity: Ingest ring bound (drop-oldest beyond it).
        train_queue_capacity: Pending-training bound (drop-oldest).
        max_batch: Events staged / queries answered per round.
        stacked: Step and roll out live lanes through one
            :class:`HebbianFleet` (multi-tenant batching); False keeps
            the scalar per-lane path.
        record_checksums: Checksum the serving weights at every swap and
            every answer — the torn-swap assertion's evidence trail.
        seed: Root seed; model construction and per-tenant replay
            sampling derive from it via ``spawn_seeds``.
    """

    vocab_size: int = 128
    encoder: str = "delta"
    granularity: int = 4096
    page_size: int = 4096
    prefetch_length: int = 2
    prefetch_width: int = 2
    min_confidence: float = 0.0
    min_accuracy: float = 0.0
    accuracy_ema_alpha: float = 0.02
    training: str = "always"
    replay_policy: str | None = None
    replay_per_step: int = 1
    replay_lr_scale: float = 0.1
    redeploy_below: float = 0.5
    ema_alpha: float = 0.05
    max_staleness: int = 256
    ring_capacity: int = 1024
    train_queue_capacity: int = 4096
    max_batch: int = 64
    stacked: bool = True
    record_checksums: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.vocab_size < 2:
            raise ValueError("vocab_size must be >= 2")
        if self.prefetch_length < 1 or self.prefetch_width < 1:
            raise ValueError("prefetch_length and prefetch_width must be >= 1")
        if not 0 <= self.min_confidence <= 1:
            raise ValueError("min_confidence must be in [0, 1]")
        if not 0 <= self.min_accuracy <= 1:
            raise ValueError("min_accuracy must be in [0, 1]")
        if not 0 < self.accuracy_ema_alpha <= 1:
            raise ValueError("accuracy_ema_alpha must be in (0, 1]")
        if self.training == "batch":
            raise ValueError("the batch-accumulate policy is not servable "
                             "(it owns training wholesale)")
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ValueError("page_size must be a positive power of two")
        if min(self.ring_capacity, self.train_queue_capacity,
               self.max_batch) < 1:
            raise ValueError("capacities and max_batch must be >= 1")


@dataclass(frozen=True, slots=True)
class ServeEvent:
    """One miss event as it travels through the ingest ring."""

    tenant: int
    address: int
    timestamp: int


@dataclass(frozen=True, slots=True)
class _Staged:
    """The stage sub-step's output, consumed by the finish sub-step."""

    class_id: int
    confidence: float
    had_probs: bool
    transition: tuple[int, int] | None
    train: bool
    timestamp: int


@dataclass(frozen=True, slots=True)
class _TrainTask:
    """One queued background-training unit (always has a transition)."""

    lane: "TenantLane"
    transition: tuple[int, int]
    confidence: float
    train: bool
    timestamp: int


class TenantLane:
    """One tenant's serving state: §5.5 manager, encoder, accuracy EMA.

    Attribute discipline (this is what makes the concurrency auditable):
    the serve actor calls :meth:`observe` / :meth:`pre_advance` /
    :meth:`post_advance` / :meth:`answer`; the trainer actor calls only
    :meth:`train_background` / :meth:`poison_shadow`.  State shared
    between the two — the manager's scalars and the shadow model — is
    touched exclusively under :attr:`lock`.  Everything else is owned by
    the serve actor alone.
    """

    def __init__(self, tenant: int, config: ServeConfig,
                 manager: ShadowModelManager, encoder: Encoder,
                 replay: ReplayScheduler | None) -> None:
        self.tenant = tenant
        self.config = config
        self.manager = manager
        self.encoder = encoder
        self.replay = replay
        self.lock = threading.Lock()
        self.slot = -1          # fleet slot; -1 in scalar mode
        self.prev_class: int | None = None
        self.last_probs: np.ndarray | None = None
        self.last_address = 0
        self.last_page = 0
        self.accuracy_ema = 0.0
        self.misses_seen = 0
        self.trained_steps = 0
        self.replayed_pairs = 0
        self.prefetches_emitted = 0
        self.suppressed = 0
        self.swaps = 0
        self.swaps_rejected = 0
        self.swap_pauses: list[float] = []
        self.checksum_history: list[str] = []
        self._page_shift = config.page_size.bit_length() - 1
        self._width = config.prefetch_width
        self._length = config.prefetch_length
        self._alpha = config.accuracy_ema_alpha
        self._should_train = make_training_policy(config.training).should_train

    # -- serve actor: the two-sub-step event pipeline ---------------------
    def observe(self, address: int, timestamp: int) -> _Staged | None:
        """Stage sub-step: the offline ``_ingest`` prefix (encode, score
        the last probs, accuracy EMA, train decision).  No model state
        moves here — that happens in :meth:`post_advance`."""
        self.misses_seen += 1
        self.last_address = address
        self.last_page = address >> self._page_shift
        class_id = self.encoder.observe(address)
        if class_id is None:
            return None
        probs = self.last_probs
        confidence = float(probs.item(class_id)) if probs is not None else 0.0
        transition = (None if self.prev_class is None
                      else (self.prev_class, class_id))
        if probs is not None:
            top = np.argpartition(probs, -self._width)[-self._width:]
            alpha = self._alpha
            self.accuracy_ema = ((1 - alpha) * self.accuracy_ema
                                 + alpha * float(class_id in top))
        train = transition is not None and self._should_train(confidence)
        return _Staged(class_id, confidence, probs is not None,
                       transition, train, timestamp)

    def pre_advance(self, staged: _Staged, fleet: HebbianFleet | None,
                    clock: Clock) -> None:
        """Finish sub-step, part 1: confidence EMA and the swap decision
        (the offline ``_learn_and_advance`` suffix before the live step).
        Runs under the lane lock — mutually exclusive with background
        shadow training, never with answering."""
        with self.lock:
            if staged.had_probs:
                self.manager.note_confidence(staged.confidence)
            if self.manager.should_redeploy():
                self._swap_locked(fleet, clock)

    def post_advance(self, probs: np.ndarray, staged: _Staged) -> None:
        """Finish sub-step, part 2: adopt the live model's new probs row
        (the caller stepped the model — stacked via the fleet, or scalar
        via ``live.step``)."""
        self.last_probs = probs
        self.prev_class = staged.class_id

    def step_scalar(self, staged: _Staged) -> np.ndarray:
        """Scalar-mode live step (the fleet-less mirror of
        ``step_lanes``)."""
        return self.live_net().step(staged.class_id, train=False)

    # -- serve actor: answering ------------------------------------------
    def would_gate(self) -> bool:
        """True when the min-accuracy gate suppresses this lane's
        prefetching (checked before any rollout work is spent)."""
        config = self.config
        return (config.min_accuracy > 0
                and self.accuracy_ema < config.min_accuracy)

    def live_rollout(self) -> Rollout:
        """Scalar-mode beam rollout from the live model."""
        return self.live_net().predict_rollout(self._width, self._length)

    def answer(self, rollout: Rollout | None) -> list[int]:
        """Decode a rollout into prefetch pages — the offline
        ``_decode_rollout`` loop verbatim (suppression, OOV skip, dedupe,
        top-1 base chaining).  ``None`` means the lane was gated."""
        if rollout is None:
            self.suppressed += 1
            return []
        pages: list[int] = []
        seen: set[int] = set()
        base = self.last_address
        miss_page = self.last_page
        decode = self.encoder.decode
        page_shift = self._page_shift
        min_confidence = self.config.min_confidence
        for candidates in rollout:
            for candidate_class, probability in candidates:
                if probability < min_confidence:
                    self.suppressed += 1
                    continue
                if candidate_class == OOV_CLASS:
                    continue
                address = decode(candidate_class, base)
                if address is None:
                    continue
                page = address >> page_shift
                if page != miss_page and page not in seen:
                    seen.add(page)
                    pages.append(page)
            next_base = decode(candidates[0][0], base)
            if next_base is None:
                break
            base = next_base
        self.prefetches_emitted += len(pages)
        return pages

    # -- serve actor: swaps ----------------------------------------------
    def adopt(self, fleet: HebbianFleet) -> None:
        """Hand the live model's stepping to a fleet slot."""
        self.slot = fleet.acquire_lane(self.live_net())

    def force_swap(self, fleet: HebbianFleet | None, clock: Clock) -> None:
        """Fault hook: redeploy right now, regardless of the EMA."""
        with self.lock:
            self._swap_locked(fleet, clock)

    def _swap_locked(self, fleet: HebbianFleet | None, clock: Clock) -> None:
        """Hot-swap: promote the shadow to live (§5.5 redeploy).

        A shadow with non-finite weights is rejected and discarded — the
        live copy keeps serving.  In stacked mode the swap is a lane
        release/re-acquire around the redeploy; the weight copy in and
        out of the fleet block is the measured "swap pause".
        """
        manager = self.manager
        if not weights_finite(manager.shadow):
            manager.discard_shadow()
            self.swaps_rejected += 1
            return
        start = clock.now()
        if fleet is not None:
            fleet.release_lane(self.slot, self.live_net())
        manager.redeploy()
        manager.live.reset_state()  # state re-warms within a few misses
        if fleet is not None:
            self.slot = fleet.acquire_lane(self.live_net())
        self.swap_pauses.append(clock.now() - start)
        self.swaps += 1
        if self.config.record_checksums:
            self.checksum_history.append(self.serving_checksum(fleet))

    def serving_checksum(self, fleet: HebbianFleet | None) -> str:
        """Digest of the weights queries are currently answered from."""
        if fleet is not None and self.slot >= 0:
            weights = fleet.lane_weights(self.slot)
        else:
            weights = self.live_net().w_out
        return hashlib.blake2b(np.ascontiguousarray(weights).tobytes(),
                               digest_size=16).hexdigest()

    def live_net(self) -> SparseHebbianNetwork:
        live = self.manager.live
        assert isinstance(live, SparseHebbianNetwork)
        return live

    # -- trainer actor ----------------------------------------------------
    def train_background(self, task: _TrainTask) -> None:
        """One background-training unit: record the episode, train the
        shadow, run interleaved replay — the offline order (record →
        train_shadow → replay step), under the lane lock."""
        with self.lock:
            if self.replay is not None:
                self.replay.record(Episode(
                    input_class=task.transition[0],
                    target_class=task.transition[1],
                    phase_id=-1,
                    confidence=task.confidence,
                    timestamp=task.timestamp,
                ))
            if task.train:
                self.manager.train_shadow(*task.transition)
                self.trained_steps += 1
                if self.replay is not None:
                    self.replayed_pairs += self.replay.step(
                        self.manager.shadow, current_phase=None)

    def poison_shadow(self) -> None:
        """Fault hook: corrupt the shadow's weights (trainer side)."""
        with self.lock:
            shadow = self.manager.shadow
            assert isinstance(shadow, SparseHebbianNetwork)
            poison_weights(shadow)

    def manifest_record(self) -> dict:
        """Per-lane line of the service's JSONL manifest."""
        return {
            "record": "serve_lane",
            "tenant": self.tenant,
            "misses_seen": self.misses_seen,
            "trained_steps": self.trained_steps,
            "replayed_pairs": self.replayed_pairs,
            "prefetches_emitted": self.prefetches_emitted,
            "suppressed": self.suppressed,
            "swaps": self.swaps,
            "swaps_rejected": self.swaps_rejected,
            "redeploys": self.manager.redeploys,
            "staleness": self.manager.staleness,
            "confidence_ema": self.manager.confidence_ema,
            "accuracy_ema": self.accuracy_ema,
        }


class _ServeActor:
    """Thin adapter: the serve loop as a schedulable actor."""

    name = "serve"

    def __init__(self, service: "PrefetchService") -> None:
        self._service = service

    def step(self) -> bool:
        return self._service.serve_once()


class _TrainerActor:
    """Thin adapter: the background trainer as a schedulable actor."""

    name = "trainer"

    def __init__(self, service: "PrefetchService") -> None:
        self._service = service

    def step(self) -> bool:
        return self._service.train_once()


class PrefetchService:
    """The daemon: ring in, batched answers out, shadow training behind.

    Drive it with :class:`~repro.serve.loop.ThreadScheduler` (production)
    or :class:`~repro.serve.loop.VirtualScheduler` (deterministic tests)
    via :meth:`actors`; or synchronously via :func:`replay_lockstep`.
    """

    def __init__(self, config: ServeConfig = ServeConfig(), *,
                 clock: Clock | None = None,
                 telemetry: Telemetry | None = None,
                 faults: FaultPlan | None = None) -> None:
        self.config = config
        self.clock: Clock = clock if clock is not None else RealClock()
        self.telemetry = telemetry
        self.faults = faults if faults is not None else FaultPlan()
        self._prototype = SparseHebbianNetwork(
            HebbianConfig(vocab_size=config.vocab_size, seed=config.seed))
        self._fleet: HebbianFleet | None = (
            HebbianFleet(self._prototype, n_lanes=8, reserve=True)
            if config.stacked else None)
        self.ring: EventRing[ServeEvent] = EventRing(config.ring_capacity)
        self.batcher = RequestBatcher(config.max_batch)
        self._train_queue: EventRing[_TrainTask] = EventRing(
            config.train_queue_capacity)
        self._lanes: dict[int, TenantLane] = {}
        self._lane_seeds: tuple[int, ...] = ()
        self._backlog: deque[ServeEvent] = deque()
        self._staged: list[tuple[TenantLane, _Staged]] = []
        self._submit_lock = threading.Lock()
        self._sequence = 0
        self.events_submitted = 0
        self.fault_dropped = 0
        self.events_started = 0
        self.events_processed = 0
        self.queries_answered = 0
        self.forced_swaps = 0
        self.poison_injected = 0
        self.total_trained = 0
        self.latencies: list[float] = []

    # -- client surface ---------------------------------------------------
    def submit_miss(self, tenant: int, address: int,
                    timestamp: int = 0) -> bool:
        """Offer one miss event; False when dropped (fault or ring)."""
        with self._submit_lock:
            sequence = self._sequence
            self._sequence += 1
            self.events_submitted += 1
            if self.faults.drops(sequence):
                self.fault_dropped += 1
                return False
            return self.ring.push(ServeEvent(tenant, address, timestamp))

    def query(self, tenant: int) -> QueryTicket:
        """Ask for prefetch pages; resolves when the serve actor answers."""
        return self.batcher.submit(tenant, self.clock.now())

    def actors(self) -> list[Actor]:
        """The service's schedulable actors (serve loop, trainer)."""
        return [_ServeActor(self), _TrainerActor(self)]

    def lane(self, tenant: int) -> TenantLane:
        """The tenant's lane, created on first contact."""
        lane = self._lanes.get(tenant)
        if lane is None:
            lane = self._make_lane(tenant)
            self._lanes[tenant] = lane
        return lane

    # -- the serve actor's round ------------------------------------------
    def serve_once(self) -> bool:
        """One serve step: finish a staged round, else stage a new one,
        else answer a query batch.  Finishing before re-staging keeps a
        tenant's events strictly ordered through the two sub-steps."""
        if self._staged:
            self._finish_round()
            return True
        if self._stage_round():
            return True
        return self._answer_round()

    def _stage_round(self) -> bool:
        backlog = self._backlog
        if not backlog:
            backlog.extend(self.ring.pop_up_to(self.config.max_batch))
        if not backlog:
            return False
        staged: list[tuple[TenantLane, _Staged]] = []
        rest: deque[ServeEvent] = deque()
        seen: set[int] = set()
        max_batch = self.config.max_batch
        for event in backlog:
            # One in-flight event per tenant per round: the second event
            # must not stage before the first finishes (per-tenant FIFO
            # through both sub-steps).  Cross-tenant order is free.
            if event.tenant in seen or len(staged) >= max_batch:
                rest.append(event)
                continue
            seen.add(event.tenant)
            lane = self.lane(event.tenant)
            self.events_started += 1
            item = lane.observe(event.address, event.timestamp)
            if item is None:
                continue
            staged.append((lane, item))
            if item.transition is not None:
                task = _TrainTask(lane, item.transition, item.confidence,
                                  item.train, item.timestamp)
                self._train_queue.push(task)
        self._backlog = rest
        self._staged = staged
        return True

    def _finish_round(self) -> None:
        staged = self._staged
        self._staged = []
        fleet = self._fleet
        for lane, item in staged:
            lane.pre_advance(item, fleet, self.clock)
        if fleet is not None and staged:
            probs = fleet.step_lanes(
                [lane.slot for lane, _ in staged],
                [item.class_id for _, item in staged],
                [False] * len(staged))
            for i, (lane, item) in enumerate(staged):
                lane.post_advance(probs[i], item)
        else:
            for lane, item in staged:
                lane.post_advance(lane.step_scalar(item), item)
        self.events_processed += len(staged)
        if self.telemetry is not None:
            self.telemetry.counter("serve_events_processed", len(staged))

    def _answer_round(self) -> bool:
        batch = self.batcher.take_batch()
        if not batch:
            return False
        fleet = self._fleet
        lanes = {ticket.tenant: self.lane(ticket.tenant) for ticket in batch}
        if self.faults.swap_on_query:
            for lane in lanes.values():
                lane.force_swap(fleet, self.clock)
                self.forced_swaps += 1
        rollouts = self._rollouts(lanes)
        record_checksums = self.config.record_checksums
        for ticket in batch:
            lane = lanes[ticket.tenant]
            pages = lane.answer(rollouts.get(ticket.tenant))
            checksum = (lane.serving_checksum(fleet)
                        if record_checksums else None)
            now = self.clock.now()
            self.batcher.answer(ticket, pages, now, checksum)
            self.queries_answered += 1
            self.latencies.append(now - ticket.submitted_at)
        if self.telemetry is not None:
            self.telemetry.counter("serve_queries_answered", len(batch))
        return True

    def _rollouts(self, lanes: dict[int, TenantLane]) -> dict[int, Rollout]:
        """One rollout per distinct non-gated lane — batched through the
        fleet when stacked (rollouts are read-only, so tickets for the
        same tenant in one batch share the result)."""
        fleet = self._fleet
        live = [(tenant, lane) for tenant, lane in lanes.items()
                if not lane.would_gate()]
        if not live:
            return {}
        if fleet is not None:
            width = self.config.prefetch_width
            length = self.config.prefetch_length
            rolls = fleet.rollout_lanes([lane.slot for _, lane in live],
                                        [width] * len(live),
                                        [length] * len(live))
            return {tenant: roll
                    for (tenant, _), roll in zip(live, rolls)}
        return {tenant: lane.live_rollout() for tenant, lane in live}

    # -- the trainer actor's round ----------------------------------------
    def train_once(self) -> bool:
        """One background-training step, or False when stalled/idle."""
        faults = self.faults
        if (faults.trainer_stall_events
                and self.events_started < faults.trainer_stall_events):
            return False
        task = self._train_queue.pop()
        if task is None:
            return False
        task.lane.train_background(task)
        if task.train:
            self.total_trained += 1
            if (faults.poison_after_trains is not None
                    and self.total_trained == faults.poison_after_trains
                    and self.poison_injected == 0):
                task.lane.poison_shadow()
                self.poison_injected += 1
            if faults.trainer_pause_s:
                # Threaded-mode fault: a slow worker.  No locks are held
                # here, so the pause must never surface in query latency.
                time.sleep(faults.trainer_pause_s)
        if self.telemetry is not None:
            self.telemetry.counter("serve_train_steps")
        return True

    # -- observability -----------------------------------------------------
    def counters(self) -> dict[str, int]:
        """Exact operational counters (the degradation evidence trail)."""
        lanes = self._lanes.values()
        return {
            "tenants": len(self._lanes),
            "events_submitted": self.events_submitted,
            "events_started": self.events_started,
            "events_processed": self.events_processed,
            "ring_dropped": self.ring.dropped,
            "fault_dropped": self.fault_dropped,
            "queries_submitted": self.batcher.submitted,
            "queries_answered": self.batcher.answered,
            "train_steps": self.total_trained,
            "train_tasks_dropped": self._train_queue.dropped,
            "swaps": sum(lane.swaps for lane in lanes),
            "swaps_rejected": sum(lane.swaps_rejected for lane in lanes),
            "forced_swaps": self.forced_swaps,
            "poison_injected": self.poison_injected,
        }

    def latency_percentiles(self) -> dict[str, float]:
        """p50/p99 query latency in milliseconds (clock units)."""
        return _percentiles_ms(self.latencies)

    def swap_pause_percentiles(self) -> dict[str, float]:
        """p50/p99 hot-swap pause in milliseconds (clock units)."""
        pauses = [p for lane in self._lanes.values()
                  for p in lane.swap_pauses]
        return _percentiles_ms(pauses)

    def manifest(self) -> dict:
        """The JSONL head record (provenance + counters + SLO numbers)."""
        spec = {"kind": "serve_run", **asdict(self.config)}
        return build_serve_manifest(
            spec, counters=self.counters(),
            latency=self.latency_percentiles(),
            swap_pause=self.swap_pause_percentiles())

    def write_manifest(self, directory: str | Path) -> Path:
        """Atomically write the service manifest JSONL: one head record,
        then one ``serve_lane`` record per tenant."""
        out_dir = Path(directory)
        out_dir.mkdir(parents=True, exist_ok=True)
        records = [self.manifest()]
        records.extend(self._lanes[tenant].manifest_record()
                       for tenant in sorted(self._lanes))
        path = out_dir / f"serve-{len(self._lanes)}x.jsonl"
        fd, tmp = tempfile.mkstemp(dir=out_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                for record in records:
                    fh.write(json.dumps(record, sort_keys=True))
                    fh.write("\n")
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    # -- internals ---------------------------------------------------------
    def _lane_seed(self, tenant: int) -> int:
        if tenant >= len(self._lane_seeds):
            n = max(tenant + 1, 2 * len(self._lane_seeds), 8)
            self._lane_seeds = spawn_seeds(self.config.seed, n)
        return self._lane_seeds[tenant]

    def _make_lane(self, tenant: int) -> TenantLane:
        config = self.config
        model = self._prototype.clone()
        manager = ShadowModelManager(
            model, redeploy_below=config.redeploy_below,
            ema_alpha=config.ema_alpha, max_staleness=config.max_staleness)
        replay = None
        if config.replay_policy is not None:
            replay = ReplayScheduler(
                policy=make_replay_policy(config.replay_policy),
                per_step=config.replay_per_step,
                lr_scale=config.replay_lr_scale,
                seed=self._lane_seed(tenant))
        lane = TenantLane(tenant, config, manager,
                          make_encoder(config.encoder, config.vocab_size,
                                       config.granularity), replay)
        if self._fleet is not None:
            lane.adopt(self._fleet)
        if config.record_checksums:
            lane.checksum_history.append(lane.serving_checksum(self._fleet))
        return lane


def _percentiles_ms(values: Sequence[float]) -> dict[str, float]:
    if not values:
        return {"p50_ms": 0.0, "p99_ms": 0.0, "n": 0.0}
    arr = np.asarray(values, dtype=float) * 1e3
    return {
        "p50_ms": float(np.percentile(arr, 50)),
        "p99_ms": float(np.percentile(arr, 99)),
        "n": float(arr.size),
    }


def replay_lockstep(service: PrefetchService,
                    events: Iterable[tuple[int, int, int]], *,
                    query_each: bool = True) -> list[list[int]]:
    """Single-threaded deterministic replay of a recorded miss stream.

    Drives the service's own round functions in the canonical order —
    stage, drain the trainer, finish, answer — which serializes the
    concurrent pipeline into exactly the offline
    ``CLSPrefetcher._ingest``/``_predict`` operation order.  The
    differential suite feeds the same stream to ``simulate()`` and
    asserts the answers, learned weights, and confidence EMA are
    bit-identical.

    ``events`` yields ``(tenant, address, timestamp)``; returns one
    answer (prefetch-page list) per event when ``query_each``.
    """
    answers: list[list[int]] = []
    for tenant, address, timestamp in events:
        service.submit_miss(tenant, address, timestamp)
        service.serve_once()            # stage
        while service.train_once():     # drain background training
            pass
        service.serve_once()            # finish
        if query_each:
            ticket = service.query(tenant)
            service.serve_once()        # answer
            if not ticket.done or ticket.pages is None:
                raise RuntimeError("lockstep query left unanswered")
            answers.append(list(ticket.pages))
    return answers
