"""A Leap-style majority-delta prefetcher.

Leap (Al Maruf & Chowdhury, ATC'20) is the standard software prefetcher
for remote/disaggregated memory — the deployment the paper targets in §4.
Its core idea: keep a small window of recent page deltas; if a majority
delta exists, prefetch along it with a dynamically-ramped degree
(doubling on success up to a cap, backing off otherwise).  It generalizes
stride detection to "mostly strided" streams without any learning, so it
is the right non-neural yardstick for the disaggregated experiments.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field

from ..memsim.events import MissEvent


@dataclass
class LeapPrefetcher:
    """Majority-delta detection with multiplicative degree ramp.

    Attributes:
        window: Recent deltas considered for the majority vote.
        max_degree: Upper bound on the prefetch degree ramp.
        majority_fraction: Fraction of the window a delta must win to
            count as the majority trend.
    """

    window: int = 8
    max_degree: int = 8
    majority_fraction: float = 0.5
    name: str = field(default="", repr=False)

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ValueError("window must be >= 2")
        if self.max_degree < 1:
            raise ValueError("max_degree must be >= 1")
        if not 0 < self.majority_fraction <= 1:
            raise ValueError("majority_fraction must be in (0, 1]")
        if not self.name:
            self.name = f"leap{self.max_degree}"
        self._deltas: dict[int, deque[int]] = {}
        self._last_page: dict[int, int] = {}
        self._degree: dict[int, int] = {}

    def on_miss(self, event: MissEvent) -> list[int]:
        return self.on_miss_fast(event.index, event.address, event.page,
                                 event.stream_id, event.timestamp)

    def on_miss_fast(self, index: int, address: int, page: int,
                     stream_id: int, timestamp: int) -> list[int]:
        del index, address, timestamp
        stream = stream_id
        history = self._deltas.setdefault(stream, deque(maxlen=self.window))
        last = self._last_page.get(stream)
        self._last_page[stream] = page
        if last is not None:
            delta = page - last
            if delta != 0:
                history.append(delta)
        if len(history) < 2:
            return []

        majority = self._majority(history)
        if majority is None:
            self._degree[stream] = 1
            return []

        # ramp: double the degree while the trend persists
        degree = min(self.max_degree, self._degree.get(stream, 1) * 2)
        self._degree[stream] = degree
        return [page + majority * i for i in range(1, degree + 1)
                if page + majority * i >= 0]

    def _majority(self, history: deque[int]) -> int | None:
        delta, count = Counter(history).most_common(1)[0]
        if count >= max(2, int(self.majority_fraction * len(history))):
            return delta
        return None
