"""Baseline prefetch policies (non-learning comparators + oracle bound)."""

from ..memsim.prefetcher import NullPrefetcher
from .classic import (
    MarkovPrefetcher,
    NextLinePrefetcher,
    RandomPrefetcher,
    StridePrefetcher,
)
from .leap import LeapPrefetcher
from .oracle import OracleWindowPrefetcher

__all__ = [
    "NullPrefetcher",
    "MarkovPrefetcher",
    "NextLinePrefetcher",
    "RandomPrefetcher",
    "StridePrefetcher",
    "LeapPrefetcher",
    "OracleWindowPrefetcher",
]
