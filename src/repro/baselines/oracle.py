"""An oracle prefetcher: the upper bound on what learning could achieve.

Given the whole trace ahead of time, on every miss it prefetches the next
``degree`` distinct future pages.  No realizable prefetcher can remove
more misses at the same degree and timeliness, so experiment reports use
it to show how much headroom the learning prefetchers leave.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..memsim.events import MissEvent
from ..patterns.trace import Trace


@dataclass
class OracleWindowPrefetcher:
    """Future-knowledge prefetcher over a fixed trace.

    Attributes:
        trace: The trace that will be simulated (must be the same one).
        degree: Distinct future pages prefetched per miss.
        page_size: Must match the simulator's page size.
    """

    trace: Trace
    degree: int = 2
    page_size: int = 4096
    name: str = field(default="", repr=False)

    def __post_init__(self) -> None:
        if self.degree < 1:
            raise ValueError("degree must be >= 1")
        if not self.name:
            self.name = f"oracle{self.degree}"
        self._pages = self.trace.pages(self.page_size)

    def on_miss(self, event: MissEvent) -> list[int]:
        return self.on_miss_fast(event.index, event.address, event.page,
                                 event.stream_id, event.timestamp)

    def on_miss_fast(self, index: int, address: int, page: int,
                     stream_id: int, timestamp: int) -> list[int]:
        del address, stream_id, timestamp
        picks: list[int] = []
        seen = {page}
        i = index + 1
        n = len(self._pages)
        while i < n and len(picks) < self.degree:
            nxt = int(self._pages[i])
            if nxt not in seen:
                seen.add(nxt)
                picks.append(nxt)
            i += 1
        return picks
