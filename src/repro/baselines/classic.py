"""Classic non-learning prefetchers.

The paper's framing (§1): "early prefetchers targeted patterns that were
easy to capture, such as strides, and were sufficient for well-understood
applications ... systems and applications today are far more complex and
dynamic, rendering simple approaches ineffective."  These baselines make
that claim measurable next to the learning prefetchers.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..memsim.events import MissEvent


@dataclass
class NextLinePrefetcher:
    """Prefetch the next ``degree`` sequential pages after every miss."""

    degree: int = 1
    name: str = field(default="", repr=False)

    def __post_init__(self) -> None:
        if self.degree < 1:
            raise ValueError("degree must be >= 1")
        if not self.name:
            self.name = f"nextline{self.degree}"

    def on_miss(self, event: MissEvent) -> list[int]:
        return self.on_miss_fast(event.index, event.address, event.page,
                                 event.stream_id, event.timestamp)

    def on_miss_fast(self, index: int, address: int, page: int,
                     stream_id: int, timestamp: int) -> list[int]:
        del index, address, stream_id, timestamp
        return [page + i for i in range(1, self.degree + 1)]


@dataclass
class StridePrefetcher:
    """Confidence-counted stride detection, per stream.

    Tracks the last page and last delta per stream id; after ``threshold``
    consecutive repeats of the same delta it prefetches ``degree`` pages
    ahead along the stride.
    """

    degree: int = 2
    threshold: int = 2
    name: str = field(default="", repr=False)
    _state: dict[int, tuple[int, int, int]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.degree < 1 or self.threshold < 1:
            raise ValueError("degree and threshold must be >= 1")
        if not self.name:
            self.name = f"stride{self.degree}"

    def on_miss(self, event: MissEvent) -> list[int]:
        return self.on_miss_fast(event.index, event.address, event.page,
                                 event.stream_id, event.timestamp)

    def on_miss_fast(self, index: int, address: int, page: int,
                     stream_id: int, timestamp: int) -> list[int]:
        del index, address, timestamp
        last_page, last_delta, confidence = self._state.get(
            stream_id, (page, 0, 0))
        delta = page - last_page
        if delta != 0 and delta == last_delta:
            confidence += 1
        elif delta != 0:
            last_delta, confidence = delta, 1
        self._state[stream_id] = (page, last_delta, confidence)
        if confidence >= self.threshold and last_delta != 0:
            return [page + last_delta * i for i in range(1, self.degree + 1)]
        return []


@dataclass
class MarkovPrefetcher:
    """First-order correlation (Markov) prefetcher over miss pages.

    Keeps a bounded LRU table page -> successor counts; on a miss it
    prefetches the ``degree`` most frequent recorded successors.
    """

    degree: int = 2
    table_size: int = 4096
    successors_per_entry: int = 8
    name: str = field(default="", repr=False)
    _table: OrderedDict = field(default_factory=OrderedDict, repr=False)
    _prev_page: int | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.degree < 1 or self.table_size < 1:
            raise ValueError("degree and table_size must be >= 1")
        if not self.name:
            self.name = f"markov{self.degree}"

    def on_miss(self, event: MissEvent) -> list[int]:
        return self.on_miss_fast(event.index, event.address, event.page,
                                 event.stream_id, event.timestamp)

    def on_miss_fast(self, index: int, address: int, page: int,
                     stream_id: int, timestamp: int) -> list[int]:
        del index, address, stream_id, timestamp
        if self._prev_page is not None:
            self._record(self._prev_page, page)
        self._prev_page = page

        successors = self._table.get(page)
        if not successors:
            return []
        self._table.move_to_end(page)
        ranked = sorted(successors.items(), key=lambda kv: kv[1], reverse=True)
        return [succ for succ, _count in ranked[: self.degree]]

    def _record(self, prev: int, nxt: int) -> None:
        entry = self._table.get(prev)
        if entry is None:
            if len(self._table) >= self.table_size:
                self._table.popitem(last=False)
            entry = self._table[prev] = {}
        self._table.move_to_end(prev)
        entry[nxt] = entry.get(nxt, 0) + 1
        if len(entry) > self.successors_per_entry:
            weakest = min(entry, key=entry.get)
            del entry[weakest]


@dataclass
class RandomPrefetcher:
    """Prefetch random nearby pages — the sanity-check control."""

    degree: int = 1
    radius: int = 32
    seed: int = 0
    name: str = field(default="", repr=False)

    def __post_init__(self) -> None:
        if self.degree < 1 or self.radius < 1:
            raise ValueError("degree and radius must be >= 1")
        if not self.name:
            self.name = f"random{self.degree}"
        self._rng = np.random.default_rng(self.seed)

    def on_miss(self, event: MissEvent) -> list[int]:
        return self.on_miss_fast(event.index, event.address, event.page,
                                 event.stream_id, event.timestamp)

    def on_miss_fast(self, index: int, address: int, page: int,
                     stream_id: int, timestamp: int) -> list[int]:
        del index, address, stream_id, timestamp
        offsets = self._rng.integers(-self.radius, self.radius + 1, size=self.degree)
        return [max(0, page + int(o)) for o in offsets if o != 0]
