"""The hippocampal store (Figure 4's fast learner).

CLS theory's hippocampus does three things the paper leans on:

1. **Episodic storage** — quickly memorize experiences (here: encoded miss
   transitions) so they can be replayed into the slow learner later
   (§3.2).  :class:`EpisodicStore` holds those episodes, grouped by phase.
2. **Pattern separation** — store similar experiences under nearly
   orthogonal sparse codes so they do not overwrite one another [35, 36].
3. **Pattern completion** — recall a whole stored association from a
   partial or noisy cue.  :class:`SparseAssociativeMemory` implements both
   over k-sparse binary codes with a Willshaw-style binary weight matrix.

The paper deliberately defers a resource-bounded hippocampus ("we will
focus on showing the benefits of replay ... without resource limitations
on the hippocampal storage"), so the default store is unbounded; bounded
variants live in ``repro.core.replay``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Episode:
    """One stored miss transition.

    Attributes:
        input_class: Encoded class of the earlier miss.
        target_class: Encoded class of the following miss.
        phase_id: Phase the transition was observed in (-1 = unknown).
        confidence: Model confidence on the target when stored (drives the
            confidence-filtered policies of §5.1/§5.4).
        timestamp: Logical time of the target miss.
    """

    input_class: int
    target_class: int
    phase_id: int = -1
    confidence: float = 0.0
    timestamp: int = 0


@dataclass
class EpisodicStore:
    """Episode storage, unbounded by default, FIFO-bounded when capped.

    Selection must stay O(1)-ish per miss (replay runs inside the miss
    path), so sampling with a phase exclusion uses bounded rejection
    sampling rather than materializing filtered pools.
    """

    capacity: int | None = None
    stored_total: int = 0
    evicted_total: int = 0

    def __post_init__(self) -> None:
        if self.capacity is not None and self.capacity <= 0:
            raise ValueError("capacity must be positive (or None for unbounded)")
        self._episodes: deque[Episode] | list[Episode]
        # Parallel phase ids, so rejection sampling filters on plain ints
        # instead of touching Episode objects for rejected draws.
        self._phase_ids: deque[int] | list[int]
        # Per-phase occupancy, so sampling can recognize the
        # everything-excluded case without scanning any draws.
        self._phase_counts: dict[int, int] = {}
        if self.capacity is None:
            self._episodes = []
            self._phase_ids = []
        else:
            self._episodes = deque(maxlen=self.capacity)
            self._phase_ids = deque(maxlen=self.capacity)

    def __len__(self) -> int:
        return len(self._episodes)

    def store(self, episode: Episode) -> None:
        counts = self._phase_counts
        if self.capacity is not None and len(self._episodes) == self.capacity:
            self.evicted_total += 1
            old = self._phase_ids[0]  # the deques evict FIFO on append
            left = counts[old] - 1
            if left:
                counts[old] = left
            else:
                del counts[old]
        self._episodes.append(episode)
        self._phase_ids.append(episode.phase_id)
        counts[episode.phase_id] = counts.get(episode.phase_id, 0) + 1
        self.stored_total += 1

    def telemetry_counters(self) -> dict[str, int | float]:
        """Named counters for the telemetry sink (ints: monotone; floats:
        gauges)."""
        return {
            "episodes_stored": self.stored_total,
            "episodes_evicted": self.evicted_total,
            "episodes_held": float(len(self._episodes)),
        }

    def episodes(self, phase_id: int | None = None) -> list[Episode]:
        if phase_id is None:
            return list(self._episodes)
        return [e for e in self._episodes if e.phase_id == phase_id]

    def phases(self) -> list[int]:
        return sorted({e.phase_id for e in self._episodes})

    def sample(self, rng: np.random.Generator, n: int,
               exclude_phase: int | None = None,
               max_attempts_per_pick: int = 8) -> list[Episode]:
        """Sample up to ``n`` episodes uniformly, rejecting one phase.

        Rejection attempts are bounded, so when nearly everything stored
        belongs to the excluded phase the call returns fewer episodes
        instead of stalling the miss path.
        """
        size = len(self._episodes)
        if size == 0 or n <= 0:
            return []
        # One vectorized draw regardless of path, so the RNG stream (and
        # therefore every selection) is identical to the rejection loop's.
        attempts = n * max_attempts_per_pick
        draws = rng.integers(0, size, size=attempts)
        episodes = self._episodes
        if exclude_phase is None:
            # Nothing to reject: the first n draws are the picks.
            return [episodes[idx] for idx in draws[:n].tolist()]
        if self._phase_counts.get(exclude_phase, 0) == size:
            # Every stored episode is in the excluded phase, so the
            # rejection loop could only come up empty.  (The draw above
            # already happened, keeping the RNG stream identical.)
            return []
        out: list[Episode] = []
        phase_ids = self._phase_ids
        for idx in draws.tolist():
            if phase_ids[idx] != exclude_phase:
                out.append(episodes[idx])
                if len(out) == n:
                    break
        return out


class SparseAssociativeMemory:
    """Willshaw-style hetero-associative memory over k-sparse codes.

    Keys and values are sets of active unit indices (k-sparse binary
    vectors).  ``store`` ORs the outer product into a binary weight matrix;
    ``complete`` recalls the value units whose support from the cue clears
    a threshold — recovering the full stored value from a partial cue
    (pattern completion), while the sparse random codes keep distinct
    memories from colliding (pattern separation).
    """

    def __init__(self, key_dim: int, value_dim: int, value_k: int,
                 threshold_fraction: float = 0.5) -> None:
        if min(key_dim, value_dim, value_k) <= 0:
            raise ValueError("dimensions must be positive")
        if not 0 < threshold_fraction <= 1:
            raise ValueError("threshold_fraction must be in (0, 1]")
        self.key_dim = key_dim
        self.value_dim = value_dim
        self.value_k = value_k
        self.threshold_fraction = threshold_fraction
        self.weights = np.zeros((key_dim, value_dim), dtype=bool)
        self.stored = 0

    def store(self, key_active: np.ndarray, value_active: np.ndarray) -> None:
        key_active = np.asarray(key_active, dtype=np.int64)
        value_active = np.asarray(value_active, dtype=np.int64)
        self._check(key_active, self.key_dim, "key")
        self._check(value_active, self.value_dim, "value")
        self.weights[np.ix_(key_active, value_active)] = True
        self.stored += 1

    def complete(self, cue_active: np.ndarray) -> np.ndarray:
        """Recall the value code for a (possibly partial) key cue."""
        cue_active = np.asarray(cue_active, dtype=np.int64)
        self._check(cue_active, self.key_dim, "cue")
        if cue_active.size == 0:
            return np.zeros(0, dtype=np.int64)
        support = self.weights[cue_active].sum(axis=0)
        threshold = self.threshold_fraction * cue_active.size
        candidates = np.flatnonzero(support >= threshold)
        if candidates.size <= self.value_k:
            return candidates
        order = np.argsort(support[candidates])[::-1]
        return np.sort(candidates[order[: self.value_k]])

    def density(self) -> float:
        """Fraction of weights set — the memory's fill level."""
        return float(self.weights.mean())

    @staticmethod
    def _check(active: np.ndarray, dim: int, label: str) -> None:
        if active.size and (active.min() < 0 or active.max() >= dim):
            raise ValueError(f"{label} indices out of range [0, {dim})")
