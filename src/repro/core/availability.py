"""Availability of a model that is trained and queried concurrently (§5.5).

Training mutates weights, so a live model's inference can race its own
updates.  §5.5 motivates "a protocol where training is applied to a
separate model copy, which is later redeployed when the live model's
confidence/accuracy decreases" — :class:`ShadowModelManager` implements
exactly that.  §5.5 also conjectures that simpler schemes may suffice
because networks are noise-robust; :func:`weight_noise_robustness`
measures that conjecture directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn.base import SequenceModel
from ..nn.hebbian import SparseHebbianNetwork
from ..nn.lstm import OnlineLSTM


@dataclass
class ShadowModelManager:
    """Train a shadow copy; serve inference from a stable live copy.

    Inference always hits :attr:`live`.  Training goes to :attr:`shadow`.
    The live model's recent confidence is tracked with an exponential
    moving average; when it falls below ``redeploy_below`` (or every
    ``max_staleness`` training steps as a backstop), the shadow is
    redeployed as the new live model.

    Attributes:
        model: The initial model; becomes the first live copy.
        redeploy_below: EMA-confidence threshold that triggers redeploy.
        ema_alpha: Smoothing for the confidence EMA.
        max_staleness: Redeploy at least this often (training steps).
    """

    model: SequenceModel
    redeploy_below: float = 0.5
    ema_alpha: float = 0.05
    max_staleness: int = 256
    live: SequenceModel = field(init=False)
    shadow: SequenceModel = field(init=False)
    confidence_ema: float = field(default=1.0, init=False)
    redeploys: int = field(default=0, init=False)
    _staleness: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not 0 < self.ema_alpha <= 1:
            raise ValueError("ema_alpha must be in (0, 1]")
        if self.max_staleness < 1:
            raise ValueError("max_staleness must be >= 1")
        self.live = self.model
        self.shadow = self.model.clone()

    def infer(self, input_class: int) -> np.ndarray:
        """Serve a prediction from the live copy (never trains it)."""
        return self.live.step(input_class, train=False)

    def observe(self, input_class: int, target_class: int,
                lr_scale: float = 1.0) -> float:
        """Record an observed transition: score the live copy, train the
        shadow, and redeploy if the live copy has degraded.

        Returns the live model's confidence on the observed target.
        """
        live_probs = self.live.step(input_class, train=False)
        confidence = float(live_probs[target_class])
        self.note_confidence(confidence)
        self.train_shadow(input_class, target_class, lr_scale=lr_scale)
        if self.should_redeploy():
            self.redeploy()
        return confidence

    # Lower-level pieces, for callers (like CLSPrefetcher) that manage the
    # live model's streaming state themselves.
    def note_confidence(self, confidence: float) -> None:
        self.confidence_ema = ((1 - self.ema_alpha) * self.confidence_ema
                               + self.ema_alpha * confidence)

    def train_shadow(self, input_class: int, target_class: int,
                     lr_scale: float = 1.0) -> None:
        self.shadow.train_pair(input_class, target_class, lr_scale=lr_scale)
        self._staleness += 1

    def should_redeploy(self) -> bool:
        return (self.confidence_ema < self.redeploy_below
                or self._staleness >= self.max_staleness)

    def redeploy(self) -> None:
        """Promote the shadow to live; fork a fresh shadow from it."""
        self.live = self.shadow
        self.shadow = self.live.clone()
        self.redeploys += 1
        self._staleness = 0
        self.confidence_ema = max(self.confidence_ema, self.redeploy_below)

    def discard_shadow(self) -> None:
        """Throw the shadow's training away; refork it from live.

        The escape hatch for a corrupted shadow (e.g. a poisoned update
        caught by :func:`weights_finite` at swap admission): the live
        copy keeps serving untouched and background training restarts
        from its weights.  Resets the staleness backstop — the discarded
        steps no longer count toward a forced redeploy.
        """
        self.shadow = self.live.clone()
        self._staleness = 0

    @property
    def staleness(self) -> int:
        """Training steps absorbed by the shadow since the last swap."""
        return self._staleness


def weights_finite(model: SequenceModel) -> bool:
    """True iff every learned weight of ``model`` is finite.

    The swap admission check of the serving layer: a shadow that picked
    up a NaN/inf (hardware fault, poisoned update) must never be
    promoted to live.
    """
    if isinstance(model, OnlineLSTM):
        return all(bool(np.isfinite(values).all())
                   for values in model.net.params.values())
    if isinstance(model, SparseHebbianNetwork):
        return bool(np.isfinite(model.w_out).all())
    raise TypeError(f"don't know how to validate {type(model).__name__}")


def perturb_weights(model: SequenceModel, sigma: float,
                    seed: int = 0) -> SequenceModel:
    """A copy of ``model`` with Gaussian weight noise of scale ``sigma``.

    ``sigma`` is relative: each weight tensor is perturbed by
    ``N(0, sigma * std(tensor))``, so the same setting is meaningful for
    both model families.
    """
    if not isinstance(model, (OnlineLSTM, SparseHebbianNetwork)):
        raise TypeError(f"don't know how to perturb {type(model).__name__}")
    rng = np.random.default_rng(seed)
    twin = model.clone()
    if isinstance(twin, OnlineLSTM):
        for key, values in twin.net.params.items():
            scale = sigma * (float(values.std()) or 1.0)
            twin.net.params[key] = values + rng.normal(0.0, scale, size=values.shape)
    elif isinstance(twin, SparseHebbianNetwork):
        scale = sigma * (float(twin.w_out.std()) or 1.0)
        noise = rng.normal(0.0, scale, size=twin.w_out.shape)
        twin.w_out = np.where(twin.mask_out, twin.w_out + noise, twin.w_out)
    return twin


def weight_noise_robustness(model: SequenceModel, classes: list[int],
                            sigmas: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.5),
                            seed: int = 0) -> dict[float, float]:
    """Confidence on ``classes`` under increasing weight noise (§5.5).

    Returns {sigma: mean confidence}.  A flat curve at small sigma is the
    noise-robustness §5.5 hopes allows inference concurrent with training.
    """
    return {
        sigma: perturb_weights(model, sigma, seed=seed).evaluate_sequence(classes)
        for sigma in sigmas
    }
