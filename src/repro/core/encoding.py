"""Encoding miss streams into model vocabularies (§5.3).

Both networks predict over a fixed class vocabulary, so the choice of what
a "class" means is the prefetcher's input representation.  The paper
discusses (§5.3) that most prior work encodes *address deltas* — effective
for strided and repeated-structure patterns but a "poor proxy" for
pointer-based applications — and sketches alternatives closer to how
addresses flow through data structures.

Implemented encoders:

- :class:`DeltaVocabEncoder` — classes are the most recently *first-seen*
  address deltas (bounded vocabulary, out-of-vocabulary deltas map to a
  reserved non-prefetchable class).  This is the representation used by the
  LSTM literature the paper builds on [18, 30, 40].
- :class:`PageVocabEncoder` — classes name the touched units (pages or
  nodes) themselves, so the model learns unit -> successor-unit
  associations: a simple "logically close" pointer representation in the
  spirit of §5.3's vector-navigation analogy.

Both are deterministic, online (the vocabulary is built from the stream),
and decode predictions back to byte addresses.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np

#: Reserved class for anything the encoder cannot (or refuses to) name.
#: Models may predict it, but it never decodes to a prefetchable address.
OOV_CLASS = 0


def _unit_shift(granularity: int) -> int:
    if granularity <= 0 or granularity & (granularity - 1):
        raise ValueError("granularity must be a positive power of two")
    return granularity.bit_length() - 1


@dataclass
class DeltaVocabEncoder:
    """Online address-delta vocabulary encoder.

    Attributes:
        vocab_size: Total classes including the OOV class.
        granularity: Bytes per unit; deltas are measured in units (use the
            page size for page-level prefetching, the element size for
            data-structure-level experiments).
        collapse_repeats: Skip observations that stay within the previous
            unit (returning None), so the class stream describes *unit
            transitions*.  Without this, page-granularity demand streams
            drown in zero-deltas (dozens of accesses per page) and the
            transition signal a prefetcher needs disappears.
    """

    vocab_size: int = 128
    granularity: int = 4096
    collapse_repeats: bool = True
    _delta_to_class: dict[int, int] = field(default_factory=dict, repr=False)
    _class_to_delta: dict[int, int] = field(default_factory=dict, repr=False)
    _prev_unit: int | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.vocab_size < 2:
            raise ValueError("vocab_size must be at least 2 (OOV + 1 delta)")
        self._shift = _unit_shift(self.granularity)

    # ------------------------------------------------------------------
    def observe(self, address: int) -> int | None:
        """Encode the delta from the previous observed address.

        Returns the class id, or None for the very first observation (no
        delta exists yet).
        """
        unit = address >> self._shift
        prev = self._prev_unit
        if prev is None:
            self._prev_unit = unit
            return None
        if self.collapse_repeats and unit == prev:
            return None
        self._prev_unit = unit
        delta = unit - prev
        cls = self._delta_to_class.get(delta)
        if cls is None:
            if len(self._delta_to_class) < self.vocab_size - 1:
                cls = len(self._delta_to_class) + 1
                self._delta_to_class[delta] = cls
                self._class_to_delta[cls] = delta
            else:
                cls = OOV_CLASS
        return cls

    def decode(self, class_id: int, base_address: int) -> int | None:
        """Predicted address for ``class_id`` relative to ``base_address``."""
        delta = self._class_to_delta.get(class_id)
        if delta is None:
            return None
        unit = (base_address >> self._shift) + delta
        if unit < 0:
            return None
        return unit << self._shift

    def reset_stream(self) -> None:
        """Forget the previous address but keep the learned vocabulary."""
        self._prev_unit = None

    @property
    def known_deltas(self) -> int:
        return len(self._delta_to_class)


@dataclass
class PageVocabEncoder:
    """Unit-identity encoder: classes name the touched pages/nodes.

    Works when the structure being traversed is small enough to name inside
    the vocabulary (per-node prefetchers in the disaggregated setting, §4);
    unlike deltas it survives pointer-heavy layouts where successive
    addresses share no arithmetic relation.
    """

    vocab_size: int = 128
    granularity: int = 4096
    collapse_repeats: bool = True
    _unit_to_class: dict[int, int] = field(default_factory=dict, repr=False)
    _class_to_unit: dict[int, int] = field(default_factory=dict, repr=False)
    _prev_unit: int | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.vocab_size < 2:
            raise ValueError("vocab_size must be at least 2")
        self._shift = _unit_shift(self.granularity)

    def observe(self, address: int) -> int | None:
        unit = address >> self._shift
        if self.collapse_repeats and unit == self._prev_unit:
            return None
        self._prev_unit = unit
        cls = self._unit_to_class.get(unit)
        if cls is None:
            if len(self._unit_to_class) < self.vocab_size - 1:
                cls = len(self._unit_to_class) + 1
                self._unit_to_class[unit] = cls
                self._class_to_unit[cls] = unit
            else:
                cls = OOV_CLASS
        return cls

    def decode(self, class_id: int, base_address: int) -> int | None:
        del base_address  # identity encoding is absolute
        unit = self._class_to_unit.get(class_id)
        if unit is None:
            return None
        return unit << self._shift

    def reset_stream(self) -> None:
        """Forget the previous unit but keep the learned vocabulary."""
        self._prev_unit = None

    @property
    def known_units(self) -> int:
        return len(self._unit_to_class)


@dataclass
class RegionDeltaEncoder:
    """Per-region delta encoder: deltas measured *within* address regions.

    §5.3 argues the input representation should reflect how addresses
    "flow at the data structure level".  Distinct data structures live in
    distinct address regions (an edge array, a vertex array, a heap
    arena); when accesses to them interleave, a flat delta encoder sees
    huge cross-structure jumps that carry no information.  This encoder
    splits the address space into regions (high address bits) and encodes
    each access as (region, delta from the *previous access in the same
    region*) — recovering each structure's clean stride/jump pattern from
    the interleaved stream.

    Decoding uses the tracked per-region cursor: class (R, d) names the
    unit ``last_unit[R] + d``.

    Attributes:
        vocab_size: Total classes including OOV.
        granularity: Bytes per unit.
        region_bits: A region spans ``2**region_bits`` units (default:
            4096 units = 16 MiB of 4 KiB pages).
        collapse_repeats: Skip observations that stay within the previous
            unit of their region.
    """

    vocab_size: int = 128
    granularity: int = 4096
    region_bits: int = 12
    collapse_repeats: bool = True
    _pair_to_class: dict[tuple[int, int], int] = field(default_factory=dict,
                                                       repr=False)
    _class_to_pair: dict[int, tuple[int, int]] = field(default_factory=dict,
                                                       repr=False)
    _region_cursor: dict[int, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.vocab_size < 2:
            raise ValueError("vocab_size must be at least 2")
        if self.region_bits < 1:
            raise ValueError("region_bits must be positive")
        self._shift = _unit_shift(self.granularity)

    def observe(self, address: int) -> int | None:
        unit = address >> self._shift
        region = unit >> self.region_bits
        prev = self._region_cursor.get(region)
        if prev is None:
            self._region_cursor[region] = unit
            return None
        if self.collapse_repeats and unit == prev:
            return None
        self._region_cursor[region] = unit
        delta = unit - prev
        key = (region, delta)
        cls = self._pair_to_class.get(key)
        if cls is None:
            if len(self._pair_to_class) < self.vocab_size - 1:
                cls = len(self._pair_to_class) + 1
                self._pair_to_class[key] = cls
                self._class_to_pair[cls] = key
            else:
                cls = OOV_CLASS
        return cls

    def decode(self, class_id: int, base_address: int) -> int | None:
        """Predicted address: the class's region cursor plus its delta."""
        del base_address  # per-region cursors carry the positional state
        pair = self._class_to_pair.get(class_id)
        if pair is None:
            return None
        region, delta = pair
        cursor = self._region_cursor.get(region)
        if cursor is None:
            return None
        unit = cursor + delta
        if unit < 0 or (unit >> self.region_bits) != region:
            return None  # prediction would leave its structure's region
        return unit << self._shift

    def reset_stream(self) -> None:
        """Forget positions but keep the learned vocabulary."""
        self._region_cursor.clear()

    @property
    def known_pairs(self) -> int:
        return len(self._pair_to_class)


Encoder = DeltaVocabEncoder | PageVocabEncoder | RegionDeltaEncoder


def make_encoder(kind: str, vocab_size: int = 128, granularity: int = 4096) -> Encoder:
    """Factory: ``kind`` is "delta", "page" or "region"."""
    if kind == "delta":
        return DeltaVocabEncoder(vocab_size=vocab_size, granularity=granularity)
    if kind == "page":
        return PageVocabEncoder(vocab_size=vocab_size, granularity=granularity)
    if kind == "region":
        return RegionDeltaEncoder(vocab_size=vocab_size, granularity=granularity)
    raise ValueError(
        f"unknown encoder kind {kind!r}; expected 'delta', 'page' or 'region'")


def classify_addresses(encoder: Encoder, addresses: Iterable[int] | np.ndarray) -> list[int]:
    """Encode a whole address sequence; drops the leading None."""
    out: list[int] = []
    for address in addresses:
        cls = encoder.observe(int(address))
        if cls is not None:
            out.append(cls)
    return out
