"""Interleaved replay (§3.2) and its storage/selection variants (§5.4).

The paper's protocol: after each training/inference step on the *new*
pattern, retrain the network on stored examples of *old* patterns with a
0.1x smaller learning rate.  That interleaving is what prevents
catastrophic interference (Figure 3 d-f).

§5.4 lays out the design space for making replay affordable; each point in
it is a :class:`ReplayPolicy` here:

- :class:`FullReplay` — store everything, sample uniformly (the paper's
  experimental setting: "we assumed that we could store all past
  examples").
- :class:`RingBufferReplay` — fixed-size buffer, oldest evicted.
- :class:`ConfidenceFilteredReplay` — only store examples the model was
  *unsure* about; well-learned cases carry little information.
- :class:`PrototypeReplay` — "average similar examples, producing single
  representative cases": dedupe transitions, weight by frequency.
- :class:`GenerativeReplay` — no storage at all: replay sequences the
  model itself generates (hindsight/simulation replay), trading compute
  for memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol

import numpy as np

from ..nn.base import SequenceModel
from .hippocampus import Episode, EpisodicStore

#: The paper's replay learning-rate scale (§3.2: "0.1x smaller").
REPLAY_LR_SCALE = 0.1


class ReplayPolicy(Protocol):
    """Decides what enters hippocampal storage and what gets replayed."""

    name: str

    def record(self, episode: Episode) -> None:
        """Offer a new episode for storage."""
        ...

    def select(self, rng: np.random.Generator, batch: int,
               exclude_phase: int | None = None) -> list[Episode]:
        """Pick up to ``batch`` episodes to replay.  ``exclude_phase``
        skips the phase currently being learned (replaying the current
        pattern is ordinary training, not interleaving)."""
        ...

    def storage_size(self) -> int:
        """Episodes currently held (the §5.4 storage-cost axis)."""
        ...


@dataclass
class FullReplay:
    """Store every episode; sample uniformly from old phases."""

    name: str = "full"
    store: EpisodicStore = field(default_factory=EpisodicStore)

    def record(self, episode: Episode) -> None:
        self.store.store(episode)

    def select(self, rng: np.random.Generator, batch: int,
               exclude_phase: int | None = None) -> list[Episode]:
        return self.store.sample(rng, batch, exclude_phase=exclude_phase)

    def storage_size(self) -> int:
        return len(self.store)


@dataclass
class RingBufferReplay:
    """Fixed-capacity buffer; §5.4 warns it "could lose important
    information as entries are evicted" — the ablation quantifies that."""

    capacity: int = 256
    name: str = "ring"
    store: EpisodicStore = field(init=False)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        self.store = EpisodicStore(capacity=self.capacity)

    def record(self, episode: Episode) -> None:
        self.store.store(episode)

    def select(self, rng: np.random.Generator, batch: int,
               exclude_phase: int | None = None) -> list[Episode]:
        return self.store.sample(rng, batch, exclude_phase=exclude_phase)

    def storage_size(self) -> int:
        return len(self.store)


@dataclass
class ConfidenceFilteredReplay:
    """Store only low-confidence (information-carrying) episodes (§5.4).

    Attributes:
        confidence_threshold: Episodes the model already predicted with at
            least this confidence are not stored — they are consolidated.
    """

    confidence_threshold: float = 0.9
    name: str = "confidence"
    store: EpisodicStore = field(default_factory=EpisodicStore)

    def record(self, episode: Episode) -> None:
        if episode.confidence < self.confidence_threshold:
            self.store.store(episode)

    def select(self, rng: np.random.Generator, batch: int,
               exclude_phase: int | None = None) -> list[Episode]:
        return self.store.sample(rng, batch, exclude_phase=exclude_phase)

    def storage_size(self) -> int:
        return len(self.store)


@dataclass
class PrototypeReplay:
    """Average similar examples into single representative cases (§5.4).

    Transitions are exact duplicates of one another in our encoded space,
    so "averaging" is deduplication with a frequency weight; selection
    samples proportional to frequency so replay pressure mirrors the
    original distribution at a fraction of the storage.
    """

    name: str = "prototype"

    def __post_init__(self) -> None:
        # Prototypes live in insertion-ordered parallel arrays (counts,
        # phases) plus a key -> slot map, so selection filters and weighs
        # with array ops instead of rebuilding per-key Python lists.  The
        # insertion order matches the old dict iteration order, and counts
        # are exact small integers in float64, so the normalized weights —
        # and therefore every ``rng.choice`` draw — are unchanged bit for
        # bit.
        self._index: dict[tuple[int, int, int], int] = {}
        self._meta: list[Episode] = []
        self._counts = np.zeros(64, dtype=np.float64)
        self._phases = np.zeros(64, dtype=np.int64)

    def record(self, episode: Episode) -> None:
        key = (episode.input_class, episode.target_class, episode.phase_id)
        idx = self._index.get(key)
        if idx is None:
            idx = len(self._meta)
            if idx == self._counts.size:  # amortized doubling
                self._counts = np.concatenate(
                    [self._counts, np.zeros_like(self._counts)])
                self._phases = np.concatenate(
                    [self._phases, np.zeros_like(self._phases)])
            self._index[key] = idx
            self._meta.append(episode)
            self._phases[idx] = episode.phase_id
            self._counts[idx] = 1.0
        else:
            self._counts[idx] += 1.0

    def select(self, rng: np.random.Generator, batch: int,
               exclude_phase: int | None = None) -> list[Episode]:
        filled = len(self._meta)
        if not filled:
            return []
        counts = self._counts[:filled]
        if exclude_phase is None:
            pool = None
            weights = counts
        else:
            pool = np.flatnonzero(self._phases[:filled] != exclude_phase)
            if not pool.size:
                return []
            weights = counts[pool]
        weights = weights / weights.sum()
        picks = rng.choice(weights.size, size=batch, p=weights)
        meta = self._meta
        if pool is None:
            return [meta[int(i)] for i in picks]
        return [meta[int(pool[i])] for i in picks]

    def storage_size(self) -> int:
        return len(self._meta)


@dataclass
class ConsolidatingReplay:
    """Free episodes once replay has consolidated them (§5.4).

    "A more principled approach could save space by ... freeing entries
    that have already been consolidated due to replay, thus not needed
    further learning."  Episodes whose pre-update model confidence at
    replay time reaches ``consolidated_above`` are discarded from storage;
    the store shrinks as the neocortex absorbs its contents.
    """

    consolidated_above: float = 0.9
    name: str = "consolidating"
    consolidated_total: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.consolidated_above <= 1:
            raise ValueError("consolidated_above must be in (0, 1]")
        self._episodes: list[Episode] = []

    def record(self, episode: Episode) -> None:
        self._episodes.append(episode)

    def select(self, rng: np.random.Generator, batch: int,
               exclude_phase: int | None = None) -> list[Episode]:
        pool_indices = [i for i, e in enumerate(self._episodes)
                        if exclude_phase is None or e.phase_id != exclude_phase]
        if not pool_indices:
            return []
        picks = rng.integers(0, len(pool_indices), size=batch)
        return [self._episodes[pool_indices[int(i)]] for i in picks]

    def on_replayed(self, episode: Episode, confidence: float) -> None:
        """Scheduler feedback: free the episode if it is consolidated."""
        if confidence >= self.consolidated_above:
            try:
                self._episodes.remove(episode)
                self.consolidated_total += 1
            except ValueError:  # repro-lint: disable=RL007
                pass  # already freed by an earlier replay of a duplicate

    def storage_size(self) -> int:
        return len(self._episodes)


@dataclass
class GenerativeReplay:
    """Hindsight/simulation replay (§5.4): zero storage.

    Replays sequences the model itself generates: roll the model forward
    from a seed class it has seen, and train on its own (confident)
    predictions, reinforcing existing behaviour instead of recalling
    stored episodes.  Seed classes are the only state kept (one int per
    distinct class, not per example).
    """

    min_confidence: float = 0.5
    rollout_length: int = 4
    name: str = "generative"
    _seed_classes: dict[int, int] = field(default_factory=dict, repr=False)

    def record(self, episode: Episode) -> None:
        self._seed_classes[episode.input_class] = episode.phase_id

    def select(self, rng: np.random.Generator, batch: int,
               exclude_phase: int | None = None) -> list[Episode]:
        """Generative replay has no stored episodes to select."""
        del rng, batch, exclude_phase
        return []

    def generate(self, model: SequenceModel, rng: np.random.Generator,
                 batch: int, exclude_phase: int | None = None
                 ) -> list[tuple[int, int]]:
        """Produce (input, target) pairs from the model's own rollouts."""
        seeds = [c for c, p in self._seed_classes.items()
                 if exclude_phase is None or p != exclude_phase]
        if not seeds:
            return []
        pairs: list[tuple[int, int]] = []
        for _ in range(batch):
            seed = seeds[int(rng.integers(0, len(seeds)))]
            probe = model.clone()
            probe.reset_state()
            current = seed
            for _ in range(self.rollout_length):
                probs = probe.step(current, train=False)
                nxt = int(np.argmax(probs))
                if probs[nxt] < self.min_confidence:
                    break
                pairs.append((current, nxt))
                current = nxt
        return pairs

    def storage_size(self) -> int:
        return len(self._seed_classes)


@dataclass
class ReplayScheduler:
    """Drives interleaved replay around ordinary training (§3.2).

    After every new-pattern training step, call :meth:`step`: the scheduler
    asks the policy for old episodes and retrains the model on them at
    ``lr_scale`` (0.1x by default, the paper's setting).

    Attributes:
        policy: Storage/selection policy.
        per_step: Episodes replayed per new training step.
        lr_scale: Replay learning-rate scale.
        seed: Sampling seed.
    """

    policy: ReplayPolicy
    per_step: int = 1
    lr_scale: float = REPLAY_LR_SCALE
    seed: int = 0
    replayed_total: int = 0
    invocations: int = 0

    def __post_init__(self) -> None:
        if self.per_step < 0:
            raise ValueError("per_step must be >= 0")
        self._rng = np.random.default_rng(self.seed)
        # Per-step invariants of the policy, hoisted off the per-miss path.
        policy = self.policy
        self._generate = (policy.generate
                          if isinstance(policy, GenerativeReplay) else None)
        self._on_replayed = getattr(policy, "on_replayed", None)
        self._select = policy.select

    def record(self, episode: Episode) -> None:
        self.policy.record(episode)

    def step(self, model: SequenceModel, current_phase: int | None = None) -> int:
        """Run one interleaving round; returns the number of replayed pairs."""
        if self.per_step == 0:
            return 0
        self.invocations += 1
        count = 0
        if self._generate is not None:
            pairs = self._generate(model, self._rng, self.per_step,
                                   exclude_phase=current_phase)
            for input_class, target_class in pairs:
                model.train_pair(input_class, target_class, lr_scale=self.lr_scale)
                count += 1
        else:
            episodes = self._select(self._rng, self.per_step,
                                    exclude_phase=current_phase)
            if not episodes:
                return 0
            on_replayed = self._on_replayed
            if on_replayed is None and getattr(
                    model, "train_pairs_sequential_equivalent", False):
                # Batch through train_pairs: the per-pair confidences would
                # be discarded anyway, and the model guarantees the batch
                # matches the sequential loop bit for bit.
                model.train_pairs(
                    [(e.input_class, e.target_class) for e in episodes],
                    lr_scale=self.lr_scale)
                count = len(episodes)
            else:
                for episode in episodes:
                    confidence = model.train_pair(episode.input_class,
                                                  episode.target_class,
                                                  lr_scale=self.lr_scale)
                    if on_replayed is not None:
                        on_replayed(episode, confidence)
                    count += 1
        self.replayed_total += count
        return count

    def select_pairs(self,
                     current_phase: int | None = None
                     ) -> list[tuple[int, int]]:
        """The fleet-path split of :meth:`step`: same bookkeeping, same
        RNG draws, but the *caller* applies the training.

        Valid only for policies the batched fleet path accepts —
        non-generative, no ``on_replayed`` hook — on models whose
        ``train_pairs`` is sequential-equivalent: under those conditions
        ``step`` reduces to ``model.train_pairs(select_pairs(...))``, so
        handing the pairs out lets a fleet fuse the training across
        lanes while every counter and every RNG draw stays identical.
        """
        if self._generate is not None or self._on_replayed is not None:
            raise ValueError("select_pairs requires a non-generative "
                             "policy without an on_replayed hook")
        if self.per_step == 0:
            return []
        self.invocations += 1
        episodes = self._select(self._rng, self.per_step,
                                exclude_phase=current_phase)
        if not episodes:
            return []
        self.replayed_total += len(episodes)
        return [(e.input_class, e.target_class) for e in episodes]

    def telemetry_counters(self) -> dict[str, int | float]:
        """Named counters for the telemetry sink (ints: monotone; floats:
        gauges)."""
        counters: dict[str, int | float] = {
            "replay_invocations": self.invocations,
            "replay_pairs": self.replayed_total,
        }
        store = getattr(self.policy, "store", None)
        if isinstance(store, EpisodicStore):
            counters.update(store.telemetry_counters())
        return counters


def make_replay_policy(kind: str, **kwargs: Any) -> ReplayPolicy:
    """Factory over the §5.4 design space."""
    policies = {
        "full": FullReplay,
        "ring": RingBufferReplay,
        "confidence": ConfidenceFilteredReplay,
        "prototype": PrototypeReplay,
        "consolidating": ConsolidatingReplay,
        "generative": GenerativeReplay,
    }
    try:
        factory = policies[kind]
    except KeyError:
        raise ValueError(
            f"unknown replay policy {kind!r}; expected one of {sorted(policies)}"
        ) from None
    return factory(**kwargs)
