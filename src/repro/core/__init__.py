"""The paper's core contribution: the CLS (hippocampal-neocortical) prefetcher."""

from .availability import (
    ShadowModelManager,
    perturb_weights,
    weight_noise_robustness,
)
from .cls_prefetcher import CLSPrefetcher, CLSPrefetcherConfig, CLSPrefetcherStats
from .encoding import (
    OOV_CLASS,
    DeltaVocabEncoder,
    PageVocabEncoder,
    RegionDeltaEncoder,
    classify_addresses,
    make_encoder,
)
from .hippocampus import Episode, EpisodicStore, SparseAssociativeMemory
from .history import MissHistory, MissRecord
from .metrics import (
    ConfidenceCurve,
    InterferenceSummary,
    PrefetchSummary,
    summarize_prefetch,
)
from .phase_detect import OnlinePhaseDetector, cosine_similarity
from .recall import HippocampalRecall, RecallConfig, RecallStats
from .replay import (
    REPLAY_LR_SCALE,
    ConfidenceFilteredReplay,
    ConsolidatingReplay,
    FullReplay,
    GenerativeReplay,
    PrototypeReplay,
    ReplayScheduler,
    RingBufferReplay,
    make_replay_policy,
)
from .sampling import (
    BatchAccumulate,
    ConfidenceFiltered,
    RandomSampling,
    TrainAlways,
    TrainEveryK,
    make_training_policy,
)

__all__ = [
    "ShadowModelManager",
    "perturb_weights",
    "weight_noise_robustness",
    "CLSPrefetcher",
    "CLSPrefetcherConfig",
    "CLSPrefetcherStats",
    "OOV_CLASS",
    "DeltaVocabEncoder",
    "PageVocabEncoder",
    "RegionDeltaEncoder",
    "classify_addresses",
    "make_encoder",
    "Episode",
    "EpisodicStore",
    "SparseAssociativeMemory",
    "MissHistory",
    "MissRecord",
    "ConfidenceCurve",
    "InterferenceSummary",
    "PrefetchSummary",
    "summarize_prefetch",
    "OnlinePhaseDetector",
    "cosine_similarity",
    "HippocampalRecall",
    "RecallConfig",
    "RecallStats",
    "REPLAY_LR_SCALE",
    "ConfidenceFilteredReplay",
    "ConsolidatingReplay",
    "FullReplay",
    "GenerativeReplay",
    "PrototypeReplay",
    "ReplayScheduler",
    "RingBufferReplay",
    "make_replay_policy",
    "BatchAccumulate",
    "ConfidenceFiltered",
    "RandomSampling",
    "TrainAlways",
    "TrainEveryK",
    "make_training_policy",
]
