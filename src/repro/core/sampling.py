"""Training-instance selection (§5.1).

"Training on every prefetch inference ... can be unnecessary and
resource-consuming, especially because training is more expensive than
inference."  The paper sketches the alternatives; each is a policy here:

- :class:`TrainAlways` — the paper's experimental setting (§3.1).
- :class:`TrainEveryK` — simple decimation.
- :class:`RandomSampling` — train on a random subset; §5.1 warns this "may
  miss cases that are critical".
- :class:`ConfidenceFiltered` — "use confidence measures from the model to
  filter less-information carrying samples, or to avoid training on
  well-learned cases".
- :class:`BatchAccumulate` — train on a batch of samples at once.

A policy sees the model's pre-update confidence on the observed miss and
answers whether (and how) to spend a training step on it.  All policies
count decisions so experiments can report training cost alongside
accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol

import numpy as np


class TrainingPolicy(Protocol):
    """Decides whether to train on an observed transition."""

    name: str
    considered: int
    trained: int

    def should_train(self, confidence: float) -> bool:
        """``confidence`` is the model's pre-update probability of the
        observed miss class (0 when unavailable)."""
        ...


@dataclass
class TrainAlways:
    name: str = "always"
    considered: int = 0
    trained: int = 0

    def should_train(self, confidence: float) -> bool:
        del confidence
        self.considered += 1
        self.trained += 1
        return True


@dataclass
class TrainEveryK:
    k: int = 4
    name: str = field(default="", repr=False)
    considered: int = 0
    trained: int = 0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if not self.name:
            self.name = f"every{self.k}"

    def should_train(self, confidence: float) -> bool:
        del confidence
        self.considered += 1
        if self.considered % self.k == 0:
            self.trained += 1
            return True
        return False


@dataclass
class RandomSampling:
    probability: float = 0.25
    seed: int = 0
    name: str = field(default="", repr=False)
    considered: int = 0
    trained: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.probability <= 1:
            raise ValueError("probability must be in [0, 1]")
        if not self.name:
            self.name = f"random{self.probability:g}"
        self._rng = np.random.default_rng(self.seed)

    def should_train(self, confidence: float) -> bool:
        del confidence
        self.considered += 1
        if self._rng.random() < self.probability:
            self.trained += 1
            return True
        return False


@dataclass
class ConfidenceFiltered:
    """Skip training on transitions the model already predicts well.

    Attributes:
        skip_above: Confidence above which a sample is considered
            well-learned and skipped (§5.1).
    """

    skip_above: float = 0.9
    name: str = field(default="", repr=False)
    considered: int = 0
    trained: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.skip_above <= 1:
            raise ValueError("skip_above must be in (0, 1]")
        if not self.name:
            self.name = f"confidence<{self.skip_above:g}"

    def should_train(self, confidence: float) -> bool:
        self.considered += 1
        if confidence < self.skip_above:
            self.trained += 1
            return True
        return False


@dataclass
class BatchAccumulate:
    """Defer training until a batch of samples accumulates (§5.1).

    ``should_train`` answers True once per ``batch_size`` offers; callers
    that support true batched updates can drain :attr:`pending` instead.
    """

    batch_size: int = 8
    name: str = field(default="", repr=False)
    considered: int = 0
    trained: int = 0
    pending: list[tuple[int, int]] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if not self.name:
            self.name = f"batch{self.batch_size}"

    def should_train(self, confidence: float) -> bool:
        del confidence
        self.considered += 1
        if self.considered % self.batch_size == 0:
            self.trained += 1
            return True
        return False

    def offer(self, input_class: int, target_class: int) -> list[tuple[int, int]]:
        """Queue a transition; returns the batch to train on when full."""
        self.pending.append((input_class, target_class))
        if len(self.pending) >= self.batch_size:
            batch, self.pending = self.pending, []
            return batch
        return []


def make_training_policy(kind: str, **kwargs: Any) -> TrainingPolicy:
    policies = {
        "always": TrainAlways,
        "every_k": TrainEveryK,
        "random": RandomSampling,
        "confidence": ConfidenceFiltered,
        "batch": BatchAccumulate,
    }
    try:
        factory = policies[kind]
    except KeyError:
        raise ValueError(
            f"unknown training policy {kind!r}; expected one of {sorted(policies)}"
        ) from None
    return factory(**kwargs)
