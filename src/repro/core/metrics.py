"""Prefetching and continual-learning metrics.

Collects the quantities the paper reports: Figure 3's per-step confidence
curves and interference summaries, and Figure 5's percent-misses-removed,
plus the accuracy/coverage/timeliness vocabulary of §5.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..memsim.simulator import SimResult


@dataclass
class ConfidenceCurve:
    """Per-training-step confidence on a fixed probe sequence (Figure 3)."""

    label: str
    steps: list[int] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def append(self, step: int, value: float) -> None:
        self.steps.append(step)
        self.values.append(value)

    def final(self) -> float:
        return self.values[-1] if self.values else 0.0

    def minimum(self) -> float:
        return min(self.values) if self.values else 0.0

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.steps), np.asarray(self.values)


@dataclass(frozen=True)
class InterferenceSummary:
    """How badly pattern A was forgotten while learning pattern B.

    Attributes:
        pattern_a: Name of the first-learned pattern.
        pattern_b: Name of the pattern learned second.
        conf_a_before: Confidence on A after learning A (should be ~1).
        conf_a_after: Confidence on A after learning B.
        conf_b_after: Confidence on B after learning B.
        replay: Whether interleaved replay was active.
    """

    pattern_a: str
    pattern_b: str
    conf_a_before: float
    conf_a_after: float
    conf_b_after: float
    replay: bool

    @property
    def forgetting(self) -> float:
        """Confidence lost on the old pattern (the Figure 3 red-curve drop)."""
        return self.conf_a_before - self.conf_a_after


@dataclass(frozen=True)
class PrefetchSummary:
    """One Figure 5 bar: a model's online prefetching outcome on a trace."""

    trace_name: str
    prefetcher_name: str
    misses_baseline: int
    misses_with_prefetch: int
    prefetch_accuracy: float
    coverage: float

    @property
    def percent_misses_removed(self) -> float:
        if self.misses_baseline == 0:
            return 0.0
        return 100.0 * (self.misses_baseline - self.misses_with_prefetch) / self.misses_baseline


def window_rates(deltas: Mapping[str, int]) -> dict[str, float]:
    """Per-window rates (§5.2 vocabulary) from counter *deltas*.

    ``deltas`` holds the change of each :class:`~repro.memsim.pagecache.
    CacheStats` counter over one telemetry window.  The definitions mirror
    the end-of-run properties on ``CacheStats``, applied to the window:

    - ``miss_rate`` — demand misses per access.
    - ``accuracy`` — prefetch hits per effective (non-redundant) issued
      prefetch.  Windowed accuracy is an attribution approximation: a
      prefetch issued near the end of window *w* may land and hit in
      *w+1*, so per-window values wobble around the run total.
    - ``coverage`` — prefetch hits per would-be miss.
    - ``timeliness`` — fraction of issued prefetches that were *not*
      redundant on insertion.  A prefetch that lands after its page was
      already demand-filled (too late, §5.2) or that names a resident
      page inserts redundantly, so this is the observable too-late-or-
      useless proxy; 1.0 when nothing was issued.
    """
    accesses = deltas["accesses"]
    misses = deltas["demand_misses"]
    prefetch_hits = deltas["prefetch_hits"]
    issued = deltas["prefetches_issued"]
    redundant = deltas["prefetches_redundant"]
    effective = issued - redundant
    would_miss = misses + prefetch_hits
    return {
        "miss_rate": misses / accesses if accesses else 0.0,
        "accuracy": prefetch_hits / effective if effective else 0.0,
        "coverage": prefetch_hits / would_miss if would_miss else 0.0,
        "timeliness": 1.0 - redundant / issued if issued else 1.0,
    }


def summarize_prefetch(baseline: SimResult, run: SimResult) -> PrefetchSummary:
    """Build the Figure 5 metric from a (baseline, prefetcher) run pair."""
    if baseline.trace_name != run.trace_name:
        raise ValueError(
            f"baseline trace {baseline.trace_name!r} != run trace {run.trace_name!r}")
    return PrefetchSummary(
        trace_name=run.trace_name,
        prefetcher_name=run.prefetcher_name,
        misses_baseline=baseline.demand_misses,
        misses_with_prefetch=run.demand_misses,
        prefetch_accuracy=run.stats.prefetch_accuracy,
        coverage=run.stats.coverage,
    )
