"""Hippocampal recall: the pattern-completion fast path of Figure 4.

CLS theory gives the hippocampus two jobs.  Replay (``repro.core.replay``)
is the slow one — consolidating episodes into the neocortex.  The fast one
is *recall*: the hippocampus memorizes an experience in one shot and can
answer from it immediately, long before the neocortex has consolidated
anything.  Figure 4 draws this as the "Pattern Separation" -> storage ->
"Pattern Completion" path with dashed recall arrows back to behaviour.

:class:`HippocampalRecall` implements that path for prefetching:

- **Pattern separation**: each observed transition's input class is mapped
  to a sparse random code (a fixed binary projection + k-WTA, the dentate
  gyrus analogue) so one-shot storage of similar inputs doesn't collide.
- **One-shot storage**: the code is associated with the observed next
  class in a Willshaw-style :class:`SparseAssociativeMemory` (CA3
  analogue), one store per observation.
- **Pattern completion**: at prediction time the current input's
  (possibly noisy) code is completed back to the stored next-class code.

The CLS prefetcher consults recall when the neocortex is *not yet
confident* — giving one-shot adaptation to brand-new patterns while the
slow learner catches up — and prefers the neocortex once it has
consolidated (its context-sensitive predictions are strictly better on
learned patterns).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .hippocampus import SparseAssociativeMemory


@dataclass(frozen=True)
class RecallConfig:
    """Hippocampal recall parameters.

    Attributes:
        vocab_size: Class vocabulary shared with the encoder/model.
        code_dim: Width of the sparse key codes (dentate-gyrus layer).
        code_k: Active units per key code.
        value_k: Active units per value code (one hot class group).
        completion_threshold: Fraction of the cue that must support a value
            unit for it to be recalled (pattern-completion strictness).
        min_support: Minimum recalled value units for an answer to count.
        seed: Projection seed.
    """

    vocab_size: int = 128
    code_dim: int = 512
    code_k: int = 16
    value_k: int = 4
    completion_threshold: float = 0.6
    min_support: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.code_k <= 0 or self.code_k > self.code_dim:
            raise ValueError("code_k must be in [1, code_dim]")
        if self.value_k <= 0:
            raise ValueError("value_k must be positive")
        if not 0 < self.completion_threshold <= 1:
            raise ValueError("completion_threshold must be in (0, 1]")


class HippocampalRecall:
    """One-shot transition memory with pattern separation/completion."""

    def __init__(self, config: RecallConfig = RecallConfig()) -> None:
        self.config = config
        rng = np.random.default_rng(config.seed)
        # Fixed sparse projections: every class gets a random k-sparse key
        # code and a random k-sparse value code (its "engram").
        self._key_codes = np.stack([
            rng.choice(config.code_dim, size=config.code_k, replace=False)
            for _ in range(config.vocab_size)])
        self._value_codes = np.stack([
            rng.choice(config.code_dim, size=config.value_k, replace=False)
            for _ in range(config.vocab_size)])
        self.memory = SparseAssociativeMemory(
            key_dim=config.code_dim,
            value_dim=config.code_dim,
            value_k=config.value_k,
            threshold_fraction=config.completion_threshold,
        )
        self.stored_transitions = 0
        self.recalls_served = 0

    # ------------------------------------------------------------------
    def store(self, input_class: int, target_class: int) -> None:
        """One-shot storage of an observed transition."""
        self._check(input_class)
        self._check(target_class)
        self.memory.store(self._key_codes[input_class],
                          self._value_codes[target_class])
        self.stored_transitions += 1

    def recall(self, input_class: int) -> int | None:
        """Complete the stored next class for ``input_class``, if any.

        Returns None when nothing (or nothing unambiguous) is stored —
        ambiguity rises as the memory fills, which is exactly the capacity
        behaviour of a Willshaw memory.
        """
        self._check(input_class)
        completed = self.memory.complete(self._key_codes[input_class])
        if completed.size < self.config.min_support:
            return None
        completed_set = set(completed.tolist())
        best_class, best_overlap, runner_up = -1, 0, 0
        for class_id in range(self.config.vocab_size):
            overlap = len(completed_set.intersection(
                self._value_codes[class_id].tolist()))
            if overlap > best_overlap:
                best_class, best_overlap, runner_up = class_id, overlap, best_overlap
            elif overlap > runner_up:
                runner_up = overlap
        if best_overlap < self.config.min_support or best_overlap == runner_up:
            return None
        self.recalls_served += 1
        return best_class

    def occupancy(self) -> float:
        """Memory fill level in [0, 1] (density of the weight matrix)."""
        return self.memory.density()

    def _check(self, class_id: int) -> None:
        if not 0 <= class_id < self.config.vocab_size:
            raise ValueError(f"class {class_id} outside vocab")


@dataclass
class RecallStats:
    """Counters for the recall integration in the CLS prefetcher."""

    consulted: int = 0
    answered: int = 0
    overrode_neocortex: int = 0
