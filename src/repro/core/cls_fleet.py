"""Stacked Hebbian stepping for groups of CLS lanes in a fleet cohort.

:class:`CLSFleetGroup` is the bridge between the cohort engine
(``memsim/fleet.py``) and the tenant-axis batched network
(``nn/hebbian_fleet.py``): same-config CLS lanes adopt their models into
one :class:`~repro.nn.hebbian_fleet.HebbianFleet` and, at each cohort
round, every stalled lane's miss flows through **one** stacked
step/replay/rollout call per group instead of L scalar
``on_miss_fast`` calls.

Bit-identity contract — each statement below names its scalar
counterpart in :meth:`CLSPrefetcher.on_miss_fast` → ``_ingest`` →
``_predict``, and the phases preserve every within-lane ordering
(cross-lane order is free: lanes share no mutable state, and the
prototype's memo caches are pure memoization over fixed structures):

* **Phase A (observe, per lane)** — miss counter, encoder observe,
  phase detection, confidence/EMA update against the *previous* probs,
  training-policy decision, episode record, recall store: everything in
  ``_ingest`` before the inlined ``model.step`` hot branch.
* **Phase B (stacked step)** — one ``HebbianFleet.step_lanes`` call
  replaces each lane's ``self._last_probs = self.model.step(...)``.
* **Phase C (stacked replay)** — the trained-lane bookkeeping, with
  ``ReplayScheduler.select_pairs`` drawing each lane's episodes (same
  RNG stream, same counters as ``scheduler.step``) and one
  ``train_pairs_lanes`` call applying them.
* **Phase D (advance, per lane)** — history push and ``_prev_class``,
  the ``_ingest`` tail.
* **Phase E (stacked predict)** — the ``_predict`` accuracy gate per
  lane, one ``rollout_lanes`` call for the survivors, then each lane's
  ``_decode_rollout`` (the literal scalar decode tail).

Eligibility is decided by :meth:`CLSPrefetcher.fleet_steppable` and
grouping by :meth:`CLSPrefetcher.fleet_group_key`; ineligible lanes
keep the scalar per-miss path in the cohort.
"""

from __future__ import annotations

import numpy as np

from ..nn.hebbian import SparseHebbianNetwork
from ..nn.hebbian_fleet import HebbianFleet
from .cls_prefetcher import CLSPrefetcher
from .hippocampus import Episode
from .history import MissRecord
from .recall import HippocampalRecall

__all__ = ["CLSFleetGroup"]


class CLSFleetGroup:
    """Same-config CLS lanes stepped through one :class:`HebbianFleet`.

    Members adopt their live networks into fleet slots (:meth:`adopt`)
    and take them back, bit-identical, when their lane finishes
    (:meth:`release`); in between, :meth:`handle_misses` drives each
    cohort round's stalled-lane misses through the stacked path.
    """

    def __init__(self, prefetcher: CLSPrefetcher,
                 capacity: int = 16) -> None:
        model = prefetcher.model
        assert isinstance(model, SparseHebbianNetwork)
        # The prototype contributes only fixed structures and memo
        # caches (reserve mode never reads its weights), so the first
        # member's model serves as-is.
        self._fleet = HebbianFleet(model, max(capacity, 1), reserve=True)
        self._members: dict[int, CLSPrefetcher] = {}

    def adopt(self, prefetcher: CLSPrefetcher) -> int:
        """Move a lane's model into the fleet; returns its slot."""
        model = prefetcher.model
        assert isinstance(model, SparseHebbianNetwork)
        slot = self._fleet.acquire_lane(model)
        self._members[slot] = prefetcher
        return slot

    def release(self, slot: int, prefetcher: CLSPrefetcher) -> None:
        """Hand the slot's state back to the lane's own model."""
        model = prefetcher.model
        assert isinstance(model, SparseHebbianNetwork)
        self._fleet.release_lane(slot, model)
        del self._members[slot]

    def handle_misses(self, slots: list[int], addresses: list[int],
                      pages: list[int],
                      timestamps: list[int]) -> list[list[int]]:
        """One cohort round of misses, stacked; returns per-lane pages.

        ``slots[i]`` missed on ``addresses[i]`` (page ``pages[i]``) at
        ``timestamps[i]``; the result row ``i`` equals what
        ``on_miss_fast`` would have returned for that lane.
        """
        n = len(slots)
        results: list[list[int]] = [[] for _ in range(n)]
        fleet = self._fleet

        # Phase A — everything in _ingest before the model step.
        live: list[int] = []
        lanes: list[int] = []
        classes: list[int] = []
        trains: list[bool] = []
        phases: list[int] = []
        for row in range(n):
            p = self._members[slots[row]]
            address = addresses[row]
            p.stats.misses_seen += 1
            class_id = p._encoder_observe(address)
            if class_id is None:
                continue  # scalar: _ingest returns None -> []
            phase = -1
            detector = p.phase_detector
            if p._hinted_phase is not None:
                phase = p._hinted_phase
            elif detector is not None:
                phase = detector.observe(
                    (address >> p._region_shift) % p._PHASE_FEATURE_BINS)
                p.stats.phases_seen = detector.n_phases
            scored_probs = p._last_probs
            confidence = (scored_probs.item(class_id)
                          if scored_probs is not None else 0.0)
            transition = (None if p._prev_class is None
                          else (p._prev_class, class_id))
            if scored_probs is not None:
                ema_top = p._ema_top
                if ema_top is not None and ema_top[0] is scored_probs:
                    covered = class_id in ema_top[1]
                else:
                    top = np.argpartition(scored_probs,
                                          -p._width)[-p._width:]
                    covered = class_id in top
                alpha = p._alpha
                p.accuracy_ema = ((1 - alpha) * p.accuracy_ema
                                  + alpha * float(covered))
            train = (transition is not None
                     and p._should_train(confidence))
            if transition is not None and p.scheduler is not None:
                p.scheduler.record(Episode(
                    input_class=transition[0],
                    target_class=transition[1],
                    phase_id=phase,
                    confidence=confidence,
                    timestamp=timestamps[row],
                ))
            if p.recall_memory is not None and transition is not None:
                if (p.recall_memory.occupancy()
                        > p.config.recall_occupancy_reset):
                    p.recall_memory = HippocampalRecall(
                        p.recall_memory.config)
                p.recall_memory.store(*transition)
            live.append(row)
            lanes.append(slots[row])
            classes.append(class_id)
            trains.append(train)
            phases.append(phase)
        if not live:
            return results

        # Phase B — the stacked model step.
        probs = fleet.step_lanes(lanes, classes, trains)
        for i, row in enumerate(live):
            self._members[slots[row]]._last_probs = probs[i]

        # Phase C — trained-step bookkeeping and stacked replay.
        replay_lanes: list[int] = []
        replay_pairs: list[list[tuple[int, int]]] = []
        replay_scales: list[float] = []
        for i, row in enumerate(live):
            if not trains[i]:
                continue
            p = self._members[slots[row]]
            p.stats.trained_steps += 1
            scheduler = p.scheduler
            if scheduler is None:
                continue
            phase = phases[i]
            pairs = scheduler.select_pairs(phase if phase >= 0 else None)
            p.stats.replayed_pairs += len(pairs)
            if pairs:
                replay_lanes.append(lanes[i])
                replay_pairs.append(pairs)
                replay_scales.append(scheduler.lr_scale)
        if replay_lanes:
            fleet.train_pairs_lanes(replay_lanes, replay_pairs,
                                    replay_scales)

        # Phase D — the _ingest tail.
        for i, row in enumerate(live):
            p = self._members[slots[row]]
            p._history_push(MissRecord(classes[i], addresses[row],
                                       timestamps[row]))
            p._prev_class = classes[i]

        # Phase E — the accuracy gate, one stacked rollout, and the
        # scalar decode tail per surviving lane.
        roll_rows: list[int] = []
        roll_lanes: list[int] = []
        widths: list[int] = []
        lengths: list[int] = []
        for i, row in enumerate(live):
            p = self._members[slots[row]]
            if (p._min_accuracy > 0
                    and p.accuracy_ema < p._min_accuracy):
                p.stats.suppressed_low_confidence += 1
                continue
            roll_rows.append(row)
            roll_lanes.append(lanes[i])
            widths.append(p._width)
            lengths.append(p._length)
        if roll_rows:
            rollouts = fleet.rollout_lanes(roll_lanes, widths, lengths)
            for row, rollout in zip(roll_rows, rollouts):
                p = self._members[slots[row]]
                results[row] = p._decode_rollout(addresses[row],
                                                 pages[row], rollout)
        return results
