"""The hippocampal-neocortical prefetcher — the paper's contribution.

:class:`CLSPrefetcher` assembles the CLS architecture of Figure 4 behind
the :class:`~repro.memsim.prefetcher.Prefetcher` interface:

- a **neocortex** (slow structure learner): either the sparse Hebbian
  network (§3.1) or the LSTM baseline (§2.1), selected by config;
- a **hippocampus** (fast episodic store) feeding **interleaved replay**
  at a reduced learning rate (§3.2, §5.4);
- the operational policies the paper's research agenda calls for:
  training-instance sampling (§5.1), prefetch length/width with
  confidence thresholds (§5.2), pluggable input encodings (§5.3), phase
  detection for replay grouping (§5.4), and the shadow-copy availability
  protocol (§5.5).

On every demand miss the prefetcher encodes the miss, optionally trains on
the newest transition (plus replayed old ones), advances the model's
recurrent state, and decodes a ``length x width`` rollout of predicted
classes back into page prefetches.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..memsim.events import AccessEvent, MissEvent
from ..nn.base import SequenceModel
from ..nn.hebbian import HebbianConfig, SparseHebbianNetwork
from ..nn.lstm import LSTMConfig, OnlineLSTM
from .availability import ShadowModelManager
from .encoding import OOV_CLASS, make_encoder
from .hippocampus import Episode
from .history import MissHistory, MissRecord
from .phase_detect import OnlinePhaseDetector
from .recall import HippocampalRecall, RecallConfig, RecallStats
from .replay import ReplayScheduler, make_replay_policy
from .sampling import BatchAccumulate, make_training_policy


@dataclass
class CLSPrefetcherConfig:
    """Everything configurable about the CLS prefetcher.

    Attributes:
        model: "hebbian" (the paper's proposal) or "lstm" (the baseline).
        vocab_size: Miss-class vocabulary shared by encoder and model.
        encoder: "delta" (address deltas, §5.3 default) or "page"
            (unit identity).
        granularity: Bytes per encoded unit (page size for page-level
            prefetching; the element size for data-structure experiments).
        page_size: Page size used to emit prefetch targets.
        prefetch_length: Steps predicted into the future (§5.2).
        prefetch_width: Predictions emitted per step (§5.2).
        prediction_mode: How multi-step predictions are produced (§5.2):
            "rollout" feeds the model its own top-1 prediction
            ``prefetch_length`` times (costs one inference per step, and
            errors compound); "direct" trains the model on lag-L
            transition pairs from the miss history ("the prefetch length
            determines a minimum history size") and predicts the miss L
            steps ahead in a single inference.  Direct mode names absolute
            units, so it requires the "page" encoder.
        min_confidence: Candidates below this probability are suppressed
            (the "highly selective" operating point for network-bound
            systems, §5.2).
        min_accuracy: Suppress *all* prefetching while the model's
            self-monitored accuracy — the EMA of "was the class that
            actually arrived inside my top-``prefetch_width`` candidate
            set?" — is below this.  Softmax confidence measures absolute
            weight consolidation, which stays low under prefetch-feedback
            non-stationarity even when the model ranks perfectly; realized
            candidate-set coverage is the calibrated selectivity signal
            (and is naturally width-aware: a width-4 prefetcher is doing
            its job if reality lands in its top 4).
        training: Training-instance policy kind (§5.1): "always",
            "every_k", "random", "confidence", "batch".
        training_kwargs: Extra arguments for the training policy.
        replay_policy: Replay storage/selection kind (§5.4): "full",
            "ring", "confidence", "prototype", "generative"; None disables
            replay entirely.
        replay_kwargs: Extra arguments for the replay policy.
        replay_per_step: Old episodes replayed per new training step.
        replay_lr_scale: Replay learning-rate scale (paper: 0.1).
        phase_detection: Group episodes into phases for replay.
        observe_hits: Also feed demand *hits* through the encoder/model
            (training included, prefetching still miss-triggered).  The
            default miss-only deployment (Figure 1) suffers a feedback
            loop: successful prefetches remove misses, which changes the
            inter-miss deltas the model is being trained on.  Watching the
            full demand stream keeps the input distribution stationary.
        trigger_on_hits: Also *issue prefetches* on demand hits (prefetch
            chaining).  Prefetch-on-miss caps miss removal at
            length/(length+1) because covered accesses stop triggering;
            chaining keeps the pipeline full.  Requires ``observe_hits``.
        availability: Run the §5.5 shadow-copy protocol (train a shadow,
            serve inference from a stable live copy, redeploy on drift).
        recall: Enable the Figure 4 hippocampal recall fast path: a
            one-shot pattern-separation/completion memory answers when the
            neocortex is not yet confident, giving immediate adaptation to
            brand-new patterns while the slow learner consolidates.
        recall_config: Optional recall memory override.
        recall_max_confidence: Consult recall only when the neocortex's
            top prediction is below this probability.
        recall_occupancy_reset: Clear the recall memory when its weight
            density exceeds this (synaptic turnover — a full Willshaw
            memory answers nothing but ambiguity).
        hebbian: Optional Hebbian model config override.
        lstm: Optional LSTM model config override.
        seed: Seed for model init and replay sampling.
    """

    model: str = "hebbian"
    vocab_size: int = 128
    encoder: str = "delta"
    granularity: int = 4096
    page_size: int = 4096
    prefetch_length: int = 1
    prefetch_width: int = 1
    prediction_mode: str = "rollout"
    min_confidence: float = 0.0
    min_accuracy: float = 0.0
    accuracy_ema_alpha: float = 0.02
    training: str = "always"
    training_kwargs: dict[str, int | float | str | bool] = field(default_factory=dict)
    replay_policy: str | None = "full"
    replay_kwargs: dict[str, int | float | str | bool] = field(default_factory=dict)
    replay_per_step: int = 1
    replay_lr_scale: float = 0.1
    phase_detection: bool = True
    observe_hits: bool = False
    trigger_on_hits: bool = False
    availability: bool = False
    recall: bool = False
    recall_config: RecallConfig | None = None
    recall_max_confidence: float = 0.5
    recall_occupancy_reset: float = 0.35
    hebbian: HebbianConfig | None = None
    lstm: LSTMConfig | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.model not in ("hebbian", "lstm"):
            raise ValueError("model must be 'hebbian' or 'lstm'")
        if self.prefetch_length < 1 or self.prefetch_width < 1:
            raise ValueError("prefetch_length and prefetch_width must be >= 1")
        if not 0 <= self.min_confidence <= 1:
            raise ValueError("min_confidence must be in [0, 1]")
        if not 0 <= self.min_accuracy <= 1:
            raise ValueError("min_accuracy must be in [0, 1]")
        if not 0 < self.accuracy_ema_alpha <= 1:
            raise ValueError("accuracy_ema_alpha must be in (0, 1]")
        if self.prediction_mode not in ("rollout", "direct"):
            raise ValueError("prediction_mode must be 'rollout' or 'direct'")
        if self.prediction_mode == "direct" and self.encoder != "page":
            raise ValueError("direct prediction requires the 'page' encoder "
                             "(lag-L targets name absolute units)")
        if self.trigger_on_hits and not self.observe_hits:
            raise ValueError("trigger_on_hits requires observe_hits")
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ValueError("page_size must be a positive power of two")

    def build_model(self) -> SequenceModel:
        if self.model == "hebbian":
            cfg = self.hebbian or HebbianConfig(vocab_size=self.vocab_size,
                                                seed=self.seed)
            if cfg.vocab_size != self.vocab_size:
                raise ValueError("hebbian config vocab_size mismatch")
            return SparseHebbianNetwork(cfg)
        cfg = self.lstm or LSTMConfig(vocab_size=self.vocab_size, seed=self.seed)
        if cfg.vocab_size != self.vocab_size:
            raise ValueError("lstm config vocab_size mismatch")
        return OnlineLSTM(cfg)


@dataclass
class CLSPrefetcherStats:
    """Operational counters for one prefetcher lifetime."""

    misses_seen: int = 0
    trained_steps: int = 0
    replayed_pairs: int = 0
    prefetches_emitted: int = 0
    suppressed_low_confidence: int = 0
    redeploys: int = 0
    phases_seen: int = 0


class CLSPrefetcher:
    """Online CLS prefetcher (implements the memsim ``Prefetcher`` protocol)."""

    #: Phase features: address regions of 2**12 pages, hashed into this
    #: many histogram bins for the phase detector.
    _PHASE_FEATURE_BINS = 256
    _PHASE_REGION_BITS = 12

    def __init__(self, config: CLSPrefetcherConfig = CLSPrefetcherConfig(),
                 *, model: SequenceModel | None = None) -> None:
        self.config = config
        self.name = f"cls-{config.model}"
        self.encoder = make_encoder(config.encoder, config.vocab_size,
                                    config.granularity)
        # ``model`` injects a prebuilt network — fleet lanes clone one
        # prototype so thousands of lanes share the fixed structures
        # (masks, index lists, memo caches) instead of re-deriving them
        # per lane.  The caller owns making the instance independent
        # (e.g. ``prototype.clone()``).
        self.model: SequenceModel = model if model is not None \
            else config.build_model()
        self.history = MissHistory(capacity=max(16, config.prefetch_length + 2))
        self.training_policy = make_training_policy(config.training,
                                                    **config.training_kwargs)
        self.scheduler: ReplayScheduler | None = None
        if config.replay_policy is not None:
            policy = make_replay_policy(config.replay_policy, **config.replay_kwargs)
            self.scheduler = ReplayScheduler(policy=policy,
                                             per_step=config.replay_per_step,
                                             lr_scale=config.replay_lr_scale,
                                             seed=config.seed)
        self.phase_detector: OnlinePhaseDetector | None = None
        if config.phase_detection:
            # The detector clusters histograms of a *phase-stable* feature.
            # Encoded classes are not one: over a large working set every
            # sliding window holds a different subset of classes, so
            # within-phase windows look as dissimilar as cross-phase ones
            # and the centroid drifts straight through switches.  Address
            # regions (which data structure is being touched) are stable
            # within a phase and distinct across phases.
            self.phase_detector = OnlinePhaseDetector(
                vocab_size=self._PHASE_FEATURE_BINS)
        self.manager: ShadowModelManager | None = None
        if config.availability:
            self.manager = ShadowModelManager(self.model)
        self.recall_memory: HippocampalRecall | None = None
        self.recall_stats = RecallStats()
        if config.recall:
            recall_cfg = config.recall_config or RecallConfig(
                vocab_size=config.vocab_size, seed=config.seed)
            if recall_cfg.vocab_size != config.vocab_size:
                raise ValueError("recall config vocab_size mismatch")
            self.recall_memory = HippocampalRecall(recall_cfg)
        self.stats = CLSPrefetcherStats()
        self._page_shift = config.page_size.bit_length() - 1
        self._prev_class: int | None = None
        self._last_probs: np.ndarray | None = None
        # Direct mode scores the observation against the prediction made L
        # steps earlier, so keep the last L probability vectors.
        self._probs_history: deque[np.ndarray] = deque(
            maxlen=config.prefetch_length)
        # Self-monitored top-1 accuracy (starts pessimistic: no prefetching
        # until the model has demonstrated it tracks the stream).
        self.accuracy_ema: float = 0.0
        self._hinted_phase: int | None = None

        # Per-miss invariants, hoisted off the hot path.  Only objects
        # that are never swapped for the prefetcher's lifetime are bound
        # (the encoder, history, and policies persist across
        # ``reset_stream``; the live model does not under availability).
        self._direct = config.prediction_mode == "direct"
        self._width = config.prefetch_width
        self._length = config.prefetch_length
        self._alpha = config.accuracy_ema_alpha
        self._min_confidence = config.min_confidence
        self._min_accuracy = config.min_accuracy
        self._batch_policy = (self.training_policy
                              if isinstance(self.training_policy, BatchAccumulate)
                              else None)
        self._should_train = self.training_policy.should_train
        self._encoder_observe = self.encoder.observe
        self._encoder_decode = self.encoder.decode
        self._history_push = self.history.push
        self._region_shift = self._page_shift + self._PHASE_REGION_BITS
        # (probs object, its top-width classes) memoized by the rollout so
        # the accuracy EMA's argpartition isn't recomputed on the same
        # vector one miss later.  Only valid for models whose rollout
        # top-k is the same argpartition call (ties break identically).
        self._ema_top: tuple[np.ndarray, list[int]] | None = None
        self._ema_memo_ok = getattr(self.model, "rollout_top_argpartition",
                                    False)
        # Without availability the model is never swapped, so its rollout
        # can be pre-bound (under a manager the live model changes on
        # redeploy and must be resolved per miss).
        self._model_rollout = (self.model.predict_rollout
                               if self.manager is None else None)
        #: Fast-path protocol: the simulator may skip the per-access
        #: callback entirely when the prefetcher doesn't watch hits.
        self.wants_accesses = config.observe_hits

    # ------------------------------------------------------------------
    @property
    def _live(self) -> SequenceModel:
        return self.manager.live if self.manager is not None else self.model

    def telemetry_counters(self) -> dict[str, int | float]:
        """Named counters for the telemetry sink.

        Integer values are monotone counters (the sink emits per-window
        deltas); floats are gauges sampled at the window boundary.
        Includes the replay scheduler's and episodic store's counters, so
        a windowed series shows replay firing next to the accuracy it is
        defending.
        """
        stats = self.stats
        counters: dict[str, int | float] = {
            "cls_misses_seen": stats.misses_seen,
            "cls_trained_steps": stats.trained_steps,
            "cls_replayed_pairs": stats.replayed_pairs,
            "cls_prefetches_emitted": stats.prefetches_emitted,
            "cls_suppressed_low_confidence": stats.suppressed_low_confidence,
            "cls_redeploys": stats.redeploys,
            "cls_phases_seen": stats.phases_seen,
            "cls_accuracy_ema": float(self.accuracy_ema),
        }
        if self.scheduler is not None:
            counters.update(self.scheduler.telemetry_counters())
        return counters

    def fleet_steppable(self) -> bool:
        """True when the fleet engine may batch this prefetcher's misses.

        The stacked path (``core/cls_fleet.py``) mirrors exactly the
        inlined rollout-mode hot branch of ``_ingest``: a Hebbian model
        with fixed hidden projections and a float serving path, no
        availability manager, no batch-accumulate training policy, and
        a replay scheduler (if any) whose ``step`` reduces to
        ``train_pairs`` (non-generative, no ``on_replayed`` hook).
        Everything else keeps the scalar per-miss path.
        """
        model = self.model
        scheduler = self.scheduler
        return (isinstance(model, SparseHebbianNetwork)
                and not model.config.plastic_hidden
                and model._backend != "int8"
                and self.manager is None
                and not self._direct
                and self._batch_policy is None
                and not self.wants_accesses
                and (scheduler is None
                     or (scheduler._generate is None
                         and scheduler._on_replayed is None)))

    def fleet_group_key(self) -> tuple[HebbianConfig, str]:
        """Lanes with equal keys may share one :class:`HebbianFleet`:
        equal configs build value-identical fixed structures (the
        construction is seeded by the config), and the backend decides
        which kernel bundle steps them."""
        model = self.model
        assert isinstance(model, SparseHebbianNetwork)
        return (model.config, model._backend)

    def on_miss(self, event: MissEvent) -> list[int]:
        """Observe a demand miss; return pages to prefetch."""
        return self.on_miss_fast(event.index, event.address, event.page,
                                 event.stream_id, event.timestamp)

    def on_miss_fast(self, index: int, address: int, page: int,
                     stream_id: int, timestamp: int) -> list[int]:
        """Allocation-free miss entry point (fast-path protocol)."""
        del index, stream_id  # part of the protocol, unused by CLS
        self.stats.misses_seen += 1
        class_id = self._ingest(address, timestamp)
        if class_id is None:
            return []
        return self._predict(address, page)

    def on_access(self, event: AccessEvent) -> list[int] | None:
        """Optionally observe demand hits too (``observe_hits``).

        Misses are skipped here — ``on_miss`` already ingested them.  With
        ``trigger_on_hits``, hits also produce prefetches (chaining).
        """
        return self.on_access_fast(event.index, event.address, event.page,
                                   event.stream_id, event.timestamp, event.hit)

    def on_access_fast(self, index: int, address: int, page: int,
                       stream_id: int, timestamp: int,
                       hit: bool) -> list[int] | None:
        """Allocation-free access entry point (fast-path protocol)."""
        del index, stream_id
        if not hit or not self.config.observe_hits:
            return None
        class_id = self._ingest(address, timestamp)
        if class_id is None or not self.config.trigger_on_hits:
            return None
        return self._predict(address, page)

    def _ingest(self, address: int, timestamp: int) -> int | None:
        """Encode one observation and run the learning pipeline on it."""
        class_id = self._encoder_observe(address)
        if class_id is None:
            return None

        phase = -1
        detector = self.phase_detector
        if self._hinted_phase is not None:
            phase = self._hinted_phase
        elif detector is not None:
            phase = detector.observe(
                (address >> self._region_shift) % self._PHASE_FEATURE_BINS)
            self.stats.phases_seen = detector.n_phases

        if self._direct:
            # Score against the prediction made prefetch_length steps ago.
            full = len(self._probs_history) == self._length
            scored_probs = self._probs_history[0] if full else None
            confidence = (scored_probs.item(class_id)
                          if scored_probs is not None else 0.0)
            transition = self._direct_pair(class_id)
        else:
            scored_probs = self._last_probs
            confidence = (scored_probs.item(class_id)
                          if scored_probs is not None else 0.0)
            transition = (None if self._prev_class is None
                          else (self._prev_class, class_id))

        if scored_probs is not None:
            ema_top = self._ema_top
            if ema_top is not None and ema_top[0] is scored_probs:
                # The rollout already partitioned this exact vector; the
                # top-width membership is the same set.
                covered = class_id in ema_top[1]
            else:
                width = self._width
                top = np.argpartition(scored_probs, -width)[-width:]
                covered = class_id in top
            alpha = self._alpha
            self.accuracy_ema = ((1 - alpha) * self.accuracy_ema
                                 + alpha * float(covered))
        train = (transition is not None
                 and self._should_train(confidence))

        # §5.1 batched training: accumulate transitions and apply them as
        # one true batch update when full (instead of per-sample steps).
        if self._batch_policy is not None:
            if transition is not None:
                pending = self._batch_policy.offer(*transition)
                if pending:
                    trainer = (self.manager.shadow if self.manager is not None
                               else self.model)
                    trainer.train_pairs(pending)
                    self.stats.trained_steps += len(pending)
                    if self.scheduler is not None:
                        self.stats.replayed_pairs += self.scheduler.step(
                            trainer,
                            current_phase=phase if phase >= 0 else None)
            train = False  # the batch path owns training

        if transition is not None and self.scheduler is not None:
            self.scheduler.record(Episode(
                input_class=transition[0],
                target_class=transition[1],
                phase_id=phase,
                confidence=confidence,
                timestamp=timestamp,
            ))

        if self.recall_memory is not None and transition is not None:
            if self.recall_memory.occupancy() > self.config.recall_occupancy_reset:
                recall_cfg = self.recall_memory.config
                self.recall_memory = HippocampalRecall(recall_cfg)
            self.recall_memory.store(*transition)

        if self.manager is None and not self._direct:
            # Inlined hot branch of ``_learn_and_advance`` (rollout mode,
            # no availability manager) — same statements, one frame less.
            self._last_probs = self.model.step(class_id, train=train)
            if train:
                self.stats.trained_steps += 1
                if self.scheduler is not None:
                    self.stats.replayed_pairs += self.scheduler.step(
                        self.model, phase if phase >= 0 else None)
        else:
            self._learn_and_advance(class_id, train, phase, transition)
            if self._direct and self._last_probs is not None:
                self._probs_history.append(self._last_probs)
        self._history_push(MissRecord(class_id, address, timestamp))
        self._prev_class = class_id
        return class_id

    def _direct_pair(self, class_id: int) -> tuple[int, int] | None:
        """The lag-L training pair (class at t-L, class at t), if the miss
        history is deep enough (§5.2: "the prefetch length determines a
        minimum history size")."""
        lag = self.config.prefetch_length
        if len(self.history) < lag:
            return None
        past = self.history.last(lag)[0]
        return past.class_id, class_id

    # ------------------------------------------------------------------
    def _learn_and_advance(self, class_id: int, train: bool, phase: int,
                           transition: tuple[int, int] | None) -> None:
        # phase -1 means "no phase information": replay everything rather
        # than excluding the (only) phase, which would disable replay.
        exclude = phase if phase >= 0 else None

        if self.manager is None:
            if self._direct:
                if train and transition is not None:
                    self.model.train_pair(*transition)
                    self.stats.trained_steps += 1
                    if self.scheduler is not None:
                        self.stats.replayed_pairs += self.scheduler.step(
                            self.model, current_phase=exclude)
                self._last_probs = self.model.step(class_id, train=False)
            else:
                self._last_probs = self.model.step(class_id, train=train)
                if train:
                    self.stats.trained_steps += 1
                    if self.scheduler is not None:
                        self.stats.replayed_pairs += self.scheduler.step(
                            self.model, current_phase=exclude)
            return

        # Availability protocol (§5.5): shadow trains, live serves.
        if train and transition is not None:
            self.manager.train_shadow(*transition)
            self.stats.trained_steps += 1
            if self.scheduler is not None:
                self.stats.replayed_pairs += self.scheduler.step(
                    self.manager.shadow, current_phase=exclude)
        if self._last_probs is not None:
            self.manager.note_confidence(float(self._last_probs[class_id]))
        if self.manager.should_redeploy():
            self.manager.redeploy()
            self.manager.live.reset_state()  # state re-warms within a few misses
            self.stats.redeploys = self.manager.redeploys
        self._last_probs = self.manager.live.step(class_id, train=False)

    def _predict(self, miss_address: int, miss_page: int) -> list[int]:
        if (self._min_accuracy > 0
                and self.accuracy_ema < self._min_accuracy):
            self.stats.suppressed_low_confidence += 1
            return []
        if self._direct:
            return self._predict_direct(miss_address, miss_page)
        model_rollout = self._model_rollout
        if model_rollout is None:
            model_rollout = self._live.predict_rollout
        rollout = model_rollout(self._width, self._length)
        return self._decode_rollout(miss_address, miss_page, rollout)

    def _decode_rollout(self, miss_address: int, miss_page: int,
                        rollout: list[list[tuple[int, float]]]) -> list[int]:
        """Decode a beam rollout into page prefetches (the ``_predict``
        tail).  Split out so the fleet miss path — which computes the
        rollout batched across lanes — shares the recall consult, the
        decode loop, and every counter with the scalar path verbatim."""
        if rollout and self._ema_memo_ok and self._last_probs is not None:
            # Memoize the first step's top-width classes for the next
            # miss's accuracy-EMA update (same probs vector, same set).
            self._ema_top = (self._last_probs, [c for c, _ in rollout[0]])
        pages: list[int] = []
        seen: set[int] = set()
        base = miss_address
        stats = self.stats
        decode = self._encoder_decode
        page_shift = self._page_shift
        min_confidence = self._min_confidence

        # Figure 4's recall path: when the neocortex is not yet confident,
        # ask the one-shot hippocampal memory first.
        if (self.recall_memory is not None and self._prev_class is not None
                and (not rollout
                     or rollout[0][0][1] < self.config.recall_max_confidence)):
            self.recall_stats.consulted += 1
            recalled = self.recall_memory.recall(self._prev_class)
            if recalled is not None:
                self.recall_stats.answered += 1
                if rollout and recalled != rollout[0][0][0]:
                    self.recall_stats.overrode_neocortex += 1
                address = decode(recalled, base)
                if address is not None:
                    page = address >> page_shift
                    if page != miss_page:
                        seen.add(page)
                        pages.append(page)
        for candidates in rollout:
            for candidate_class, probability in candidates:
                if probability < min_confidence:
                    stats.suppressed_low_confidence += 1
                    continue
                if candidate_class == OOV_CLASS:
                    continue
                address = decode(candidate_class, base)
                if address is None:
                    continue
                page = address >> page_shift
                if page != miss_page and page not in seen:
                    seen.add(page)
                    pages.append(page)
            # The rollout path follows the top-1 prediction at each step.
            top_class = candidates[0][0]
            next_base = decode(top_class, base)
            if next_base is None:
                break
            base = next_base
        stats.prefetches_emitted += len(pages)
        return pages

    def _predict_direct(self, miss_address: int, miss_page: int) -> list[int]:
        """One inference names the top-w units expected L misses ahead."""
        probs = self._last_probs
        if probs is None:
            return []
        width = self._width
        if width < probs.size:
            # O(V) top-width.  ``np.argsort`` (quicksort) breaks ties in an
            # implementation-defined order, so the partitioned result is
            # only guaranteed to match the full sort when the selected
            # values are unique and the boundary value isn't shared with an
            # excluded candidate; fall back to the full sort otherwise
            # (untrained vectors are uniform — every entry ties).
            part = np.argpartition(probs, -width)[-width:]
            pivot = probs[part].min()
            # Exact comparisons on purpose: detecting *bitwise* ties, not
            # approximate equality.
            if (np.unique(probs[part]).size == width
                    and np.count_nonzero(probs == pivot) == 1):
                order = part[np.argsort(probs[part])[::-1]]
            else:
                order = np.argsort(probs)[::-1][:width]
        else:
            order = np.argsort(probs)[::-1][:width]
        pages: list[int] = []
        seen: set[int] = set()
        decode = self._encoder_decode
        min_confidence = self._min_confidence
        for candidate_class in order:
            probability = float(probs[candidate_class])
            if probability < min_confidence:
                self.stats.suppressed_low_confidence += 1
                continue
            if candidate_class == OOV_CLASS:
                continue
            address = decode(int(candidate_class), miss_address)
            if address is None:
                continue
            page = address >> self._page_shift
            if page != miss_page and page not in seen:
                seen.add(page)
                pages.append(page)
        self.stats.prefetches_emitted += len(pages)
        return pages

    # ------------------------------------------------------------------
    def hint_phase(self, phase_id: int | None) -> None:
        """Application-directed phase hint (§5.4).

        "This could motivate an interface for application developers to
        directly tune replay parameters, or to indirectly indicate phase
        behavior and timings."  A hinted phase overrides the online
        detector for episode grouping and replay exclusion until cleared
        (``hint_phase(None)``).
        """
        if phase_id is not None and phase_id < 0:
            raise ValueError("phase_id must be non-negative (or None to clear)")
        self._hinted_phase = phase_id

    def reset_stream(self) -> None:
        """Forget stream position (e.g., between traces) but keep learning."""
        self.encoder.reset_stream()
        self._live.reset_state()
        self.history.clear()
        self._prev_class = None
        self._last_probs = None
