"""Online phase detection (§5.4).

Replay needs phases: "another challenge in incorporating replay is to
define application phases so that they can be replayed."  The paper
suggests "identifying contexts or phases using clustering of abstract
representations learned by the network" [14].

:class:`OnlinePhaseDetector` implements a lightweight version: it clusters
*histogram signatures* of the feature stream (an abstract representation
of what the workload is doing) with an online leader-follower scheme — a
new signature joins the nearest centroid if the cosine similarity clears
a threshold, otherwise it founds a new phase.  Returning to an earlier
pattern re-activates the earlier phase id, which is exactly what
phase-aware replay needs.

Signatures are computed over *tumbling* (non-overlapping) windows, not
sliding ones.  A sliding window morphs gradually through a phase switch,
and any centroid-updating clusterer simply tracks the morphing signature
and never splits; tumbling windows jump discretely from one phase's
signature to the next, which the similarity threshold catches.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    na = float(np.linalg.norm(a))
    nb = float(np.linalg.norm(b))
    if na == 0.0 or nb == 0.0:  # repro-lint: disable=RL003 (exact-zero norm guard)
        return 0.0
    return float(a @ b) / (na * nb)


@dataclass
class OnlinePhaseDetector:
    """Leader-follower clustering of miss-class histograms.

    Attributes:
        vocab_size: Class vocabulary (histogram dimensionality).
        window: Misses per signature.
        similarity_threshold: Cosine similarity needed to join an existing
            phase; below it a new phase is created.
        update_rate: EMA rate for refreshing a matched centroid.
        max_phases: Hard cap; beyond it the nearest phase is reused.
    """

    vocab_size: int
    window: int = 64
    similarity_threshold: float = 0.8
    update_rate: float = 0.05
    max_phases: int = 32
    current_phase: int = field(default=-1, init=False)
    transitions: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.vocab_size <= 0 or self.window <= 0:
            raise ValueError("vocab_size and window must be positive")
        if not 0 < self.similarity_threshold < 1:
            raise ValueError("similarity_threshold must be in (0, 1)")
        self._recent: deque[int] = deque(maxlen=self.window)
        self._centroids: list[np.ndarray] = []

    @property
    def n_phases(self) -> int:
        return len(self._centroids)

    def observe(self, class_id: int) -> int:
        """Feed one feature; returns the current phase id.

        Phase ids start at 0; -1 is returned until the first signature
        window completes.  The phase id updates once per completed
        (tumbling) window and holds in between.
        """
        if not 0 <= class_id < self.vocab_size:
            raise ValueError(f"class {class_id} outside vocab")
        self._recent.append(class_id)
        if len(self._recent) < self.window:
            return self.current_phase

        signature = self._signature()
        self._recent.clear()  # tumbling window: start fresh
        phase = self._match(signature)
        if phase != self.current_phase:
            self.transitions += 1
            self.current_phase = phase
        return self.current_phase

    def _signature(self) -> np.ndarray:
        hist = np.bincount(np.fromiter(self._recent, dtype=np.int64, count=len(self._recent)),
                           minlength=self.vocab_size).astype(np.float64)
        total = hist.sum()
        return hist / total if total else hist

    def _match(self, signature: np.ndarray) -> int:
        if not self._centroids:
            self._centroids.append(signature.copy())
            return 0
        sims = [cosine_similarity(signature, c) for c in self._centroids]
        best = int(np.argmax(sims))
        if sims[best] >= self.similarity_threshold or len(self._centroids) >= self.max_phases:
            centroid = self._centroids[best]
            centroid += self.update_rate * (signature - centroid)
            return best
        self._centroids.append(signature.copy())
        return len(self._centroids) - 1
