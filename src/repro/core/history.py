"""Miss-history window (§5.2).

The prefetcher keeps a bounded history of recent misses.  §5.2: "when
prefetching multiple steps into the future, a window of past misses is
required to construct appropriate training examples.  Thus, the prefetch
length determines a minimum history size."  This module provides that
window and the lagged training pairs it induces.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


@dataclass(frozen=True)
class MissRecord:
    """One encoded miss."""

    class_id: int
    address: int
    timestamp: int


@dataclass
class MissHistory:
    """Bounded window of encoded misses.

    Attributes:
        capacity: Window length.  Must be at least ``prefetch length + 1``
            for lag-L training pairs to exist.
    """

    capacity: int = 16
    _window: deque = field(default_factory=deque, repr=False)

    def __post_init__(self) -> None:
        if self.capacity < 2:
            raise ValueError("capacity must be at least 2")
        self._window = deque(maxlen=self.capacity)

    def __len__(self) -> int:
        return len(self._window)

    def push(self, record: MissRecord) -> None:
        self._window.append(record)

    def last(self, n: int = 1) -> list[MissRecord]:
        if n <= 0:
            return []
        return list(self._window)[-n:]

    def latest(self) -> MissRecord | None:
        return self._window[-1] if self._window else None

    def transition_pair(self, lag: int = 1) -> tuple[MissRecord, MissRecord] | None:
        """The (input, target) pair at distance ``lag``, if the window holds it.

        lag=1 is the paper's default (predict the next miss); larger lags
        train the direct multi-step predictor of §5.2.
        """
        if lag < 1:
            raise ValueError("lag must be >= 1")
        if len(self._window) < lag + 1:
            return None
        window = list(self._window)
        return window[-1 - lag], window[-1]

    def classes(self) -> list[int]:
        return [r.class_id for r in self._window]

    def mean_inter_miss_ns(self) -> float | None:
        """Average gap between misses in the window (drives timeliness)."""
        if len(self._window) < 2:
            return None
        window = list(self._window)
        span = window[-1].timestamp - window[0].timestamp
        return span / (len(window) - 1) if span >= 0 else None

    def clear(self) -> None:
        self._window.clear()
