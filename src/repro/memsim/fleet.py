"""The multi-tenant fleet engine: N simulation lanes in one batched loop.

One ``simulate()`` call advances one (trace, prefetcher, cache) lane and
pays the Python/numpy dispatch floor per event.  :class:`FleetCohort`
runs up to ``width`` independent lanes against a single
:class:`~repro.memsim.fleet_cache.FleetPageCache`, advancing *every*
lane per vectorized operation:

* **Lockstep rounds.**  Each :meth:`FleetCohort.step` processes due
  prefetch landings per lane, then walks all active lanes through their
  hit runs at once (``FleetPageCache.hit_walk``, or one compiled
  ``rk_fleet_hit_walk`` call routed through ``repro.nn.backends``), then
  resolves the stalled lanes' demand misses with one batched
  ``fill_step``.  Miss *handling* (prefetcher callbacks, queue issues)
  stays scalar per lane so every prefetcher sees the exact callback
  sequence of the single-tenant engines.
* **Null lanes run to completion.**  Lanes with the null prefetcher
  never issue, so with a compiled backend each is replayed start-to-end
  inside one ``rk_fleet_null_run`` call per cohort step.
* **Drain and refill.**  Finished lanes report a
  :class:`~repro.memsim.simulator.SimResult` and their slot is free for
  :meth:`FleetCohort.load` — the shard scheduler in
  ``repro.harness.fleet`` keeps cohorts full from a pending queue.

Bit-identity per lane: round boundaries mirror the scalar engine's event
order exactly — landings are processed before the access they precede
(``next_landing <= pos``), the walk limit is clamped to the next landing
so residency is constant inside a walk, and a miss advances the lane by
one access after fill + prediction issue.  Combined with the
fuzz-pinned fleet cache, an N-lane cohort reproduces the stats, miss
indices, and learned prefetcher state of N independent ``simulate()``
calls (``tests/memsim/test_fleet_engine.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..nn.backends import resolve_backend, sim_kernels
from ..patterns.trace import Trace
from .events import MissEvent
from .fleet_cache import FleetPageCache
from .prefetch_queue import NO_PENDING, PrefetchQueue
from .prefetcher import Prefetcher
from .simulator import SimConfig, SimResult

__all__ = ["FleetCohort", "FleetLaneSpec"]


@dataclass(frozen=True)
class FleetLaneSpec:
    """One tenant lane: a trace replayed against a prefetcher instance.

    Each lane needs its *own* prefetcher instance (lanes learn
    independently); traces and configs may be shared freely.

    Deliberately *not* a ``run_grid`` cache-key spec: it binds live
    objects (the trace arrays, a stateful prefetcher) for the engine's
    identity-keyed sharing, so it never enters ``spec_key``.
    """

    trace: Trace  # repro-lint: disable=RL005  (live object, not a cache key)
    prefetcher: Prefetcher  # repro-lint: disable=RL005  (stateful, per-lane)
    config: SimConfig = SimConfig()


@dataclass
class _PackedTrace:
    """Load-ready per-(trace, config) data, shared across lanes.

    Keyed by ``(id(trace), id(config))`` — identity, not equality, so the
    hot path skips hashing the config dataclass per lane.  Both objects
    are kept in the entry, pinning their ids for the cache's lifetime
    (no stale-id aliasing); equal-but-distinct configs simply pack
    twice, which costs memory, never correctness.
    """

    trace: Trace
    config: SimConfig
    n: int
    capacity: int
    cids: np.ndarray
    pages: np.ndarray
    stores: np.ndarray
    universe_size: int
    cid_of: dict[int, int]


@dataclass
class _Lane:
    """Mutable per-slot state while a lane is in flight."""

    spec: FleetLaneSpec
    queue: PrefetchQueue
    miss_indices: list[int] | None
    is_null: bool
    on_miss_fast: Any
    on_miss: Any
    max_prefetches: int
    addresses: np.ndarray | None
    stream_ids: np.ndarray | None
    timestamps: np.ndarray | None
    # Stacked-CLS membership: the lane's misses route through one
    # batched CLSFleetGroup call per round instead of per-lane model
    # steps (None/-1 = the scalar callback path).
    cls_group: Any = None
    cls_slot: int = -1


class FleetCohort:
    """A fixed-width shard of concurrently simulated tenant lanes.

    Args:
        width: Number of lane slots (T).
        slot_capacity: Maximum per-lane cache capacity this cohort hosts.
        universe_capacity: Maximum per-lane page-universe size.
        trace_capacity: Maximum per-lane trace length.
        backend: Kernel backend name for the fleet walks (``"auto"`` /
            ``"numpy"`` / ``"numba"`` / ``"c"``, as in ``simulate``).
        record_miss_indices: Collect per-lane miss indices in results.
        stacked_cls: Batch same-config learned (CLS/Hebbian) lanes
            through one stacked model call per round
            (``core/cls_fleet.py``).  ``False`` keeps every lane on the
            scalar per-miss callback path — the zero-regression escape
            hatch; both paths are bit-identical per lane.
    """

    def __init__(self, width: int, *, slot_capacity: int,
                 universe_capacity: int, trace_capacity: int,
                 backend: str = "auto",
                 record_miss_indices: bool = False,
                 stacked_cls: bool = True) -> None:
        if width <= 0 or trace_capacity <= 0:
            raise ValueError("fleet cohort dimensions must be positive")
        self.width = width
        self.trace_capacity = trace_capacity
        self.backend_used = resolve_backend(backend, domain="sim")
        self._kern = sim_kernels(self.backend_used)
        self.cache = FleetPageCache(width, slot_capacity, universe_capacity)
        shape = (width, trace_capacity)
        self._cids2d = np.zeros(shape, dtype=np.int64)
        self._pages2d = np.zeros(shape, dtype=np.int64)
        self._stores2d = np.zeros(shape, dtype=bool)
        # Trace-row indirection: lane t reads trace row _trace_row[t], so
        # lanes replaying the same (trace, config) share one packed row
        # and a refill of a pooled trace copies nothing.  Rows are
        # refcounted; W rows always suffice (distinct packs <= lanes).
        self._trace_row = np.zeros(width, dtype=np.int64)
        self._row_refs = np.zeros(width, dtype=np.int64)
        self._row_key: list[int | None] = [None] * width
        self._row_of: dict[int, int] = {}
        self._free_rows = list(range(width - 1, -1, -1))
        self._n_len = np.zeros(width, dtype=np.int64)
        self._pos = np.zeros(width, dtype=np.int64)
        self._limit = np.zeros(width, dtype=np.int64)
        self._next_landing = np.full(width, NO_PENDING, dtype=np.int64)
        self._active = np.zeros(width, dtype=bool)
        self._is_null = np.zeros(width, dtype=bool)
        self._lanes: list[_Lane | None] = [None] * width
        self._results: list[SimResult | None] = [None] * width
        self._record = record_miss_indices
        # page -> cid dicts shared across lanes replaying the same trace
        # (keyed by the memoized universe array's identity; the array is
        # kept in the value so the id stays live).
        self._cid_cache: dict[int, tuple[np.ndarray, dict[int, int]]] = {}
        # Packed per-(trace, config) load data, shared across lanes
        # replaying the same trace (identity-keyed; see _PackedTrace).
        self._pack_cache: dict[tuple[int, int], _PackedTrace] = {}
        # fleet_group_key -> CLSFleetGroup for stacked learned lanes.
        self._stacked_cls = stacked_cls
        self._cls_groups: dict[Any, Any] = {}
        self._hit_walk: Callable[[int], None] | None = None
        self._null_run: Callable[[int, int], None] | None = None
        if self._kern is not None:
            cache = self.cache
            self._lanes_buf = np.zeros(width, dtype=np.int64)
            self._miss_n = np.zeros(width, dtype=np.int64)
            self._miss_idx = np.zeros(
                shape if record_miss_indices else (width, 1), dtype=np.int64)
            self._hit_walk = self._kern.bind_fleet_hit_walk(
                lanes_buf=self._lanes_buf, trace_row=self._trace_row,
                soc=cache.soc, cids=self._cids2d,
                stores=self._stores2d, last_use=cache.last_use,
                dirty=cache.dirty, undemanded=cache.undemanded,
                pos=self._pos, limit=self._limit, clock=cache.clock,
                n_undemanded=cache.n_undemanded,
                prefetch_hits=cache.prefetch_hits, hits=cache.hits,
                accesses=cache.accesses)
            if record_miss_indices:
                # The kernel records into lane rows of a (T, L) matrix
                # with the trace-matrix stride; without recording the
                # buffer stays a (T, 1) stub and record=0 never writes.
                self._null_run = self._kern.bind_fleet_null_run(
                    lanes_buf=self._lanes_buf, trace_row=self._trace_row,
                    soc=cache.soc,
                    cids=self._cids2d, pages=self._pages2d,
                    stores=self._stores2d, page_of_slot=cache.page_of_slot,
                    last_use=cache.last_use, dirty=cache.dirty,
                    cid_of_slot=cache.cid_of_slot, capacity=cache.capacity,
                    n_len=self._n_len, pos=self._pos, clock=cache.clock,
                    n_resident=cache.n_resident, hits=cache.hits,
                    demand_misses=cache.demand_misses,
                    writebacks=cache.writebacks, accesses=cache.accesses,
                    miss_idx=self._miss_idx, miss_n=self._miss_n)
            else:
                self._null_run = self._kern.bind_fleet_null_run(
                    lanes_buf=self._lanes_buf, trace_row=self._trace_row,
                    soc=cache.soc,
                    cids=self._cids2d, pages=self._pages2d,
                    stores=self._stores2d, page_of_slot=cache.page_of_slot,
                    last_use=cache.last_use, dirty=cache.dirty,
                    cid_of_slot=cache.cid_of_slot, capacity=cache.capacity,
                    n_len=self._n_len, pos=self._pos, clock=cache.clock,
                    n_resident=cache.n_resident, hits=cache.hits,
                    demand_misses=cache.demand_misses,
                    writebacks=cache.writebacks, accesses=cache.accesses,
                    miss_idx=self._miss_idx, miss_n=self._miss_n)

    @classmethod
    def for_specs(cls, specs: list[FleetLaneSpec], *, width: int | None = None,
                  backend: str = "auto",
                  record_miss_indices: bool = False,
                  stacked_cls: bool = True) -> "FleetCohort":
        """Size a cohort to host any lane drawn from ``specs``."""
        if not specs:
            raise ValueError("for_specs requires at least one lane spec")
        slot_cap = 1
        uni_cap = 1
        trace_cap = 1
        seen: dict[tuple[int, int], tuple[int, int, int]] = {}
        for spec in specs:
            # Fleets routinely replay a shared trace pool across many
            # lanes; size each distinct (trace, config) pair once.
            # Identity keys are safe here: every keyed object is held
            # live by `specs` for the whole loop.
            key = (id(spec.trace), id(spec.config))
            dims = seen.get(key)
            if dims is None:
                universe, _ = spec.trace.page_index(spec.config.page_size)
                dims = (spec.config.resolve_capacity(spec.trace),
                        len(universe), len(spec.trace))
                seen[key] = dims
            slot_cap = max(slot_cap, dims[0])
            uni_cap = max(uni_cap, dims[1])
            trace_cap = max(trace_cap, dims[2])
        return cls(width if width is not None else len(specs),
                   slot_capacity=slot_cap, universe_capacity=uni_cap,
                   trace_capacity=trace_cap, backend=backend,
                   record_miss_indices=record_miss_indices,
                   stacked_cls=stacked_cls)

    # ------------------------------------------------------------------
    # Lane lifecycle
    # ------------------------------------------------------------------
    def free_slots(self) -> list[int]:
        """Slots currently available for :meth:`load`."""
        return [s for s in range(self.width)
                if not self._active[s] and self._results[s] is None]

    def active_count(self) -> int:
        return int(np.count_nonzero(self._active))

    def _packed(self, spec: FleetLaneSpec) -> _PackedTrace:
        """Load-ready (trace, config) data, built once per distinct pair."""
        trace = spec.trace
        config = spec.config
        key = (id(trace), id(config))
        packed = self._pack_cache.get(key)
        if packed is not None:
            return packed
        n = len(trace)
        if n == 0 or n > self.trace_capacity:
            raise ValueError(
                f"trace length {n} outside (0, {self.trace_capacity}]")
        universe, cids = trace.page_index(config.page_size)
        cached = self._cid_cache.get(id(universe))
        if cached is None or cached[0] is not universe:
            cached = (universe,
                      {int(p): i for i, p in enumerate(universe.tolist())})
            self._cid_cache[id(universe)] = cached
        packed = _PackedTrace(
            trace=trace, config=config, n=n,
            capacity=config.resolve_capacity(trace),
            cids=cids,
            pages=trace.pages(config.page_size),
            stores=trace.kinds != 0,
            universe_size=len(universe),
            cid_of=cached[1])
        self._pack_cache[key] = packed
        return packed

    def load(self, slot: int, spec: FleetLaneSpec) -> None:
        """Admit a lane into ``slot`` (which must be free or harvested)."""
        self.load_many([slot], [spec])

    def load_many(self, slots: list[int], specs: list[FleetLaneSpec]) -> None:
        """Admit one lane per ``(slot, spec)`` pair in a single batch.

        Per-lane load cost is the fleet's throughput floor at scale (the
        compiled walks amortize everything else), so the cache resets and
        slot-vector writes happen once per batch.  Validation runs for
        the whole batch before any state is touched.
        """
        if len(slots) != len(specs):
            raise ValueError("load_many needs one spec per slot")
        if not slots:
            return
        packs: list[_PackedTrace] = []
        for slot, spec in zip(slots, specs):
            if self._active[slot]:
                raise ValueError(f"slot {slot} is still active")
            prefetcher = spec.prefetcher
            on_access = getattr(prefetcher, "on_access", None)
            if on_access is not None and getattr(prefetcher,
                                                 "wants_accesses", True):
                raise ValueError(
                    "fleet engine cannot drive per-access observers; run "
                    "wants_accesses prefetchers through simulate() instead")
            packs.append(self._packed(spec))
        lanes = np.asarray(slots, dtype=np.int64)
        self.cache.attach_lanes(
            lanes,
            np.array([p.capacity for p in packs], dtype=np.int64),
            np.array([p.universe_size for p in packs], dtype=np.int64),
            [p.cid_of for p in packs])
        nulls: list[bool] = []
        rows: list[int] = []
        for slot, spec, packed in zip(slots, specs, packs):
            trace = spec.trace
            prefetcher = spec.prefetcher
            row = self._row_of.get(id(packed))
            if row is None:
                row = self._free_rows.pop()
                n = packed.n
                self._cids2d[row, :n] = packed.cids
                self._pages2d[row, :n] = packed.pages
                self._stores2d[row, :n] = packed.stores
                self._row_of[id(packed)] = row
                self._row_key[row] = id(packed)
            self._row_refs[row] += 1
            rows.append(row)
            is_null = bool(getattr(prefetcher, "is_null", False))
            nulls.append(is_null)
            if is_null:
                addresses = stream_ids = timestamps = None
            else:
                addresses = trace.addresses
                stream_ids = trace.stream_ids
                timestamps = trace.timestamps
            lane = _Lane(
                spec=spec,
                queue=PrefetchQueue(
                    delay_accesses=spec.config.prefetch_delay_accesses),
                miss_indices=[] if self._record else None,
                is_null=is_null,
                on_miss_fast=getattr(prefetcher, "on_miss_fast", None),
                on_miss=prefetcher.on_miss,
                max_prefetches=spec.config.max_prefetches_per_miss,
                addresses=addresses, stream_ids=stream_ids,
                timestamps=timestamps)
            if self._stacked_cls:
                steppable = getattr(prefetcher, "fleet_steppable", None)
                if steppable is not None and steppable():
                    # Deferred import: core.cls_fleet imports back into
                    # this package for the prefetcher types.
                    from ..core.cls_fleet import CLSFleetGroup
                    group_key = prefetcher.fleet_group_key()
                    group = self._cls_groups.get(group_key)
                    if group is None:
                        group = CLSFleetGroup(prefetcher)
                        self._cls_groups[group_key] = group
                    lane.cls_group = group
                    lane.cls_slot = group.adopt(prefetcher)
            self._lanes[slot] = lane
            self._results[slot] = None
        self._trace_row[lanes] = rows
        self._n_len[lanes] = [p.n for p in packs]
        self._pos[lanes] = 0
        self._limit[lanes] = 0
        self._next_landing[lanes] = NO_PENDING
        self._is_null[lanes] = nulls
        if self._kern is not None:
            self._miss_n[lanes] = 0
        self._active[lanes] = True

    def harvest(self, slot: int) -> SimResult:
        """Take the finished lane's result, freeing the slot for reuse."""
        result = self._results[slot]
        if result is None:
            raise ValueError(f"slot {slot} has no finished result")
        self._results[slot] = None
        self._lanes[slot] = None
        return result

    def _finish_many(self, slots: list[int]) -> None:
        lanes = np.asarray(slots, dtype=np.int64)
        stats = self.cache.lanes_stats(lanes)
        capacities = self.cache.capacity[lanes].tolist()
        for slot, lane_stats, capacity in zip(slots, stats, capacities):
            lane = self._lanes[slot]
            assert lane is not None
            if lane.cls_group is not None:
                # Hand the stacked model state back so the prefetcher
                # leaves the cohort exactly as simulate() would have
                # left it (learned weights included).
                lane.cls_group.release(lane.cls_slot, lane.spec.prefetcher)
                lane.cls_group = None
                lane.cls_slot = -1
            spec = lane.spec
            miss_indices = lane.miss_indices \
                if lane.miss_indices is not None else []
            self._results[slot] = SimResult(
                trace_name=spec.trace.name,
                prefetcher_name=spec.prefetcher.name,
                capacity_pages=capacity,
                stats=lane_stats,
                config=spec.config,
                miss_indices=miss_indices,
                engine_used="fleet",
                backend_used=self.backend_used)
        self._active[lanes] = False
        for row in self._trace_row[lanes].tolist():
            self._row_refs[row] -= 1
            if self._row_refs[row] == 0:
                key = self._row_key[row]
                assert key is not None
                del self._row_of[key]
                self._row_key[row] = None
                self._free_rows.append(row)

    def _issue(self, slot: int, lane: _Lane, i: int, page: int,
               predictions: list[int]) -> None:
        """Queue one miss's predictions — identical for both miss paths."""
        if predictions:
            if len(predictions) > lane.max_prefetches:
                predictions = predictions[:lane.max_prefetches]
            queue = lane.queue
            for predicted in predictions:
                if predicted != page:
                    queue.issue(int(predicted), i)
            self._next_landing[slot] = queue.next_landing

    # ------------------------------------------------------------------
    # The batched loop
    # ------------------------------------------------------------------
    def step(self) -> list[int]:
        """Advance every active lane one round; returns finished slots.

        A round is: due landings -> lockstep hit walk (limit = next
        landing or end-of-trace) -> one batched fill for every stalled
        lane -> scalar prefetcher callbacks for those misses.  Null
        lanes skip the round structure entirely on compiled backends
        (one ``rk_fleet_null_run`` drives each to completion).
        """
        finished: list[int] = []
        act = np.flatnonzero(self._active)
        if act.size == 0:
            return finished
        if self._null_run is not None:
            null_lanes = act[self._is_null[act]]
            if null_lanes.size:
                self._lanes_buf[:null_lanes.size] = null_lanes
                self._null_run(int(null_lanes.size), int(self._record))
                null_slots = null_lanes.tolist()
                if self._record:
                    for slot in null_slots:
                        lane = self._lanes[slot]
                        assert lane is not None \
                            and lane.miss_indices is not None
                        lane.miss_indices.extend(
                            self._miss_idx[slot, :self._miss_n[slot]]
                            .tolist())
                self._finish_many(null_slots)
                finished.extend(null_slots)
                act = act[~self._is_null[act]]
                if act.size == 0:
                    return finished
        pos = self._pos
        next_landing = self._next_landing
        cache = self.cache
        due = act[next_landing[act] <= pos[act]]
        for slot in due.tolist():
            lane = self._lanes[slot]
            assert lane is not None
            queue = lane.queue
            for page in queue.landed(int(pos[slot])):
                cache.insert_prefetch(slot, page)
            next_landing[slot] = queue.next_landing
        self._limit[act] = np.minimum(self._n_len[act], next_landing[act])
        limit_view = self._limit
        if self._hit_walk is not None:
            self._lanes_buf[:act.size] = act
            self._hit_walk(int(act.size))
        else:
            cache.hit_walk(act, self._cids2d, self._stores2d, pos,
                           limit_view, trace_row=self._trace_row)
        missed = act[pos[act] < limit_view[act]]
        if missed.size:
            p = pos[missed]
            rows_m = self._trace_row[missed]
            cids = self._cids2d[rows_m, p]
            pages = self._pages2d[rows_m, p]
            stores = self._stores2d[rows_m, p]
            cache.fill_step(missed, cids, pages, stores)
            # group -> (slot, i, page, lane) rows gathered for one
            # stacked call after the scalar lanes are served.
            stacked: dict[Any, list[tuple[int, int, int, _Lane]]] = {}
            for slot, i, page in zip(missed.tolist(), p.tolist(),
                                     pages.tolist()):
                lane = self._lanes[slot]
                assert lane is not None
                if lane.miss_indices is not None:
                    lane.miss_indices.append(i)
                if lane.is_null:
                    continue
                if lane.cls_group is not None:
                    stacked.setdefault(id(lane.cls_group), []).append(
                        (slot, i, page, lane))
                    continue
                assert lane.addresses is not None
                assert lane.stream_ids is not None
                assert lane.timestamps is not None
                if lane.on_miss_fast is not None:
                    predictions = lane.on_miss_fast(
                        i, int(lane.addresses[i]), page,
                        int(lane.stream_ids[i]), int(lane.timestamps[i]))
                else:
                    predictions = lane.on_miss(MissEvent(
                        index=i, address=int(lane.addresses[i]), page=page,
                        stream_id=int(lane.stream_ids[i]),
                        timestamp=int(lane.timestamps[i])))
                self._issue(slot, lane, i, page, predictions)
            for rows in stacked.values():
                group = rows[0][3].cls_group
                addresses = [int(lane.addresses[i])  # type: ignore[index]
                             for _, i, _, lane in rows]
                timestamps = [int(lane.timestamps[i])  # type: ignore[index]
                              for _, i, _, lane in rows]
                predictions_rows = group.handle_misses(
                    [lane.cls_slot for _, _, _, lane in rows],
                    addresses, [page for _, _, page, _ in rows],
                    timestamps)
                for (slot, i, page, lane), predictions in zip(
                        rows, predictions_rows):
                    self._issue(slot, lane, i, page, predictions)
            pos[missed] = p + 1
        done = act[pos[act] >= self._n_len[act]].tolist()
        if done:
            self._finish_many(done)
            finished.extend(done)
        return finished

    def run_to_completion(self) -> dict[int, SimResult]:
        """Step until every loaded lane finishes; results keyed by slot."""
        results: dict[int, SimResult] = {}
        while self.active_count():
            for slot in self.step():
                results[slot] = self.harvest(slot)
        return results


def run_cohort(specs: list[FleetLaneSpec], *, backend: str = "auto",
               record_miss_indices: bool = False,
               width: int | None = None,
               stacked_cls: bool = True) -> list[SimResult]:
    """Run ``specs`` through one cohort; results in spec order.

    Convenience wrapper for tests and small fleets — the shard scheduler
    in ``repro.harness.fleet`` handles drain/refill at scale.
    """
    cohort = FleetCohort.for_specs(specs, width=width, backend=backend,
                                   record_miss_indices=record_miss_indices,
                                   stacked_cls=stacked_cls)
    pending = list(enumerate(specs))
    pending.reverse()
    slot_to_spec: dict[int, int] = {}
    out: list[SimResult | None] = [None] * len(specs)
    for slot in cohort.free_slots():
        if not pending:
            break
        index, spec = pending.pop()
        cohort.load(slot, spec)
        slot_to_spec[slot] = index
    while cohort.active_count():
        for slot in cohort.step():
            out[slot_to_spec.pop(slot)] = cohort.harvest(slot)
            if pending:
                index, spec = pending.pop()
                cohort.load(slot, spec)
                slot_to_spec[slot] = index
    return [r for r in out if r is not None]
