"""The retained OrderedDict reference implementation of the page cache.

This is the seed ``PageCache`` (an ``OrderedDict`` whose insertion order
*is* the LRU order), kept verbatim as the executable specification for
the array-backed :class:`~repro.memsim.pagecache.PageCache` that replaced
it on the hot path.  ``tests/memsim/test_pagecache_fuzz.py`` drives both
implementations through randomized access/fill/insert_prefetch
interleavings and asserts every :class:`~repro.memsim.pagecache.CacheStats`
counter — including the writeback and pollution paths — is equal after
every single operation, the same contract PR 1 established for
``nn/hebbian_reference.py``.

Do not optimize this file; its value is being obviously correct.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from .pagecache import HIT, MISS, PREFETCH_HIT, CacheStats


@dataclass
class ReferencePageCache:
    """LRU page cache over an ``OrderedDict`` (the seed implementation).

    Attributes:
        capacity_pages: Maximum number of resident pages (> 0).
        stats: Counter block, updated in place.
    """

    capacity_pages: int
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.capacity_pages <= 0:
            raise ValueError("capacity_pages must be positive")
        # page -> [is_undemanded_prefetch, is_dirty]
        self._resident: OrderedDict[int, list[bool]] = OrderedDict()

    def __len__(self) -> int:
        return len(self._resident)

    def telemetry_counters(self) -> dict[str, int | float]:
        """Named counters for the telemetry sink, same names and meanings
        as the array-backed engine's (ints: monotone; floats: gauges)."""
        stats = self.stats
        undemanded = sum(1 for entry in self._resident.values() if entry[0])
        return {
            "cache_accesses": stats.accesses,
            "cache_hits": stats.hits,
            "cache_demand_misses": stats.demand_misses,
            "cache_prefetch_hits": stats.prefetch_hits,
            "cache_writebacks": stats.writebacks,
            "cache_resident": float(len(self._resident)),
            "cache_undemanded": float(undemanded),
        }

    def __contains__(self, page: int) -> bool:
        return page in self._resident

    def access(self, page: int, store: bool = False) -> str:
        """A demand access: returns ``HIT``, ``PREFETCH_HIT`` or ``MISS``."""
        stats = self.stats
        stats.accesses += 1
        resident = self._resident
        entry = resident.get(page)
        if entry is None:
            stats.demand_misses += 1
            return MISS
        resident.move_to_end(page)
        stats.hits += 1
        if store:
            entry[1] = True
        if entry[0]:
            entry[0] = False
            stats.prefetch_hits += 1
            return PREFETCH_HIT
        return HIT

    def fill(self, page: int, store: bool = False) -> None:
        """Install a page on demand (after a miss)."""
        resident = self._resident
        entry = resident.get(page)
        if entry is not None:
            entry[0] = False
            if store:
                entry[1] = True
            resident.move_to_end(page)
            return
        if len(resident) >= self.capacity_pages:
            was_prefetch, dirty = resident.popitem(last=False)[1]
            stats = self.stats
            if dirty:
                stats.writebacks += 1
            if was_prefetch:
                stats.prefetches_evicted_unused += 1
        resident[page] = [False, store]

    def insert_prefetch(self, page: int) -> bool:
        """Install a prefetched page.  Returns False if it was redundant."""
        stats = self.stats
        stats.prefetches_issued += 1
        resident = self._resident
        if page in resident:
            stats.prefetches_redundant += 1
            resident.move_to_end(page)
            return False
        if len(resident) >= self.capacity_pages:
            was_prefetch, dirty = resident.popitem(last=False)[1]
            if dirty:
                stats.writebacks += 1
            if was_prefetch:
                stats.prefetches_evicted_unused += 1
            else:
                stats.demand_evictions_by_prefetch += 1
        resident[page] = [True, False]
        return True

    def resident_pages(self) -> list[int]:
        return list(self._resident)

    def dirty_pages(self) -> int:
        return sum(1 for entry in self._resident.values() if entry[1])
