"""Multi-tenant (tenant, slot) page-cache state for the fleet engine (PR 8).

One :class:`~repro.memsim.pagecache.PageCache` holds one tenant's
residency in per-slot arrays.  :class:`FleetPageCache` stacks N such
caches into (tenant, slot) matrices — ``last_use`` / ``page_of_slot`` /
``undemanded`` / ``dirty`` / ``cid_of_slot`` of shape ``(T, S)`` and the
cid-indexed slot table ``soc`` of shape ``(T, U)`` — plus per-lane
``(T,)`` vectors for every :class:`~repro.memsim.pagecache.CacheStats`
counter, the LRU clock, and the residency counts.  The fleet engine
(``memsim/fleet.py``) then advances *all* lanes with a handful of
vectorized operations per lockstep round instead of paying the Python
dispatch floor once per lane per event.

Bit-identity per lane
---------------------
Every lane behaves exactly like an independent single-tenant
``PageCache`` (and therefore like the ``OrderedDict``
``memsim/pagecache_reference.py`` specification):

* The scalar entry points (:meth:`access`, :meth:`fill`,
  :meth:`insert_prefetch`) are line-for-line ports of the single-tenant
  methods with a leading lane index.
* The batched lazy-LRU victim queue keeps one ``(stamp, slot)`` snapshot
  row per lane (refilled by a per-tenant ``argpartition`` over the 2-D
  stamp matrix) and pops with the same stale-stamp skip: a matching
  entry is provably the lane's true LRU minimum (every slot outside the
  snapshot was younger at refill time and stamps only grow), so the
  victim *choice* is independent of snapshot boundaries and of how many
  lanes share a refill call.
* Slot numbering differs from the single-tenant free list (a lane below
  capacity installs into virgin slot ``n_resident``; at capacity the
  evicted slot is reused immediately), which is unobservable: evictions
  happen only at capacity and the freed slot is always consumed by the
  same operation, so LRU order, residency, and every counter are
  unaffected.

``tests/memsim/test_fleet_cache.py`` fuzz-pins randomized per-lane
operation interleavings against ``ReferencePageCache`` counter-for-
counter after every operation.

Like the single-tenant bulk API, demand residency is authoritative in
``soc`` (demand pages always come from the trace's page universe);
out-of-universe pages (speculative prefetches) live in a per-lane dict
overlay that bulk scans never need to consult.
"""

from __future__ import annotations

import numpy as np

from .pagecache import HIT, MISS, PREFETCH_HIT, CacheStats, _FREE, _VICTIM_BATCH

__all__ = ["FleetPageCache"]

#: Names of the per-lane counter vectors, in ``CacheStats`` field order.
_STAT_FIELDS = (
    "accesses", "hits", "demand_misses", "prefetch_hits",
    "prefetches_issued", "prefetches_redundant", "prefetches_evicted_unused",
    "demand_evictions_by_prefetch", "writebacks",
)


class FleetPageCache:
    """N independent LRU page caches stored as (tenant, slot) matrices.

    Args:
        n_lanes: Number of tenant lanes (T).
        slot_capacity: Slot matrix width (S) — the maximum per-lane
            ``capacity_pages`` this fleet can host.
        universe_capacity: Slot-table width (U) — the maximum per-lane
            page-universe size.
    """

    def __init__(self, n_lanes: int, slot_capacity: int,
                 universe_capacity: int) -> None:
        if n_lanes <= 0 or slot_capacity <= 0 or universe_capacity <= 0:
            raise ValueError("fleet dimensions must be positive")
        self.n_lanes = n_lanes
        self.slot_capacity = slot_capacity
        self.universe_capacity = universe_capacity
        shape = (n_lanes, slot_capacity)
        self.last_use = np.full(shape, _FREE, dtype=np.int64)
        self.page_of_slot = np.zeros(shape, dtype=np.int64)
        self.undemanded = np.zeros(shape, dtype=bool)
        self.dirty = np.zeros(shape, dtype=bool)
        self.cid_of_slot = np.full(shape, -1, dtype=np.int64)
        self.soc = np.full((n_lanes, universe_capacity), -1, dtype=np.int64)
        self.capacity = np.zeros(n_lanes, dtype=np.int64)
        self.clock = np.zeros(n_lanes, dtype=np.int64)
        self.n_resident = np.zeros(n_lanes, dtype=np.int64)
        self.n_undemanded = np.zeros(n_lanes, dtype=np.int64)
        self.accesses = np.zeros(n_lanes, dtype=np.int64)
        self.hits = np.zeros(n_lanes, dtype=np.int64)
        self.demand_misses = np.zeros(n_lanes, dtype=np.int64)
        self.prefetch_hits = np.zeros(n_lanes, dtype=np.int64)
        self.prefetches_issued = np.zeros(n_lanes, dtype=np.int64)
        self.prefetches_redundant = np.zeros(n_lanes, dtype=np.int64)
        self.prefetches_evicted_unused = np.zeros(n_lanes, dtype=np.int64)
        self.demand_evictions_by_prefetch = np.zeros(n_lanes, dtype=np.int64)
        self.writebacks = np.zeros(n_lanes, dtype=np.int64)
        # Lazy-LRU victim queue: one snapshot row per lane, consumed
        # front-to-back with the stale-stamp skip.
        self.vq_stamp = np.full((n_lanes, _VICTIM_BATCH), _FREE,
                                dtype=np.int64)
        self.vq_slot = np.zeros((n_lanes, _VICTIM_BATCH), dtype=np.int64)
        self.vq_idx = np.zeros(n_lanes, dtype=np.int64)
        self.vq_len = np.zeros(n_lanes, dtype=np.int64)
        # Per-lane page -> cid map (shared across lanes replaying the same
        # trace) and the out-of-universe overlay.
        self._cid_of: list[dict[int, int]] = [{} for _ in range(n_lanes)]
        self._extra: list[dict[int, int]] = [{} for _ in range(n_lanes)]

    # ------------------------------------------------------------------
    # Lane lifecycle (load / drain / refill)
    # ------------------------------------------------------------------
    def attach_lane(self, lane: int, capacity: int, universe: np.ndarray,
                    cid_of: dict[int, int] | None = None) -> None:
        """Reset ``lane`` and bind it to a page universe and capacity.

        ``cid_of`` optionally shares a prebuilt ``page -> cid`` dict
        (lanes replaying the same trace share one instead of paying the
        O(universe) dict build per lane).
        """
        if not 0 < capacity <= self.slot_capacity:
            raise ValueError(
                f"lane capacity {capacity} outside (0, {self.slot_capacity}]")
        if len(universe) > self.universe_capacity:
            raise ValueError(
                f"universe of {len(universe)} pages exceeds fleet width "
                f"{self.universe_capacity}")
        self.reset_lane(lane)
        self.capacity[lane] = capacity
        if cid_of is None:
            cid_of = {int(p): i for i, p in enumerate(universe.tolist())}
        self._cid_of[lane] = cid_of

    def attach_lanes(self, lanes: np.ndarray, capacities: np.ndarray,
                     universe_sizes: np.ndarray,
                     cid_ofs: list[dict[int, int]]) -> None:
        """Batched :meth:`attach_lane`: one vectorized reset + bind for a
        whole refill batch instead of ~16 small numpy writes per lane.

        ``universe_sizes`` carries each lane's page-universe size (the
        caller holds the prebuilt ``cid_ofs`` dicts, so the arrays
        themselves are not needed here — only the width check).
        """
        if np.any((capacities <= 0) | (capacities > self.slot_capacity)):
            bad = int(capacities[(capacities <= 0)
                                 | (capacities > self.slot_capacity)][0])
            raise ValueError(
                f"lane capacity {bad} outside (0, {self.slot_capacity}]")
        if np.any(universe_sizes > self.universe_capacity):
            bad = int(universe_sizes[
                universe_sizes > self.universe_capacity][0])
            raise ValueError(
                f"universe of {bad} pages exceeds fleet width "
                f"{self.universe_capacity}")
        self.reset_lanes(lanes)
        self.capacity[lanes] = capacities
        for lane, cid_of in zip(lanes.tolist(), cid_ofs):
            self._cid_of[lane] = cid_of

    def reset_lane(self, lane: int) -> None:
        """Return ``lane`` to the empty-cache state (drain before refill)."""
        self.last_use[lane] = _FREE
        self.undemanded[lane] = False
        self.dirty[lane] = False
        self.cid_of_slot[lane] = -1
        self.soc[lane] = -1
        self.clock[lane] = 0
        self.n_resident[lane] = 0
        self.n_undemanded[lane] = 0
        for name in _STAT_FIELDS:
            getattr(self, name)[lane] = 0
        self.vq_idx[lane] = 0
        self.vq_len[lane] = 0
        self._cid_of[lane] = {}
        self._extra[lane] = {}

    def reset_lanes(self, lanes: np.ndarray) -> None:
        """Vectorized :meth:`reset_lane` over a lane-index array."""
        self.last_use[lanes] = _FREE
        self.undemanded[lanes] = False
        self.dirty[lanes] = False
        self.cid_of_slot[lanes] = -1
        self.soc[lanes] = -1
        self.clock[lanes] = 0
        self.n_resident[lanes] = 0
        self.n_undemanded[lanes] = 0
        for name in _STAT_FIELDS:
            getattr(self, name)[lanes] = 0
        self.vq_idx[lanes] = 0
        self.vq_len[lanes] = 0
        for lane in lanes.tolist():
            self._cid_of[lane] = {}
            self._extra[lane] = {}

    def lane_stats(self, lane: int) -> CacheStats:
        """Materialize one lane's counters as a ``CacheStats`` block."""
        return CacheStats(
            accesses=int(self.accesses[lane]),
            hits=int(self.hits[lane]),
            demand_misses=int(self.demand_misses[lane]),
            prefetch_hits=int(self.prefetch_hits[lane]),
            prefetches_issued=int(self.prefetches_issued[lane]),
            prefetches_redundant=int(self.prefetches_redundant[lane]),
            prefetches_evicted_unused=int(
                self.prefetches_evicted_unused[lane]),
            demand_evictions_by_prefetch=int(
                self.demand_evictions_by_prefetch[lane]),
            writebacks=int(self.writebacks[lane]),
        )

    def lanes_stats(self, lanes: np.ndarray) -> list[CacheStats]:
        """Batched :meth:`lane_stats`: nine vector gathers for the whole
        batch instead of nine scalar fancy-index reads per lane."""
        columns = [getattr(self, name)[lanes].tolist()
                   for name in _STAT_FIELDS]
        return [CacheStats(*row) for row in zip(*columns)]

    def lane_len(self, lane: int) -> int:
        return int(self.n_resident[lane])

    # ------------------------------------------------------------------
    # Scalar API (per-lane ports of PageCache.access/fill/insert_prefetch)
    # ------------------------------------------------------------------
    def _lookup(self, lane: int, page: int) -> int | None:
        cid = self._cid_of[lane].get(page, -1)
        if cid >= 0:
            slot = self.soc[lane, cid]
            return int(slot) if slot >= 0 else None
        return self._extra[lane].get(page)

    def access(self, lane: int, page: int, store: bool = False) -> str:
        """A demand access on ``lane``: ``HIT``, ``PREFETCH_HIT`` or
        ``MISS`` (the caller fills on a miss, as with ``PageCache``)."""
        self.accesses[lane] += 1
        slot = self._lookup(lane, page)
        if slot is None:
            self.demand_misses[lane] += 1
            return MISS
        self.last_use[lane, slot] = self.clock[lane]
        self.clock[lane] += 1
        self.hits[lane] += 1
        if store:
            self.dirty[lane, slot] = True
        if self.n_undemanded[lane] and self.undemanded[lane, slot]:
            self.undemanded[lane, slot] = False
            self.n_undemanded[lane] -= 1
            self.prefetch_hits[lane] += 1
            return PREFETCH_HIT
        return HIT

    def fill(self, lane: int, page: int, store: bool = False) -> None:
        """Install a page on demand (after a miss) on ``lane``."""
        slot = self._lookup(lane, page)
        if slot is not None:
            if self.n_undemanded[lane] and self.undemanded[lane, slot]:
                self.undemanded[lane, slot] = False
                self.n_undemanded[lane] -= 1
            if store:
                self.dirty[lane, slot] = True
            self.last_use[lane, slot] = self.clock[lane]
            self.clock[lane] += 1
            return
        if self.n_resident[lane] >= self.capacity[lane]:
            slot = self._evict_lru(lane, by_prefetch=False)
        else:
            slot = int(self.n_resident[lane])
        self._install(lane, slot, page, undemanded=False, dirty=store)

    def insert_prefetch(self, lane: int, page: int) -> bool:
        """Install a prefetched page on ``lane``; False if redundant."""
        self.prefetches_issued[lane] += 1
        slot = self._lookup(lane, page)
        if slot is not None:
            self.prefetches_redundant[lane] += 1
            self.last_use[lane, slot] = self.clock[lane]
            self.clock[lane] += 1
            return False
        if self.n_resident[lane] >= self.capacity[lane]:
            slot = self._evict_lru(lane, by_prefetch=True)
        else:
            slot = int(self.n_resident[lane])
        self._install(lane, slot, page, undemanded=True, dirty=False)
        return True

    def resident_pages(self, lane: int) -> list[int]:
        """Lane residents in LRU-to-MRU order (the reference dict order)."""
        row = self.last_use[lane]
        occupied = np.flatnonzero(row != _FREE)
        order = occupied[np.argsort(row[occupied])]
        return [int(p) for p in self.page_of_slot[lane, order]]

    # ------------------------------------------------------------------
    # Scalar internals
    # ------------------------------------------------------------------
    def _install(self, lane: int, slot: int, page: int, undemanded: bool,
                 dirty: bool) -> None:
        self.page_of_slot[lane, slot] = page
        self.last_use[lane, slot] = self.clock[lane]
        self.clock[lane] += 1
        if undemanded:
            self.undemanded[lane, slot] = True
            self.n_undemanded[lane] += 1
        if dirty:
            self.dirty[lane, slot] = True
        self.n_resident[lane] += 1
        cid = self._cid_of[lane].get(page, -1)
        if cid >= 0:
            self.soc[lane, cid] = slot
            self.cid_of_slot[lane, slot] = cid
        else:
            self._extra[lane][page] = slot

    def _evict_lru(self, lane: int, by_prefetch: bool) -> int:
        """Evict ``lane``'s LRU page; returns the freed slot."""
        while True:
            idx = int(self.vq_idx[lane])
            if idx >= self.vq_len[lane]:
                self._refill_rows(np.array([lane], dtype=np.int64))
                idx = 0
            stamp = int(self.vq_stamp[lane, idx])
            slot = int(self.vq_slot[lane, idx])
            self.vq_idx[lane] = idx + 1
            if self.last_use[lane, slot] == stamp:
                break
        if self.dirty[lane, slot]:
            self.writebacks[lane] += 1
            self.dirty[lane, slot] = False
        if self.undemanded[lane, slot]:
            self.prefetches_evicted_unused[lane] += 1
            self.undemanded[lane, slot] = False
            self.n_undemanded[lane] -= 1
        elif by_prefetch:
            self.demand_evictions_by_prefetch[lane] += 1
        self.last_use[lane, slot] = _FREE
        self.n_resident[lane] -= 1
        cid = int(self.cid_of_slot[lane, slot])
        if cid >= 0:
            self.soc[lane, cid] = -1
            self.cid_of_slot[lane, slot] = -1
        else:
            del self._extra[lane][int(self.page_of_slot[lane, slot])]
        return slot

    # ------------------------------------------------------------------
    # Batched victim queue
    # ------------------------------------------------------------------
    def _refill_rows(self, rows: np.ndarray) -> None:
        """Snapshot the oldest slots of every row in ``rows``, LRU-first.

        One ``argpartition`` over the 2-D stamp matrix serves all rows.
        The batch size is a pure performance knob (every pop re-checks
        liveness and a live head entry is always the true minimum), so
        clamping it to the smallest row capacity keeps the selection
        rectangular without affecting victim choice.
        """
        batch = int(min(_VICTIM_BATCH, self.capacity[rows].min()))
        stamps = self.last_use[rows]
        part = np.argpartition(stamps, batch - 1, axis=1)[:, :batch]
        picked = np.take_along_axis(stamps, part, axis=1)
        order = np.argsort(picked, axis=1)
        self.vq_slot[rows, :batch] = np.take_along_axis(part, order, axis=1)
        self.vq_stamp[rows, :batch] = np.take_along_axis(picked, order,
                                                         axis=1)
        self.vq_idx[rows] = 0
        self.vq_len[rows] = batch

    def _take_victims(self, lanes: np.ndarray) -> np.ndarray:
        """Pop one LRU victim slot per lane (lanes must be full)."""
        out = np.empty(lanes.size, dtype=np.int64)
        pending = lanes
        pending_pos = np.arange(lanes.size)
        while pending.size:
            empty = self.vq_idx[pending] >= self.vq_len[pending]
            if empty.any():
                self._refill_rows(pending[empty])
            idx = self.vq_idx[pending]
            stamps = self.vq_stamp[pending, idx]
            slots = self.vq_slot[pending, idx]
            self.vq_idx[pending] = idx + 1
            live = self.last_use[pending, slots] == stamps
            out[pending_pos[live]] = slots[live]
            stale = ~live
            pending = pending[stale]
            pending_pos = pending_pos[stale]
        return out

    # ------------------------------------------------------------------
    # Vectorized lockstep API (the fleet engine's inner loop)
    # ------------------------------------------------------------------
    def hit_walk(self, lanes: np.ndarray, cids2d: np.ndarray,
                 stores2d: np.ndarray, pos: np.ndarray,
                 limit: np.ndarray,
                 trace_row: np.ndarray | None = None) -> None:
        """Advance every lane through its hit run, all lanes per step.

        For each lane ``t`` in ``lanes``, replays demand accesses
        ``cids2d[t, pos[t]:]`` with exact per-access ``access()``
        semantics until the first non-resident access (the lane's next
        miss) or ``limit[t]``, updating ``pos`` in place.  When
        ``trace_row`` is given, lane ``t`` reads trace row
        ``trace_row[t]`` instead (lanes replaying the same trace share
        one packed row).  This is the tenant-axis
        ``first_nonresident`` + ``access_run`` fusion: each lockstep
        iteration advances every still-walking lane one access with ~a
        dozen vectorized operations, so total work is
        O(total accesses), not O(lanes x rounds).
        """
        act = lanes
        rows = act if trace_row is None else trace_row[act]
        while act.size:
            p = pos[act]
            walking = p < limit[act]
            act = act[walking]
            if not act.size:
                break
            rows = rows[walking]
            p = pos[act]
            slots = self.soc[act, cids2d[rows, p]]
            hit = slots >= 0
            act = act[hit]
            if not act.size:
                break
            rows = rows[hit]
            slots = slots[hit]
            p = p[hit]
            clk = self.clock[act]
            self.last_use[act, slots] = clk
            self.clock[act] = clk + 1
            self.accesses[act] += 1
            self.hits[act] += 1
            stores = stores2d[rows, p]
            if stores.any():
                self.dirty[act[stores], slots[stores]] = True
            und = self.undemanded[act, slots]
            if und.any():
                ul = act[und]
                self.undemanded[ul, slots[und]] = False
                self.n_undemanded[ul] -= 1
                self.prefetch_hits[ul] += 1
            pos[act] = p + 1

    def fill_step(self, lanes: np.ndarray, cids: np.ndarray,
                  pages: np.ndarray, stores: np.ndarray) -> None:
        """Resolve one demand miss per lane, for many lanes at once.

        Equivalent to ``access()`` returning MISS followed by ``fill()``
        on each lane (each lane appears at most once per call; the pages
        are known non-resident and in-universe).  Evictions drain the
        batched victim queue, with the same accounting order as the
        scalar path: writeback, then unused-prefetch pollution (the
        demand path never counts ``demand_evictions_by_prefetch``).
        """
        self.accesses[lanes] += 1
        self.demand_misses[lanes] += 1
        need = self.n_resident[lanes] >= self.capacity[lanes]
        slots = np.empty(lanes.size, dtype=np.int64)
        if need.any():
            ev_lanes = lanes[need]
            vslots = self._take_victims(ev_lanes)
            was_dirty = self.dirty[ev_lanes, vslots]
            self.writebacks[ev_lanes] += was_dirty
            self.dirty[ev_lanes, vslots] = False
            was_und = self.undemanded[ev_lanes, vslots]
            self.prefetches_evicted_unused[ev_lanes] += was_und
            self.undemanded[ev_lanes, vslots] = False
            self.n_undemanded[ev_lanes] -= was_und
            self.last_use[ev_lanes, vslots] = _FREE
            old_cids = self.cid_of_slot[ev_lanes, vslots]
            in_uni = old_cids >= 0
            self.soc[ev_lanes[in_uni], old_cids[in_uni]] = -1
            self.cid_of_slot[ev_lanes, vslots] = -1
            if not in_uni.all():
                out_lanes = ev_lanes[~in_uni]
                out_slots = vslots[~in_uni]
                out_pages = self.page_of_slot[out_lanes, out_slots]
                for t, page in zip(out_lanes.tolist(), out_pages.tolist()):
                    del self._extra[t][int(page)]
            self.n_resident[ev_lanes] -= 1
            slots[need] = vslots
        fresh = ~need
        if fresh.any():
            slots[fresh] = self.n_resident[lanes[fresh]]
        self.page_of_slot[lanes, slots] = pages
        clk = self.clock[lanes]
        self.last_use[lanes, slots] = clk
        self.clock[lanes] = clk + 1
        self.dirty[lanes, slots] = stores
        self.n_resident[lanes] += 1
        self.soc[lanes, cids] = slots
        self.cid_of_slot[lanes, slots] = cids
