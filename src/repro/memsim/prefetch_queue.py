"""In-flight prefetch modelling (timeliness, §5.2).

A prefetch is not useful the instant the model predicts it: the prediction
takes inference time, and the data takes transfer time.  The paper's §5.2
observes that when the time between misses is smaller than the inference
latency, "even a perfect model will always prefetch too late."

We model this with a landing delay measured in *accesses*: a prefetch
issued at access ``i`` becomes resident only once the simulator reaches
access ``i + delay``.  Harnesses derive ``delay`` from the model's modeled
latency and the trace's inter-access gap (see ``repro.nn.costs``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

#: ``next_landing`` value when nothing is in flight (larger than any index).
NO_PENDING = 1 << 62


@dataclass
class PrefetchQueue:
    """Min-heap of (landing_index, sequence, page) in-flight prefetches.

    ``next_landing`` is the landing index of the earliest in-flight
    prefetch (``NO_PENDING`` when empty), so callers in a hot loop can
    skip :meth:`landed` entirely between landings — the common case —
    making arrival processing amortized O(1) per access.
    """

    delay_accesses: int = 0
    next_landing: int = NO_PENDING
    _heap: list[tuple[int, int, int]] = field(default_factory=list)
    _seq: int = 0

    def __post_init__(self) -> None:
        if self.delay_accesses < 0:
            raise ValueError("delay_accesses must be >= 0")

    def __len__(self) -> int:
        return len(self._heap)

    def issue(self, page: int, at_index: int) -> None:
        """Issue a prefetch at access ``at_index``."""
        landing = at_index + self.delay_accesses
        heapq.heappush(self._heap, (landing, self._seq, page))
        self._seq += 1
        if landing < self.next_landing:
            self.next_landing = landing

    def landed(self, now_index: int) -> list[int]:
        """Pop every prefetch whose landing index is <= ``now_index``."""
        if now_index < self.next_landing:
            return []
        out: list[int] = []
        heap = self._heap
        pop = heapq.heappop
        while heap and heap[0][0] <= now_index:
            out.append(pop(heap)[2])
        self.next_landing = heap[0][0] if heap else NO_PENDING
        return out

    def drain(self) -> list[int]:
        out = [page for _, _, page in sorted(self._heap)]
        self._heap.clear()
        self.next_landing = NO_PENDING
        return out
