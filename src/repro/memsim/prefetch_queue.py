"""In-flight prefetch modelling (timeliness, §5.2).

A prefetch is not useful the instant the model predicts it: the prediction
takes inference time, and the data takes transfer time.  The paper's §5.2
observes that when the time between misses is smaller than the inference
latency, "even a perfect model will always prefetch too late."

We model this with a landing delay measured in *accesses*: a prefetch
issued at access ``i`` becomes resident only once the simulator reaches
access ``i + delay``.  Harnesses derive ``delay`` from the model's modeled
latency and the trace's inter-access gap (see ``repro.nn.costs``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field


@dataclass
class PrefetchQueue:
    """Min-heap of (landing_index, sequence, page) in-flight prefetches."""

    delay_accesses: int = 0
    _heap: list[tuple[int, int, int]] = field(default_factory=list)
    _seq: int = 0

    def __post_init__(self) -> None:
        if self.delay_accesses < 0:
            raise ValueError("delay_accesses must be >= 0")

    def __len__(self) -> int:
        return len(self._heap)

    def issue(self, page: int, at_index: int) -> None:
        """Issue a prefetch at access ``at_index``."""
        heapq.heappush(self._heap, (at_index + self.delay_accesses, self._seq, page))
        self._seq += 1

    def landed(self, now_index: int) -> list[int]:
        """Pop every prefetch whose landing index is <= ``now_index``."""
        out: list[int] = []
        while self._heap and self._heap[0][0] <= now_index:
            out.append(heapq.heappop(self._heap)[2])
        return out

    def drain(self) -> list[int]:
        out = [page for _, _, page in sorted(self._heap)]
        self._heap.clear()
        return out
