"""In-flight prefetch modelling (timeliness, §5.2).

A prefetch is not useful the instant the model predicts it: the prediction
takes inference time, and the data takes transfer time.  The paper's §5.2
observes that when the time between misses is smaller than the inference
latency, "even a perfect model will always prefetch too late."

We model this with a landing delay measured in *accesses*: a prefetch
issued at access ``i`` becomes resident only once the simulator reaches
access ``i + delay``.  Harnesses derive ``delay`` from the model's modeled
latency and the trace's inter-access gap (see ``repro.nn.costs``).
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field

#: ``next_landing`` value when nothing is in flight (larger than any index).
NO_PENDING = 1 << 62

#: Consumed queue prefix is compacted away once it grows past this.
_COMPACT_AT = 1024


@dataclass
class PrefetchQueue:
    """In-flight prefetches ordered by (landing_index, issue sequence).

    ``next_landing`` is the landing index of the earliest in-flight
    prefetch (``NO_PENDING`` when empty), so callers in a hot loop can
    skip :meth:`landed` entirely between landings — the common case —
    making arrival processing amortized O(1) per access.

    The queue is a sorted list with a consumed-prefix cursor: because the
    landing delay is constant, issues at non-decreasing access indices
    append in already-sorted order (O(1)); an out-of-order issue falls
    back to a bisected insert, so arbitrary issue order remains correct.
    """

    delay_accesses: int = 0
    next_landing: int = NO_PENDING
    _queue: list[tuple[int, int, int]] = field(default_factory=list)
    _head: int = 0
    _seq: int = 0

    def __post_init__(self) -> None:
        if self.delay_accesses < 0:
            raise ValueError("delay_accesses must be >= 0")

    def __len__(self) -> int:
        return len(self._queue) - self._head

    def issue(self, page: int, at_index: int) -> None:
        """Issue a prefetch at access ``at_index``."""
        landing = at_index + self.delay_accesses
        queue = self._queue
        entry = (landing, self._seq, page)
        self._seq += 1
        if queue and entry < queue[-1]:
            insort(queue, entry, lo=self._head)
        else:
            queue.append(entry)
        if landing < self.next_landing:
            self.next_landing = landing

    def landed(self, now_index: int) -> list[int]:
        """Pop every prefetch whose landing index is <= ``now_index``.

        Pages are returned in (landing, issue-order) sequence and may
        contain duplicates — one entry per :meth:`issue` call, even for
        the same page (see :meth:`landed_unique`).
        """
        if now_index < self.next_landing:
            return []
        queue = self._queue
        head = self._head
        n = len(queue)
        stop = head
        while stop < n and queue[stop][0] <= now_index:
            stop += 1
        out = [entry[2] for entry in queue[head:stop]]
        if stop >= n:
            queue.clear()
            stop = 0
        elif stop >= _COMPACT_AT:
            del queue[:stop]
            stop = 0
        self._head = stop
        self.next_landing = queue[stop][0] if stop < len(queue) else NO_PENDING
        return out

    def landed_unique(self, now_index: int) -> list[int]:
        """Like :meth:`landed`, with duplicate pages coalesced.

        First occurrence wins, preserving arrival order — the behavior of
        a device driver that merges duplicate in-flight requests for the
        same page instead of re-issuing the transfer.  Used by the
        systems drivers (§4), whose modeled interconnect would otherwise
        pay twice for one page.
        """
        return self._dedup(self.landed(now_index))

    def drain(self) -> list[int]:
        """Pop *all* in-flight prefetches in (landing, issue-order).

        Contract: like :meth:`landed`, this returns one entry per
        :meth:`issue` call — a page issued twice while in flight appears
        twice.  Callers that model coalescing hardware should use
        :meth:`drain_unique`.
        """
        out = [entry[2] for entry in self._queue[self._head:]]
        self._queue.clear()
        self._head = 0
        self.next_landing = NO_PENDING
        return out

    def drain_unique(self) -> list[int]:
        """Like :meth:`drain`, with duplicate pages coalesced (first wins)."""
        return self._dedup(self.drain())

    @staticmethod
    def _dedup(pages: list[int]) -> list[int]:
        if len(pages) < 2:
            return pages
        seen: set[int] = set()
        add = seen.add
        return [p for p in pages if not (p in seen or add(p))]
