"""The prefetcher interface every policy in this repository implements."""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from .events import AccessEvent, MissEvent


@runtime_checkable
class Prefetcher(Protocol):
    """A prefetch policy driven by the memory system's miss stream.

    The simulator calls :meth:`on_miss` for every demand miss (Figure 1's
    deployment: the miss history feeds the model, the model's predictions
    become prefetch requests).  Implementations return the *pages* to
    prefetch; the simulator handles queueing, timeliness, and insertion.
    """

    name: str

    def on_miss(self, event: MissEvent) -> list[int]:
        """React to a demand miss; return pages to prefetch (may be empty)."""
        ...


class AccessAwarePrefetcher(Prefetcher, Protocol):
    """Optional extension for policies that also observe hits.

    ``on_access`` may return pages to prefetch (prefetch chaining: real
    prefetchers keep the pipeline full by also triggering on prefetched
    hits); returning None issues nothing.
    """

    def on_access(self, event: AccessEvent) -> list[int] | None:
        ...


class NullPrefetcher:
    """The no-prefetching baseline (Figure 5's denominator).

    ``is_null`` lets the simulator skip constructing :class:`MissEvent`
    objects entirely — this policy never reads them.
    """

    name = "none"
    is_null = True

    def on_miss(self, event: MissEvent) -> list[int]:
        del event
        return []
