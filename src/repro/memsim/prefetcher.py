"""The prefetcher interface every policy in this repository implements."""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from .events import AccessEvent, MissEvent


@runtime_checkable
class Prefetcher(Protocol):
    """A prefetch policy driven by the memory system's miss stream.

    The simulator calls :meth:`on_miss` for every demand miss (Figure 1's
    deployment: the miss history feeds the model, the model's predictions
    become prefetch requests).  Implementations return the *pages* to
    prefetch; the simulator handles queueing, timeliness, and insertion.
    """

    name: str

    def on_miss(self, event: MissEvent) -> list[int]:
        """React to a demand miss; return pages to prefetch (may be empty)."""
        ...


class AccessAwarePrefetcher(Prefetcher, Protocol):
    """Optional extension for policies that also observe hits.

    ``on_access`` may return pages to prefetch (prefetch chaining: real
    prefetchers keep the pipeline full by also triggering on prefetched
    hits); returning None issues nothing.
    """

    def on_access(self, event: AccessEvent) -> list[int] | None:
        ...


class FastPathPrefetcher(Prefetcher, Protocol):
    """Opt-in allocation-free protocol for the simulator's inner loop.

    A prefetcher that implements the ``*_fast`` entry points receives the
    event *fields* as scalars instead of a per-access ``MissEvent`` /
    ``AccessEvent`` dataclass, and MUST behave identically to its
    event-object methods (the usual implementation has ``on_miss``
    delegate to ``on_miss_fast``).  The event-object path remains the
    portable interface for external prefetchers.

    Implementations may additionally expose a ``wants_accesses``
    attribute; when false the simulator skips the per-access callback
    entirely (valid only if ``on_access`` would return None for every
    access in that configuration).

    ``wants_accesses`` also gates engine selection (PR 4): the
    span-batched engine never delivers per-access callbacks, so a
    prefetcher that wants them is always simulated on the scalar
    reference engine.  Miss-driven prefetchers see the identical miss
    stream under either engine — the batched engine resolves hit runs
    in bulk but stops at every demand miss and prefetch landing, so
    ``on_miss``/``on_miss_fast`` fire at the same indices with the same
    cache state as the scalar loop.
    """

    def on_miss_fast(self, index: int, address: int, page: int,
                     stream_id: int, timestamp: int) -> list[int]:
        ...

    def on_access_fast(self, index: int, address: int, page: int,
                       stream_id: int, timestamp: int,
                       hit: bool) -> list[int] | None:
        ...


class NullPrefetcher:
    """The no-prefetching baseline (Figure 5's denominator).

    ``is_null`` lets the simulator skip constructing :class:`MissEvent`
    objects entirely — this policy never reads them — and unlocks the
    fully vectorized null replay in the batched engine (bulk miss-run
    fills, and a clean restart on the scalar engine when the workload
    turns out span-degenerate).
    """

    name = "none"
    is_null = True

    def on_miss(self, event: MissEvent) -> list[int]:
        del event
        return []

    def on_miss_fast(self, index: int, address: int, page: int,
                     stream_id: int, timestamp: int) -> list[int]:
        del index, address, page, stream_id, timestamp
        return []
