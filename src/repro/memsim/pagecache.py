"""A fixed-capacity paged memory with LRU replacement and prefetch tracking.

This is the "local/fast memory" of Figure 1: demand accesses either hit or
miss; on a miss the page is filled from slow memory; a prefetcher may
insert pages ahead of demand.  The cache distinguishes prefetched pages
that have not yet been demanded, so it can account prefetch *accuracy*
(issued prefetches that were used) and *pollution* (prefetches evicted
unused, and demand pages evicted by prefetches).

Representation (PR 4): instead of an ``OrderedDict`` walk, residency
lives in fixed numpy slot arrays (``last_use`` / ``undemanded`` /
``dirty``), with LRU order carried by a strictly increasing logical
clock: every operation that would ``move_to_end`` in the reference
implementation stamps ``last_use[slot]`` with a fresh clock value, so
"least recently used" is exactly "minimum stamp".  Page lookup is a
``page -> slot`` dict, or — once :meth:`PageCache.attach_universe` maps
the trace's pages to compact ids — a cid-indexed slot array, which makes
residency over a trace chunk a single vectorized gather (the heart of
the span-batched engine's ``first_nonresident`` scan).

Eviction is lazy-LRU by minimum timestamp: an ``argpartition`` over
``last_use`` snapshots the ``_VICTIM_BATCH`` oldest slots into a victim
queue, and entries whose stamp no longer matches the slot's live
``last_use`` (touched, evicted, or reused since the snapshot) are
skipped lazily.  A matching entry is provably the global minimum — every
slot outside the snapshot was younger than the whole snapshot at refill
time and can only have grown younger since — i.e. the same victim the
``OrderedDict``'s ``popitem(last=False)`` would choose.

The bulk APIs account a whole hit run (:meth:`PageCache.access_run`) or
demand-miss run (:meth:`PageCache.fill_run`) in a handful of vectorized
operations.  The retained ``OrderedDict`` implementation lives in
``pagecache_reference.py``; ``tests/memsim/test_pagecache_fuzz.py`` pins
this class against it counter-for-counter after every operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

#: Result codes from :meth:`PageCache.access`.
HIT = "hit"
MISS = "miss"
PREFETCH_HIT = "prefetch_hit"

#: ``last_use`` sentinel for unoccupied slots — larger than any live stamp,
#: so vectorized min/argpartition victim selection never picks a free slot.
_FREE = np.iinfo(np.int64).max

#: Vectorized membership scans read the trace in windows of this size.
_SCAN_CHUNK = 2048

#: Scalar evictions refill the victim queue with this many candidates at
#: a time; one argpartition then amortizes over the whole batch.
_VICTIM_BATCH = 64


def _fancy_assign_is_last_wins() -> bool:
    """Probe whether duplicate-index fancy assignment writes in order.

    CPython numpy assigns fancy-indexed elements front to back, so for
    duplicate indices the last value wins — exactly the per-access clock
    semantics ``access_run`` needs — but the ordering is not contractual,
    so it is verified once at import and the ``np.unique``-based
    last-touch stamping is kept as the fallback.
    """
    target = np.zeros(64, dtype=np.int64)
    index = np.arange(4096) % 64
    target[index] = np.arange(4096)
    return bool((target == np.arange(4032, 4096)).all())


_FANCY_LAST_WINS = _fancy_assign_is_last_wins()


@dataclass
class CacheStats:
    """Raw counters maintained by :class:`PageCache`."""

    accesses: int = 0
    hits: int = 0
    demand_misses: int = 0
    prefetch_hits: int = 0
    prefetches_issued: int = 0
    prefetches_redundant: int = 0
    prefetches_evicted_unused: int = 0
    demand_evictions_by_prefetch: int = 0
    writebacks: int = 0

    @property
    def prefetches_useful(self) -> int:
        return self.prefetch_hits

    @property
    def miss_rate(self) -> float:
        return self.demand_misses / self.accesses if self.accesses else 0.0

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of issued prefetches that were demanded before eviction."""
        issued = self.prefetches_issued - self.prefetches_redundant
        return self.prefetch_hits / issued if issued else 0.0

    @property
    def coverage(self) -> float:
        """Fraction of would-be misses the prefetcher converted to hits."""
        would_miss = self.demand_misses + self.prefetch_hits
        return self.prefetch_hits / would_miss if would_miss else 0.0

    def as_dict(self) -> dict:
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "demand_misses": self.demand_misses,
            "prefetch_hits": self.prefetch_hits,
            "prefetches_issued": self.prefetches_issued,
            "prefetches_redundant": self.prefetches_redundant,
            "prefetches_evicted_unused": self.prefetches_evicted_unused,
            "demand_evictions_by_prefetch": self.demand_evictions_by_prefetch,
            "writebacks": self.writebacks,
            "miss_rate": self.miss_rate,
            "prefetch_accuracy": self.prefetch_accuracy,
            "coverage": self.coverage,
        }


@dataclass
class PageCache:
    """Array-backed LRU page cache.

    Attributes:
        capacity_pages: Maximum number of resident pages (> 0).
        stats: Counter block, updated in place.
    """

    capacity_pages: int
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.capacity_pages <= 0:
            raise ValueError("capacity_pages must be positive")
        cap = self.capacity_pages
        self._page = np.zeros(cap, dtype=np.int64)
        self._last_use = np.full(cap, _FREE, dtype=np.int64)
        self._undemanded = np.zeros(cap, dtype=bool)
        self._dirty = np.zeros(cap, dtype=bool)
        # pop() hands out slot 0 first; order is unobservable but fixed.
        self._free: list[int] = list(range(cap - 1, -1, -1))
        self._clock = 0
        self._n_resident = 0
        # Snapshot of the oldest (stamp, slot) pairs, in LRU order; stale
        # entries are detected by stamp mismatch and skipped.
        self._victims: list[tuple[int, int]] = []
        self._victim_idx = 0
        # Count of resident undemanded prefetches, so the scalar hit path
        # can skip the per-access array probe when none exist.
        self._n_undemanded = 0
        # Residency index.  Without a universe: the ``_slot`` dict alone.
        # With one: ``_slot_of_cid`` is authoritative for universe pages
        # (``_cid_of_slot`` is its inverse) and ``_slot`` holds only
        # out-of-universe pages (speculative prefetches) — they can never
        # appear in a demand stream, so bulk scans need not see them.
        self._slot: dict[int, int] = {}
        self._universe: np.ndarray | None = None
        self._cid_of: dict[int, int] = {}
        self._slot_of_cid: np.ndarray | None = None
        self._cid_of_slot = np.full(cap, -1, dtype=np.int64)
        # Optional compiled scan kernels (see nn/backends): when attached,
        # the membership scans run as single compiled calls instead of
        # windowed numpy gathers.
        self._kern: Any = None
        self._scan_scratch: np.ndarray | None = None
        self._scan_stamp = 0

    def __len__(self) -> int:
        return self._n_resident

    def telemetry_counters(self) -> dict[str, int | float]:
        """Named counters for the telemetry sink (ints: monotone; floats:
        gauges)."""
        stats = self.stats
        return {
            "cache_accesses": stats.accesses,
            "cache_hits": stats.hits,
            "cache_demand_misses": stats.demand_misses,
            "cache_prefetch_hits": stats.prefetch_hits,
            "cache_writebacks": stats.writebacks,
            "cache_resident": float(self._n_resident),
            "cache_undemanded": float(self._n_undemanded),
        }

    def __contains__(self, page: int) -> bool:
        return self._lookup(page) is not None

    def _lookup(self, page: int) -> int | None:
        soc = self._slot_of_cid
        if soc is None:
            return self._slot.get(page)
        cid = self._cid_of.get(page, -1)
        if cid >= 0:
            slot = soc[cid]
            return int(slot) if slot >= 0 else None
        return self._slot.get(page)

    # ------------------------------------------------------------------
    # Scalar API (reference semantics; see pagecache_reference.py)
    # ------------------------------------------------------------------
    def access(self, page: int, store: bool = False) -> str:
        """A demand access: returns ``HIT``, ``PREFETCH_HIT`` or ``MISS``.

        On a miss the caller is expected to call :meth:`fill`; the cache does
        not auto-fill so simulators can model fill latency explicitly.
        ``store`` marks the page dirty so its eventual eviction costs a
        writeback to slow memory.
        """
        stats = self.stats
        stats.accesses += 1
        slot = self._lookup(page)
        if slot is None:
            stats.demand_misses += 1
            return MISS
        self._last_use[slot] = self._clock
        self._clock += 1
        stats.hits += 1
        if store:
            self._dirty[slot] = True
        if self._n_undemanded and self._undemanded[slot]:
            self._undemanded[slot] = False
            self._n_undemanded -= 1
            stats.prefetch_hits += 1
            return PREFETCH_HIT
        return HIT

    def fill(self, page: int, store: bool = False) -> None:
        """Install a page on demand (after a miss)."""
        slot = self._lookup(page)
        if slot is not None:
            if self._n_undemanded and self._undemanded[slot]:
                self._undemanded[slot] = False
                self._n_undemanded -= 1
            if store:
                self._dirty[slot] = True
            self._last_use[slot] = self._clock
            self._clock += 1
            return
        if self._n_resident >= self.capacity_pages:
            self._evict_lru(by_prefetch=False)
        self._install(page, undemanded=False, dirty=store)

    def insert_prefetch(self, page: int) -> bool:
        """Install a prefetched page.  Returns False if it was redundant."""
        stats = self.stats
        stats.prefetches_issued += 1
        slot = self._lookup(page)
        if slot is not None:
            stats.prefetches_redundant += 1
            self._last_use[slot] = self._clock
            self._clock += 1
            return False
        if self._n_resident >= self.capacity_pages:
            self._evict_lru(by_prefetch=True)
        self._install(page, undemanded=True, dirty=False)
        return True

    def resident_pages(self) -> list[int]:
        """Resident pages in LRU-to-MRU order (the reference's dict order)."""
        occupied = np.flatnonzero(self._last_use != _FREE)
        order = occupied[np.argsort(self._last_use[occupied])]
        return [int(p) for p in self._page[order]]

    def dirty_pages(self) -> int:
        return int(np.count_nonzero(self._dirty))

    # ------------------------------------------------------------------
    # Scalar internals
    # ------------------------------------------------------------------
    def _install(self, page: int, undemanded: bool, dirty: bool) -> None:
        slot = self._free.pop()
        self._page[slot] = page
        stamp = self._clock
        self._clock = stamp + 1
        self._last_use[slot] = stamp
        if undemanded:
            self._undemanded[slot] = True
            self._n_undemanded += 1
        if dirty:
            self._dirty[slot] = True
        self._n_resident += 1
        soc = self._slot_of_cid
        if soc is None:
            self._slot[page] = slot
            return
        cid = self._cid_of.get(page, -1)
        if cid >= 0:
            soc[cid] = slot
            self._cid_of_slot[slot] = cid
        else:
            self._slot[page] = slot

    def _refill_victims(self) -> list[tuple[int, int]]:
        """Snapshot the oldest slots into the victim queue, LRU-first.

        Valid under later mutation: any slot outside the snapshot is
        younger than every snapshot entry and only gets younger, so while
        one snapshot entry still matches its slot's live stamp, the first
        such entry is the true LRU minimum.
        """
        last_use = self._last_use
        batch = min(_VICTIM_BATCH, self._n_resident)
        part = last_use.argpartition(batch - 1)[:batch]
        order = part[last_use[part].argsort()]
        victims = list(zip(last_use[order].tolist(), order.tolist()))
        self._victims = victims
        self._victim_idx = 0
        return victims

    def _evict_lru(self, by_prefetch: bool) -> None:
        last_use = self._last_use
        victims = self._victims
        idx = self._victim_idx
        while True:
            if idx >= len(victims):
                victims = self._refill_victims()
                idx = 0
            stamp, slot = victims[idx]
            idx += 1
            if last_use[slot] == stamp:
                break
        self._victim_idx = idx
        stats = self.stats
        if self._dirty[slot]:
            stats.writebacks += 1
            self._dirty[slot] = False
        if self._undemanded[slot]:
            stats.prefetches_evicted_unused += 1
            self._undemanded[slot] = False
            self._n_undemanded -= 1
        elif by_prefetch:
            stats.demand_evictions_by_prefetch += 1
        last_use[slot] = _FREE
        self._free.append(slot)
        self._n_resident -= 1
        soc = self._slot_of_cid
        if soc is None:
            del self._slot[int(self._page[slot])]
            return
        cid = self._cid_of_slot[slot]
        if cid >= 0:
            soc[cid] = -1
            self._cid_of_slot[slot] = -1
        else:
            del self._slot[int(self._page[slot])]

    # ------------------------------------------------------------------
    # Bulk API (span-batched simulation engine)
    # ------------------------------------------------------------------
    def attach_universe(self, universe: np.ndarray) -> None:
        """Enable the bulk APIs for a known page universe.

        ``universe`` is the sorted array of distinct pages a trace touches
        (``Trace.page_index``); accesses are then described by compact ids
        (positions in ``universe``), and residency over a trace chunk
        becomes one vectorized gather of the cid-indexed slot table.
        """
        self._universe = universe
        self._cid_of = {int(p): i for i, p in enumerate(universe.tolist())}
        soc = np.full(len(universe), -1, dtype=np.int64)
        extra: dict[int, int] = {}
        for page, slot in self._slot.items():
            cid = self._cid_of.get(page, -1)
            if cid >= 0:
                soc[cid] = slot
                self._cid_of_slot[slot] = cid
            else:
                extra[page] = slot
        self._slot = extra
        self._slot_of_cid = soc

    def attach_kernels(self, kernels: Any) -> None:
        """Route the bulk membership scans through compiled kernels.

        Requires :meth:`attach_universe` first (the kernels scan the
        cid-indexed slot table).  The scratch array plus a monotone stamp
        give :meth:`miss_run_length` O(run) duplicate detection without
        per-call clearing.
        """
        self._require_universe()
        self._kern = kernels
        universe = self._universe
        assert universe is not None
        self._scan_scratch = np.zeros(len(universe), dtype=np.int64)
        self._scan_stamp = 0

    def _require_universe(self) -> np.ndarray:
        soc = self._slot_of_cid
        if soc is None:
            raise RuntimeError("bulk API requires attach_universe() first")
        return soc

    def first_nonresident(self, cids: np.ndarray, start: int, stop: int) -> int:
        """Index of the first access in ``cids[start:stop]`` whose page is
        not resident, or ``stop`` if the whole range hits."""
        soc = self._require_universe()
        if self._kern is not None:
            return self._kern.first_nonresident(soc, cids, start, stop)
        i = start
        # Geometric window growth: short spans (miss-dense workloads) pay
        # for a small gather, long ones amortize big gathers.
        width = 64
        while i < stop:
            j = min(i + width, stop)
            window = soc[cids[i:j]]
            k = int(window.argmin())  # absent slots are -1, the minimum
            if window[k] < 0:
                return i + k
            i = j
            if width < _SCAN_CHUNK:
                width <<= 2
        return stop

    def access_run(self, cids: np.ndarray, stores: np.ndarray) -> None:
        """Account a run of demand accesses that are all hits, in bulk.

        Equivalent to ``access(page, store)`` per element given every page
        is resident: recency is stamped at each page's *last* touch
        position (the value the per-access clock would leave), stores mark
        dirty, and each undemanded prefetched page counts one prefetch hit
        at its first touch.
        """
        soc = self._require_universe()
        n = len(cids)
        if n == 0:
            return
        slots = soc[cids]
        clock = self._clock
        stats = self.stats
        stats.accesses += n
        stats.hits += n
        if self._n_undemanded:
            # Need distinct touched slots for prefetch-hit accounting (and
            # they give exact last-touch stamps for free).
            uniq, first_rev = np.unique(slots[::-1], return_index=True)
            self._last_use[uniq] = clock + (n - 1) - first_rev
            undemanded = self._undemanded[uniq]
            fresh = int(np.count_nonzero(undemanded))
            if fresh:
                self._undemanded[uniq[undemanded]] = False
                self._n_undemanded -= fresh
                stats.prefetch_hits += fresh
        elif _FANCY_LAST_WINS:
            self._last_use[slots] = np.arange(clock, clock + n)
        else:
            uniq, first_rev = np.unique(slots[::-1], return_index=True)
            self._last_use[uniq] = clock + (n - 1) - first_rev
        self._clock = clock + n
        if stores.any():
            self._dirty[slots[stores]] = True

    def miss_run_length(self, cids: np.ndarray, start: int, stop: int) -> int:
        """Length of the bulk-fillable demand-miss run starting at ``start``.

        ``start`` must be a miss.  The run extends while pages are
        non-resident *and* mutually distinct (a repeat would hit its own
        fill), capped at ``capacity_pages`` so :meth:`fill_run`'s batched
        eviction can never victimize a page installed by the same run.
        """
        soc = self._require_universe()
        limit = min(stop, start + min(self.capacity_pages, _SCAN_CHUNK))
        if self._kern is not None:
            # One linear compiled pass handles residency and the earliest
            # duplicate cut together (stamped-scratch seen set).
            self._scan_stamp += 1
            return self._kern.miss_run_length(
                soc, cids, start, limit, self._scan_scratch,
                self._scan_stamp)
        # Scalar fast path: scattered-miss workloads have run length 1 far
        # more often than not, and two scalar reads beat a window gather.
        if start + 1 >= limit:
            return 1
        nxt = cids[start + 1]
        if nxt == cids[start] or soc[nxt] >= 0:
            return 1
        k = 0
        i = start
        width = 16
        while i < limit:
            j = min(i + width, limit)
            nonresident = soc[cids[i:j]] < 0
            m = int(nonresident.argmin())  # first resident; 0 when all miss
            if nonresident[m]:
                k += j - i
                i = j
                width <<= 2
                continue
            k += m
            break
        if k > 1:
            segment = cids[start:start + k]
            order = np.argsort(segment, kind="stable")
            ordered = segment[order]
            dup = ordered[1:] == ordered[:-1]
            if dup.any():
                # Cut before the earliest second occurrence of any page.
                k = int(order[1:][dup].min())
        return k

    def fill_run(self, pages: np.ndarray, cids: np.ndarray,
                 stores: np.ndarray) -> None:
        """Bulk demand-miss resolution: k distinct non-resident pages.

        Equivalent to ``access`` (returning MISS) followed by ``fill`` for
        each page.  Victim equivalence: every page installed by the run is
        stamped above all pre-run residents, so the scalar loop's t-th
        eviction takes the t-th oldest pre-run resident — exactly the
        ``n_evict`` smallest stamps selected here in one argpartition.
        """
        soc = self._require_universe()
        k = len(pages)
        if k == 0:
            return
        stats = self.stats
        stats.accesses += k
        stats.demand_misses += k
        n_evict = self._n_resident + k - self.capacity_pages
        if n_evict > 0:
            self._evict_bulk(n_evict)
        free = self._free
        slots_list = free[len(free) - k:][::-1]  # pop() order
        del free[len(free) - k:]
        slots = np.asarray(slots_list, dtype=np.int64)
        self._page[slots] = pages
        clock = self._clock
        self._last_use[slots] = np.arange(clock, clock + k)
        self._clock = clock + k
        self._dirty[slots] = stores
        self._n_resident += k
        soc[cids] = slots
        self._cid_of_slot[slots] = cids

    def _evict_bulk(self, n_evict: int) -> None:
        """Evict the ``n_evict`` least-recently-used pages (demand path)."""
        last_use = self._last_use
        if n_evict == 1:
            victims = np.array([last_use.argmin()])
        else:
            victims = last_use.argpartition(n_evict - 1)[:n_evict]
        stats = self.stats
        dirty = self._dirty[victims]
        writebacks = int(np.count_nonzero(dirty))
        if writebacks:
            stats.writebacks += writebacks
            self._dirty[victims] = False
        if self._n_undemanded:
            undemanded = self._undemanded[victims]
            unused = int(np.count_nonzero(undemanded))
            if unused:
                stats.prefetches_evicted_unused += unused
                self._undemanded[victims] = False
                self._n_undemanded -= unused
        last_use[victims] = _FREE
        self._free.extend(victims.tolist())
        self._n_resident -= n_evict
        soc = self._slot_of_cid
        assert soc is not None
        victim_cids = self._cid_of_slot[victims]
        in_universe = victim_cids >= 0
        soc[victim_cids[in_universe]] = -1
        self._cid_of_slot[victims] = -1
        if not in_universe.all():
            # Out-of-universe pages (speculative prefetches) still live in
            # the dict overlay.
            slot_map = self._slot
            for page in self._page[victims[~in_universe]].tolist():
                del slot_map[page]
