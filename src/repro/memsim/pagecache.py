"""A fixed-capacity paged memory with LRU replacement and prefetch tracking.

This is the "local/fast memory" of Figure 1: demand accesses either hit or
miss; on a miss the page is filled from slow memory; a prefetcher may
insert pages ahead of demand.  The cache distinguishes prefetched pages
that have not yet been demanded, so it can account prefetch *accuracy*
(issued prefetches that were used) and *pollution* (prefetches evicted
unused, and demand pages evicted by prefetches).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

#: Result codes from :meth:`PageCache.access`.
HIT = "hit"
MISS = "miss"
PREFETCH_HIT = "prefetch_hit"


@dataclass
class CacheStats:
    """Raw counters maintained by :class:`PageCache`."""

    accesses: int = 0
    hits: int = 0
    demand_misses: int = 0
    prefetch_hits: int = 0
    prefetches_issued: int = 0
    prefetches_redundant: int = 0
    prefetches_evicted_unused: int = 0
    demand_evictions_by_prefetch: int = 0
    writebacks: int = 0

    @property
    def prefetches_useful(self) -> int:
        return self.prefetch_hits

    @property
    def miss_rate(self) -> float:
        return self.demand_misses / self.accesses if self.accesses else 0.0

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of issued prefetches that were demanded before eviction."""
        issued = self.prefetches_issued - self.prefetches_redundant
        return self.prefetch_hits / issued if issued else 0.0

    @property
    def coverage(self) -> float:
        """Fraction of would-be misses the prefetcher converted to hits."""
        would_miss = self.demand_misses + self.prefetch_hits
        return self.prefetch_hits / would_miss if would_miss else 0.0

    def as_dict(self) -> dict:
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "demand_misses": self.demand_misses,
            "prefetch_hits": self.prefetch_hits,
            "prefetches_issued": self.prefetches_issued,
            "prefetches_redundant": self.prefetches_redundant,
            "prefetches_evicted_unused": self.prefetches_evicted_unused,
            "demand_evictions_by_prefetch": self.demand_evictions_by_prefetch,
            "writebacks": self.writebacks,
            "miss_rate": self.miss_rate,
            "prefetch_accuracy": self.prefetch_accuracy,
            "coverage": self.coverage,
        }


@dataclass
class PageCache:
    """LRU page cache.

    Attributes:
        capacity_pages: Maximum number of resident pages (> 0).
        stats: Counter block, updated in place.
    """

    capacity_pages: int
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.capacity_pages <= 0:
            raise ValueError("capacity_pages must be positive")
        # page -> [is_undemanded_prefetch, is_dirty]
        self._resident: OrderedDict[int, list[bool]] = OrderedDict()

    def __len__(self) -> int:
        return len(self._resident)

    def __contains__(self, page: int) -> bool:
        return page in self._resident

    def access(self, page: int, store: bool = False) -> str:
        """A demand access: returns ``HIT``, ``PREFETCH_HIT`` or ``MISS``.

        On a miss the caller is expected to call :meth:`fill`; the cache does
        not auto-fill so simulators can model fill latency explicitly.
        ``store`` marks the page dirty so its eventual eviction costs a
        writeback to slow memory.
        """
        stats = self.stats
        stats.accesses += 1
        resident = self._resident
        entry = resident.get(page)
        if entry is None:
            stats.demand_misses += 1
            return MISS
        resident.move_to_end(page)
        stats.hits += 1
        if store:
            entry[1] = True
        if entry[0]:
            entry[0] = False
            stats.prefetch_hits += 1
            return PREFETCH_HIT
        return HIT

    def fill(self, page: int, store: bool = False) -> None:
        """Install a page on demand (after a miss)."""
        resident = self._resident
        entry = resident.get(page)
        if entry is not None:
            entry[0] = False
            if store:
                entry[1] = True
            resident.move_to_end(page)
            return
        if len(resident) >= self.capacity_pages:
            # A fill adds exactly one page, so one eviction restores the
            # invariant without the generic _evict_for loop.
            was_prefetch, dirty = resident.popitem(last=False)[1]
            stats = self.stats
            if dirty:
                stats.writebacks += 1
            if was_prefetch:
                stats.prefetches_evicted_unused += 1
        resident[page] = [False, store]

    def insert_prefetch(self, page: int) -> bool:
        """Install a prefetched page.  Returns False if it was redundant."""
        stats = self.stats
        stats.prefetches_issued += 1
        resident = self._resident
        if page in resident:
            stats.prefetches_redundant += 1
            resident.move_to_end(page)
            return False
        if len(resident) >= self.capacity_pages:
            was_prefetch, dirty = resident.popitem(last=False)[1]
            if dirty:
                stats.writebacks += 1
            if was_prefetch:
                stats.prefetches_evicted_unused += 1
            else:
                stats.demand_evictions_by_prefetch += 1
        resident[page] = [True, False]
        return True

    def resident_pages(self) -> list[int]:
        return list(self._resident)

    def dirty_pages(self) -> int:
        return sum(1 for entry in self._resident.values() if entry[1])

    def _evict_for(self, count: int, by_prefetch: bool) -> None:
        while len(self._resident) + count > self.capacity_pages:
            _victim, (was_prefetch, dirty) = self._resident.popitem(last=False)
            if dirty:
                self.stats.writebacks += 1
            if was_prefetch:
                self.stats.prefetches_evicted_unused += 1
            elif by_prefetch:
                self.stats.demand_evictions_by_prefetch += 1
