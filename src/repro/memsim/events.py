"""Events exchanged between the memory simulator and prefetchers."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MissEvent:
    """A demand miss observed by the memory system (Figure 1's input).

    Attributes:
        index: Position of the access in the trace.
        address: Byte address that missed.
        page: Page number (address >> page_shift).
        stream_id: Issuing stream (process/thread/SM).
        timestamp: Logical nanosecond time of the access.
    """

    index: int
    address: int
    page: int
    stream_id: int
    timestamp: int


@dataclass(frozen=True)
class AccessEvent:
    """Any access (hit or miss), for prefetchers that watch the full stream."""

    index: int
    address: int
    page: int
    stream_id: int
    timestamp: int
    hit: bool
