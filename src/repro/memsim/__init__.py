"""Paged-memory simulation substrate (Figure 1's deployment loop)."""

from .events import AccessEvent, MissEvent
from .pagecache import HIT, MISS, PREFETCH_HIT, CacheStats, PageCache
from .pagecache_reference import ReferencePageCache
from .prefetch_queue import PrefetchQueue
from .prefetcher import AccessAwarePrefetcher, NullPrefetcher, Prefetcher
from .simulator import SimConfig, SimResult, baseline_misses, simulate, span_length_stats

__all__ = [
    "AccessEvent",
    "MissEvent",
    "HIT",
    "MISS",
    "PREFETCH_HIT",
    "CacheStats",
    "PageCache",
    "ReferencePageCache",
    "PrefetchQueue",
    "AccessAwarePrefetcher",
    "NullPrefetcher",
    "Prefetcher",
    "SimConfig",
    "SimResult",
    "baseline_misses",
    "simulate",
    "span_length_stats",
]
