"""Trace-driven memory simulation (Figure 1's deployment loop).

``simulate`` replays a trace against a :class:`~repro.memsim.pagecache.PageCache`
sized as a fraction of the trace footprint (Figure 5 uses 50%), feeding
every demand miss to a prefetcher and installing its predictions after a
configurable timeliness delay.

Two engines produce bit-identical results (same ``CacheStats``, same miss
indices, same prefetcher interaction order):

* ``scalar`` — the retained per-access event loop, running on the seed's
  OrderedDict :class:`~repro.memsim.pagecache_reference.ReferencePageCache`
  (the reference semantics *and* the reference constant factors), and the
  only engine able to drive per-access observers (``wants_accesses``
  prefetchers).
* ``batched`` — the PR 4 span-batched engine on the array-backed
  :class:`~repro.memsim.pagecache.PageCache`.  Between two
  membership-changing events (a demand fill or a prefetch landing) the
  resident set is constant, so the next miss is found by a vectorized
  membership scan and the whole hit run is accounted in one
  ``PageCache.access_run`` call.  Misses stay scalar so the prefetcher
  sees the exact same callback sequence; for the null prefetcher (whose
  queue is provably always empty) maximal distinct miss runs are also
  resolved in bulk via ``PageCache.fill_run``.

``engine="auto"`` (the default) picks ``batched`` whenever the prefetcher
does not observe per-access events, which covers every Figure 5
configuration in the repo.  The auto null replay additionally restarts on
the scalar engine when span batching proves degenerate mid-run
(scattered-miss workloads whose spans are too short to amortize a
vectorized scan — see ``_FALLBACK_SCALAR``).

Both engines are *segment-capable* (PR 5): each exposes
``run(start, stop)`` and ``simulate`` drives the run as a sequence of
segments.  With telemetry disabled there is exactly one segment,
``[0, n)``, through the identical code path — which is how the null
sink stays free.  With an enabled :class:`repro.telemetry.Telemetry`
sink, segments end at window boundaries and the sink snapshots counters
between them.  Segmentation cannot change results: a boundary merely
clips the current hit span or miss run, and splitting a bulk
``access_run``/``fill_run`` is splitting a sequence of scalar
operations that were already defined element-wise (same clock order,
same LRU stamps, same victims) — pinned by
``tests/telemetry/test_engine_parity.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from ..nn.backends import resolve_backend, sim_kernels
from ..patterns.trace import Trace
from .events import AccessEvent, MissEvent
from .pagecache import MISS, CacheStats, PageCache
from .pagecache_reference import ReferencePageCache
from .prefetch_queue import PrefetchQueue
from .prefetcher import Prefetcher

if TYPE_CHECKING:  # pragma: no cover - runtime import would be circular
    from ..telemetry.nullsink import NullTelemetry as TelemetrySink

#: Below this many accesses, a span is replayed scalar even in the batched
#: engine: a handful of numpy windowed calls (~1 µs each) costs more than
#: the per-access loop for short spans (miss-dense regions, short delays).
_BULK_MIN_SPAN = 24

#: Demand-miss runs shorter than this are filled scalar: a bulk fill is
#: ~10 vectorized calls, so isolated misses (low-miss-rate workloads)
#: are cheaper through the plain access/fill pair.
_BULK_MIN_RUN = 8

#: After this many scalar-fallback accesses, the null engine switches
#: from boxing numpy scalars to one-time tolist() materialization.
_MATERIALIZE_AFTER = 4096

#: Under ``engine="auto"``, the null engine gives up on batching once this
#: many accesses have gone through the scalar fallbacks *and* they are the
#: majority of the trace so far: span batching has proven degenerate
#: (scattered misses, short spans) and the per-access reference engine —
#: whose OrderedDict ops are cheaper than scalar array pokes — wins.  The
#: null prefetcher is stateless and never consulted, so a clean restart
#: from access 0 is safe and bit-identical.
_FALLBACK_SCALAR = 8192

#: Spans at least this long still pay for the batched engine when the
#: membership scans are compiled: the per-span cost drops from ~3 numpy
#: windowed calls to one C/numba call, moving the scalar/batched
#: crossover from ~24 accesses down to a handful (measured on
#: stride-resnet, spans ~1-2: compiled-batched 0.20 M/s vs scalar
#: 0.38 M/s; stride-graph500, spans ~8: compiled-batched 1.65 M/s vs
#: scalar 1.04 M/s).
_BULK_MIN_SPAN_COMPILED = 3

#: The auto-engine probe replays at most this many leading accesses (null,
#: bulk APIs only) to estimate steady-state span lengths before committing
#: a non-null run to the batched engine.
_PROBE_PREFIX = 32_768

#: Below this many accesses the probe is skipped (the run is too short for
#: engine choice to matter, and the prefix would be all cold misses).
_PROBE_MIN = 4096


@dataclass(frozen=True)
class SimConfig:
    """Simulation parameters.

    Attributes:
        page_size: Bytes per page (power of two).
        memory_fraction: Cache capacity as a fraction of the trace's page
            footprint; ignored when ``capacity_pages`` is given.  The paper's
            Figure 5 setup is 0.5.
        capacity_pages: Explicit capacity override.
        prefetch_delay_accesses: Accesses between issuing a prefetch and it
            becoming resident (timeliness, §5.2).  0 = ideal.
        max_prefetches_per_miss: Safety cap on a policy's output width.
    """

    page_size: int = 4096
    memory_fraction: float = 0.5
    capacity_pages: int | None = None
    prefetch_delay_accesses: int = 0
    max_prefetches_per_miss: int = 64

    def __post_init__(self) -> None:
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ValueError("page_size must be a positive power of two")
        if not 0 < self.memory_fraction <= 1 and self.capacity_pages is None:
            raise ValueError("memory_fraction must be in (0, 1]")
        if self.capacity_pages is not None and self.capacity_pages <= 0:
            raise ValueError("capacity_pages must be positive")

    def resolve_capacity(self, trace: Trace) -> int:
        if self.capacity_pages is not None:
            return self.capacity_pages
        footprint = trace.footprint_pages(self.page_size)
        return max(1, int(footprint * self.memory_fraction))


@dataclass
class SimResult:
    """Outcome of one simulation run."""

    trace_name: str
    prefetcher_name: str
    capacity_pages: int
    stats: CacheStats
    config: SimConfig
    miss_indices: list[int] = field(default_factory=list, repr=False)
    #: Which engine actually ran ("batched" or "scalar") and which kernel
    #: backend the run resolved to ("numpy", "numba" or "c").  The scalar
    #: engine never touches the compiled kernels, but the resolved name is
    #: still recorded so telemetry can attribute the run.
    engine_used: str = "batched"
    backend_used: str = "numpy"

    @property
    def demand_misses(self) -> int:
        return self.stats.demand_misses

    @property
    def miss_rate(self) -> float:
        return self.stats.miss_rate

    def percent_misses_removed(self, baseline: "SimResult") -> float:
        """Figure 5's metric: % of baseline misses this run eliminated."""
        if baseline.demand_misses == 0:
            return 0.0
        removed = baseline.demand_misses - self.demand_misses
        return 100.0 * removed / baseline.demand_misses


def simulate(trace: Trace, prefetcher: Prefetcher,
             config: SimConfig = SimConfig(),
             record_miss_indices: bool = False,
             engine: str = "auto",
             backend: str = "auto",
             telemetry: "TelemetrySink | None" = None) -> SimResult:
    """Replay ``trace`` through a page cache attached to ``prefetcher``.

    ``engine`` is ``"auto"`` (batched when the prefetcher permits it),
    ``"batched"`` or ``"scalar"``; the engines are bit-identical, so the
    explicit values exist for equivalence tests and debugging.

    ``backend`` selects the kernel backend for the batched engine's inner
    loops — ``"auto"`` (prefer a compiled backend, silently fall back to
    numpy), ``"numpy"``, ``"numba"`` or ``"c"`` (see
    ``repro.nn.backends``).  All backends are bit-identical; requesting
    an unavailable one explicitly raises ``BackendUnavailableError``.
    The scalar reference engine never touches the kernels.

    On the numpy backend, ``engine="auto"`` additionally probes the trace
    (a bulk null replay of a short prefix) and picks the scalar engine for
    short-span workloads whose per-access misses would make span batching
    a net loss (the PR 4 stride-resnet regression).  Compiled backends
    skip the probe — their per-span cost is low enough that batching wins
    everywhere.

    ``telemetry`` optionally attaches a :class:`repro.telemetry.Telemetry`
    sink.  An enabled sink partitions the run into window-aligned
    segments: each engine exposes ``run(start, stop)`` and the driver
    calls the sink between segments, so observation happens strictly at
    segment boundaries and cannot perturb the simulation.  With no sink
    (or a :class:`~repro.telemetry.NullTelemetry`) the run is a single
    ``[0, n)`` segment through the identical engine code.
    """
    if engine not in ("auto", "batched", "scalar"):
        raise ValueError(f"unknown engine {engine!r}")
    backend_used = resolve_backend(backend, domain="sim")
    kern = sim_kernels(backend_used)
    capacity = config.resolve_capacity(trace)
    queue = PrefetchQueue(delay_accesses=config.prefetch_delay_accesses)
    on_access = getattr(prefetcher, "on_access", None)
    if on_access is not None and not getattr(prefetcher, "wants_accesses", True):
        # Fast-path protocol: the prefetcher declares it ignores the
        # per-access stream, so skip the callback (it would return None
        # for every access) instead of allocating an event each time.
        on_access = None
    if engine == "batched" and on_access is not None:
        raise ValueError(
            "batched engine cannot drive per-access observers; "
            "use engine='scalar' (or 'auto') for wants_accesses prefetchers")
    use_batched = engine == "batched" or (engine == "auto" and on_access is None)
    is_null = getattr(prefetcher, "is_null", False)
    if (use_batched and engine == "auto" and not is_null
            and _probe_prefers_scalar(trace, config, capacity, kern)):
        # Short-span workload: per-span dispatch (numpy calls, or the
        # kernel-call + landing bookkeeping of the compiled walk) costs
        # more than the reference per-access loop (auto must be at least
        # as good as the better explicit engine choice).  The compiled
        # threshold is lower — compiled spans are an order of magnitude
        # cheaper — but spans of ~1 access still lose.
        use_batched = False
    sink = telemetry if telemetry is not None and telemetry.enabled else None
    if sink is not None:
        sink.begin_run(trace, prefetcher.name, config, capacity)
    n = len(trace)
    miss_indices: list[int] = []
    miss_out = miss_indices if record_miss_indices else None
    eng: (_ScalarEngine | _BatchedEngine | _NullReplayEngine
          | _CompiledNullEngine)
    cache: PageCache | ReferencePageCache
    if use_batched:
        cache = PageCache(capacity_pages=capacity)
        if is_null:
            if kern is not None:
                eng = _CompiledNullEngine(trace, config, cache, miss_out,
                                          kern)
            else:
                eng = _NullReplayEngine(trace, config, cache, miss_out,
                                        allow_fallback=engine == "auto")
        else:
            eng = _BatchedEngine(trace, prefetcher, config, cache, queue,
                                 miss_out, kern)
        engine_used = "batched"
        done = _drive(eng, n, sink, cache, queue, prefetcher)
        if not done:
            # Batching proved degenerate mid-run (see _FALLBACK_SCALAR);
            # discard the partial run and restart on the reference engine.
            miss_indices.clear()
            queue = PrefetchQueue(delay_accesses=config.prefetch_delay_accesses)
            cache = ReferencePageCache(capacity_pages=capacity)
            if sink is not None:
                sink.on_fallback_restart()
            eng = _ScalarEngine(trace, prefetcher, config, cache, queue,
                                None, miss_out)
            engine_used = "scalar"
            _drive(eng, n, sink, cache, queue, prefetcher)
    else:
        cache = ReferencePageCache(capacity_pages=capacity)
        eng = _ScalarEngine(trace, prefetcher, config, cache, queue,
                            on_access, miss_out)
        engine_used = "scalar"
        _drive(eng, n, sink, cache, queue, prefetcher)
    if sink is not None:
        sink.end_run(engine_used, backend_used)
    return SimResult(
        trace_name=trace.name,
        prefetcher_name=prefetcher.name,
        capacity_pages=capacity,
        stats=cache.stats,
        config=config,
        miss_indices=miss_indices,
        engine_used=engine_used,
        backend_used=backend_used,
    )


def _probe_prefers_scalar(trace: Trace, config: SimConfig,
                          capacity: int, kern: Any = None) -> bool:
    """Cheap span-length probe for the auto engine choice.

    Replays a short prefix of the trace with no prefetcher through the
    bulk cache APIs and measures the steady-state inter-miss gap — only
    misses in the *second half* of the prefix count, so compulsory
    (first-touch) misses of small-footprint workloads don't masquerade as
    short spans.  A gap below the backend's span threshold
    (``_BULK_MIN_SPAN`` for numpy, ``_BULK_MIN_SPAN_COMPILED`` when the
    scans are compiled) means the batched engine would pay per-span
    dispatch for most spans and lose to the reference loop.
    Deterministic, allocation-light (the page index is memoized on the
    trace), and ~prefix/trace_length of a full run; with compiled
    kernels the probe itself scans through them.
    """
    n = len(trace)
    prefix = min(n, _PROBE_PREFIX)
    if prefix < _PROBE_MIN:
        return False
    universe, cids = trace.page_index(config.page_size)
    pages = trace.pages(config.page_size)
    stores = np.zeros(prefix, dtype=bool)
    cache = PageCache(capacity_pages=capacity)
    cache.attach_universe(universe)
    if kern is not None:
        cache.attach_kernels(kern)
    half = prefix // 2
    late_misses = 0
    i = 0
    while i < prefix:
        j = cache.first_nonresident(cids, i, prefix)
        if j > i:
            cache.access_run(cids[i:j], stores[: j - i])
            i = j
        if i >= prefix:
            break
        k = cache.miss_run_length(cids, i, prefix)
        cache.fill_run(pages[i:i + k], cids[i:i + k], stores[:k])
        if i + k > half:
            late_misses += (i + k) - max(i, half)
        i += k
    if not late_misses:
        return False
    min_span = _BULK_MIN_SPAN if kern is None else _BULK_MIN_SPAN_COMPILED
    return (prefix - half) / late_misses < min_span


def _drive(eng: "_ScalarEngine | _BatchedEngine | _NullReplayEngine | _CompiledNullEngine",
           n: int,
           sink: "TelemetrySink | None",
           cache: PageCache | ReferencePageCache, queue: PrefetchQueue,
           prefetcher: Prefetcher) -> bool:
    """Run ``eng`` over ``[0, n)``, pausing at the sink's window boundaries.

    Without a sink this is exactly one ``run(0, n)`` call — the
    zero-overhead disabled path.  Returns False when the engine bailed
    out for the scalar fallback restart (partial state; caller discards).
    """
    if sink is None:
        return eng.run(0, n)
    start = 0
    for stop in sink.boundaries(n):
        if not eng.run(start, stop):
            return False
        sink.on_window(stop, cache, len(queue), prefetcher)
        start = stop
    return True


class _ScalarEngine:
    """The retained per-access reference engine (OrderedDict cache).

    Construction materializes the trace columns as plain python lists
    once — indexing a numpy array element-by-element boxes a fresh scalar
    per access, which dominates the loop at trace scale — so telemetry
    segments re-enter :meth:`run` without re-paying the conversion.
    """

    def __init__(self, trace: Trace, prefetcher: Prefetcher,
                 config: SimConfig, cache: PageCache | ReferencePageCache,
                 queue: PrefetchQueue, on_access: Any,
                 miss_out: list[int] | None) -> None:
        self._pages: list[int] = trace.pages(config.page_size).tolist()
        # KIND_STORE marks the page dirty.
        self._stores: list[bool] = (trace.kinds != 0).tolist()
        # Fast-path protocol: prefetchers that implement the scalar entry
        # points skip the per-event dataclass allocations entirely.  The
        # event-object path stays for external prefetchers.
        self._on_miss_fast = getattr(prefetcher, "on_miss_fast", None)
        self._on_access = on_access
        self._on_access_fast = (getattr(prefetcher, "on_access_fast", None)
                                if on_access is not None else None)
        self._is_null: bool = getattr(prefetcher, "is_null", False)
        self._addresses: list[int] | None
        self._stream_ids: list[int] | None
        self._timestamps: list[int] | None
        if self._is_null and on_access is None:
            self._addresses = self._stream_ids = self._timestamps = None
        else:
            self._addresses = trace.addresses.tolist()
            self._stream_ids = trace.stream_ids.tolist()
            self._timestamps = trace.timestamps.tolist()
        self._prefetcher = prefetcher
        self._cache = cache
        self._queue = queue
        self._max_prefetches = config.max_prefetches_per_miss
        self._miss_out = miss_out

    def run(self, start: int, stop: int) -> bool:
        cache = self._cache
        queue = self._queue
        pages = self._pages
        stores = self._stores
        addresses = self._addresses
        stream_ids = self._stream_ids
        timestamps = self._timestamps
        on_miss_fast = self._on_miss_fast
        on_access = self._on_access
        on_access_fast = self._on_access_fast
        is_null = self._is_null
        access = cache.access
        fill = cache.fill
        insert_prefetch = cache.insert_prefetch
        landed = queue.landed
        issue = queue.issue
        on_miss = self._prefetcher.on_miss
        max_prefetches = self._max_prefetches
        miss_out = self._miss_out
        append_miss = miss_out.append if miss_out is not None else None

        if start == 0 and stop == len(pages):
            span = enumerate(pages)
        else:
            # Telemetry segment: same loop over a slice (the copy is
            # O(window), paid only when windowing is on).
            span = enumerate(pages[start:stop], start)
        for i, page in span:
            if queue.next_landing <= i:
                for landed_page in landed(i):
                    insert_prefetch(landed_page)

            store = stores[i]
            outcome = access(page, store)
            hit = outcome is not MISS
            if not hit:
                fill(page, store)
                if append_miss is not None:
                    append_miss(i)
                if not is_null:
                    assert addresses is not None
                    assert stream_ids is not None and timestamps is not None
                    if on_miss_fast is not None:
                        predictions = on_miss_fast(
                            i, addresses[i], page, stream_ids[i],
                            timestamps[i])
                    else:
                        predictions = on_miss(MissEvent(
                            index=i,
                            address=addresses[i],
                            page=page,
                            stream_id=stream_ids[i],
                            timestamp=timestamps[i],
                        ))
                    if predictions:
                        if len(predictions) > max_prefetches:
                            predictions = predictions[:max_prefetches]
                        for predicted in predictions:
                            if predicted != page:
                                issue(int(predicted), i)
            if on_access is not None:
                assert addresses is not None
                assert stream_ids is not None and timestamps is not None
                if on_access_fast is not None:
                    chained = on_access_fast(i, addresses[i], page,
                                             stream_ids[i], timestamps[i],
                                             hit)
                else:
                    chained = on_access(AccessEvent(
                        index=i,
                        address=addresses[i],
                        page=page,
                        stream_id=stream_ids[i],
                        timestamp=timestamps[i],
                        hit=hit,
                    ))
                if chained:
                    if len(chained) > max_prefetches:
                        chained = chained[:max_prefetches]
                    for predicted in chained:
                        if predicted != page:
                            issue(int(predicted), i)
        return True


class _BatchedEngine:
    """Span-batched engine: bulk hit runs between membership events.

    Residency is constant between two membership-changing events (a
    demand fill or a prefetch landing), so the next miss is found by a
    vectorized membership scan and whole hit runs are accounted via
    ``PageCache.access_run``.  Misses stay scalar so the prefetcher sees
    the exact callback sequence of the scalar engine.  A telemetry
    boundary merely clips the current span — splitting an ``access_run``
    is splitting a bulk of identical scalar accesses, so segmented runs
    are bit-identical to the single-segment run.
    """

    def __init__(self, trace: Trace, prefetcher: Prefetcher,
                 config: SimConfig, cache: PageCache, queue: PrefetchQueue,
                 miss_out: list[int] | None, kern: Any = None) -> None:
        pages_arr = trace.pages(config.page_size)
        universe, cids = trace.page_index(config.page_size)
        cache.attach_universe(universe)
        self._cache = cache
        self._queue = queue
        self._cids = cids
        self._stores_arr = trace.kinds != 0
        self._pages: list[int] = pages_arr.tolist()
        self._stores: list[bool] = self._stores_arr.tolist()
        self._cids_t: list[int] = cids.tolist()
        self._kern = kern
        if kern is not None:
            # Route the membership scans through the compiled kernels and
            # bind the hit-walk closure to the cache's state arrays (the
            # arrays are allocated once; landings/misses mutate them in
            # place, so the bound pointers stay valid for the whole run).
            cache.attach_kernels(kern)
            self._walk_state = np.zeros(4, dtype=np.int64)
            self._walk = kern.bind_hit_walk(
                soc=cache._require_universe(),
                cids=np.ascontiguousarray(cids, dtype=np.int64),
                stores=self._stores_arr, last_use=cache._last_use,
                dirty=cache._dirty, undemanded=cache._undemanded,
                state=self._walk_state)

        addresses = trace.addresses
        stream_ids = trace.stream_ids
        timestamps = trace.timestamps
        on_miss_fast = getattr(prefetcher, "on_miss_fast", None)
        on_miss = prefetcher.on_miss
        max_prefetches = config.max_prefetches_per_miss
        fill = cache.fill
        issue = queue.issue
        append_miss = miss_out.append if miss_out is not None else None

        def handle_miss(i: int, page: int, store: bool) -> None:
            fill(page, store)
            if append_miss is not None:
                append_miss(i)
            if on_miss_fast is not None:
                predictions = on_miss_fast(i, int(addresses[i]), page,
                                           int(stream_ids[i]),
                                           int(timestamps[i]))
            else:
                predictions = on_miss(MissEvent(
                    index=i,
                    address=int(addresses[i]),
                    page=page,
                    stream_id=int(stream_ids[i]),
                    timestamp=int(timestamps[i]),
                ))
            if predictions:
                if len(predictions) > max_prefetches:
                    predictions = predictions[:max_prefetches]
                for predicted in predictions:
                    if predicted != page:
                        issue(int(predicted), i)

        self._handle_miss = handle_miss

    def run(self, start: int, stop: int) -> bool:
        if self._kern is not None:
            return self._run_compiled(start, stop)
        cache = self._cache
        queue = self._queue
        n = stop
        pages = self._pages
        stores = self._stores
        cids = self._cids
        cids_t = self._cids_t
        stores_arr = self._stores_arr
        handle_miss = self._handle_miss
        insert_prefetch = cache.insert_prefetch
        first_nonresident = cache.first_nonresident
        access_run = cache.access_run
        landed = queue.landed
        # Demand pages always come from the trace, so they are in the
        # universe and the cid-indexed slot table is their authoritative
        # residency index: scalar stretches poke the cache arrays directly
        # instead of paying the general access() protocol per access.
        soc = cache._require_universe()
        last_use = cache._last_use
        dirty = cache._dirty
        undemanded = cache._undemanded
        stats = cache.stats
        accesses_l = hits_l = misses_l = prefetch_hits_l = 0

        i = start
        while i < n:
            if queue.next_landing <= i:
                for landed_page in landed(i):
                    insert_prefetch(landed_page)
            # Residency is constant until the next landing or demand fill:
            # batch hits up to whichever comes first (or the segment end).
            span_stop = queue.next_landing
            if span_stop > n:
                span_stop = n
            if span_stop - i < _BULK_MIN_SPAN:
                # Short span: the scalar loop wins.  Landings issued inside
                # the span (e.g. delay 0) are handled by the per-access
                # check.
                while i < span_stop:
                    if queue.next_landing <= i:
                        for landed_page in landed(i):
                            insert_prefetch(landed_page)
                    accesses_l += 1
                    slot = soc[cids_t[i]]
                    if slot >= 0:
                        hits_l += 1
                        clock = cache._clock
                        last_use[slot] = clock
                        cache._clock = clock + 1
                        if stores[i]:
                            dirty[slot] = True
                        if cache._n_undemanded and undemanded[slot]:
                            undemanded[slot] = False
                            cache._n_undemanded -= 1
                            prefetch_hits_l += 1
                    else:
                        misses_l += 1
                        handle_miss(i, pages[i], stores[i])
                    i += 1
                continue
            j = first_nonresident(cids, i, span_stop)
            if j > i:
                access_run(cids[i:j], stores_arr[i:j])
                i = j
            if i < span_stop:
                accesses_l += 1
                misses_l += 1  # membership known: first_nonresident stopped
                handle_miss(i, pages[i], stores[i])
                i += 1
        stats.accesses += accesses_l
        stats.hits += hits_l
        stats.demand_misses += misses_l
        stats.prefetch_hits += prefetch_hits_l
        return True

    def _run_compiled(self, start: int, stop: int) -> bool:
        """The same event structure with the hit walk as one compiled call.

        Landings and misses happen at exactly the same access indices as
        the numpy path (the walk stops at the first non-resident access;
        spans never contain a landing by construction), so the prefetcher
        interaction order — and therefore every stat and learned weight —
        is bit-identical.  The per-span numpy windowing disappears, which
        is the whole point: short-span workloads stop paying the dispatch
        floor per span.
        """
        cache = self._cache
        queue = self._queue
        n = stop
        pages = self._pages
        stores = self._stores
        handle_miss = self._handle_miss
        insert_prefetch = cache.insert_prefetch
        landed = queue.landed
        walk = self._walk
        state = self._walk_state
        stats = cache.stats
        accesses_l = misses_l = 0

        i = start
        while i < n:
            if queue.next_landing <= i:
                for landed_page in landed(i):
                    insert_prefetch(landed_page)
            span_stop = queue.next_landing
            if span_stop > n:
                span_stop = n
            # Python-side landings/fills tick the clock and flip
            # undemanded flags between walks; sync both ways per call.
            state[0] = cache._clock
            state[1] = cache._n_undemanded
            j = walk(i, span_stop)
            cache._clock = int(state[0])
            cache._n_undemanded = int(state[1])
            accesses_l += j - i
            i = j
            if i < span_stop:
                accesses_l += 1
                misses_l += 1
                handle_miss(i, pages[i], stores[i])
                i += 1
        stats.accesses += accesses_l
        stats.demand_misses += misses_l
        stats.prefetch_hits += int(state[2])
        stats.hits += int(state[3])
        state[2] = 0
        state[3] = 0
        return True


class _CompiledNullEngine:
    """Null-prefetcher replay as one compiled call per segment.

    No prefetch is ever issued, so the whole per-access reference
    algorithm — hit stamping, LRU victim selection, fills — runs inside
    the kernel; only the stats flush and miss-index copy stay in Python.
    Undemanded flags and the out-of-universe overlay are provably
    untouched (nothing is ever prefetched), and the kernel's batched
    victim snapshot selects exactly the scalar loop's LRU victims (see
    the kernel source), so results are bit-identical to both numpy
    engines.
    """

    def __init__(self, trace: Trace, config: SimConfig, cache: PageCache,
                 miss_out: list[int] | None, kern: Any) -> None:
        pages_arr = trace.pages(config.page_size)
        universe, cids = trace.page_index(config.page_size)
        cache.attach_universe(universe)
        cache.attach_kernels(kern)
        self._cache = cache
        self._miss_out = miss_out
        n = len(cids)
        # state: [0]=clock [1]=n_resident [2]=free_n [3]=miss_count
        #        [4]=hits [5]=demand_misses [6]=writebacks (4-6 per-segment)
        state = np.zeros(8, dtype=np.int64)
        state[0] = cache._clock
        state[1] = cache._n_resident
        state[2] = len(cache._free)
        self._state = state
        self._free_arr = np.array(cache._free, dtype=np.int64)
        self._record = 1 if miss_out is not None else 0
        self._miss_idx = np.zeros(n if miss_out is not None else 1,
                                  dtype=np.int64)
        self._flushed = 0
        self._run_kern = kern.bind_null_run(
            cids=np.ascontiguousarray(cids, dtype=np.int64),
            pages=np.ascontiguousarray(pages_arr, dtype=np.int64),
            stores=trace.kinds != 0,
            soc=cache._require_universe(), page_of_slot=cache._page,
            last_use=cache._last_use, dirty=cache._dirty,
            cid_of_slot=cache._cid_of_slot, free_slots=self._free_arr,
            capacity=cache.capacity_pages, miss_idx=self._miss_idx,
            state=state)

    def run(self, start: int, stop: int) -> bool:
        self._run_kern(start, stop, self._record)
        cache = self._cache
        state = self._state
        stats = cache.stats
        stats.accesses += stop - start
        stats.hits += int(state[4])
        stats.demand_misses += int(state[5])
        stats.writebacks += int(state[6])
        state[4] = 0
        state[5] = 0
        state[6] = 0
        # Mirror the kernel-owned scalars back so telemetry windows (and
        # any post-run cache use) see consistent state.
        cache._clock = int(state[0])
        cache._n_resident = int(state[1])
        cache._free[:] = self._free_arr[:int(state[2])].tolist()
        if self._miss_out is not None:
            miss_n = int(state[3])
            self._miss_out.extend(
                self._miss_idx[self._flushed:miss_n].tolist())
            self._flushed = miss_n
        return True


class _NullReplayEngine:
    """Null-prefetcher engine: no prefetches are ever issued, so the
    landing queue stays empty and both hit runs *and* demand-miss runs
    resolve in bulk over maximal spans.

    ``run`` returns False (partial state, discard the cache) when
    ``allow_fallback`` is set and scalar fallbacks dominate — see
    ``_FALLBACK_SCALAR``.  Materialization state and the fallback
    account persist across telemetry segments so a windowed run makes
    the same engine decisions a single-segment run would."""

    def __init__(self, trace: Trace, config: SimConfig, cache: PageCache,
                 miss_out: list[int] | None, allow_fallback: bool) -> None:
        self._pages_arr = trace.pages(config.page_size)
        universe, cids = trace.page_index(config.page_size)
        cache.attach_universe(universe)
        self._cache = cache
        self._cids = cids
        self._stores_arr = trace.kinds != 0
        self._n_total = len(cids)
        self._miss_out = miss_out
        self._allow_fallback = allow_fallback
        # Boxing numpy scalars in the fallbacks is fine while rare; once
        # enough accesses have gone scalar (a short-span-dominated
        # workload), pay one tolist() and index plain python lists.
        self._pages_l: list[int] | None = None
        self._cids_l: list[int] | None = None
        self._stores_l: list[bool] | None = None
        self._n_scalar = 0
        # After materialization, consecutive short spans flip the loop
        # into a fully inline scalar walk (no per-span function calls at
        # all); a long span or long miss run flips it back.
        self._short_mode = False
        #: Scalar-fallback accesses flushed by earlier segments (the
        #: fallback heuristic is cumulative over the whole run).
        self._scalar_accesses = 0

    def run(self, start: int, stop: int) -> bool:
        cache = self._cache
        cids = self._cids
        pages_arr = self._pages_arr
        stores_arr = self._stores_arr
        miss_out = self._miss_out
        allow_fallback = self._allow_fallback
        n = stop
        n_total = self._n_total
        first_nonresident = cache.first_nonresident
        access_run = cache.access_run
        miss_run_length = cache.miss_run_length
        fill_run = cache.fill_run
        # The null engine guarantees no prefetch ever exists: every page
        # is in the universe, nothing is ever undemanded, and a demand
        # access can only be HIT or MISS.  Short spans and short miss runs
        # therefore skip the scalar access()/fill() protocol and poke the
        # cache arrays directly — same state transitions, none of the
        # generality.
        soc = cache._require_universe()
        last_use = cache._last_use
        dirty = cache._dirty
        page_arr = cache._page
        cid_of_slot = cache._cid_of_slot
        free = cache._free
        capacity = cache.capacity_pages
        evict = cache._evict_lru
        stats = cache.stats
        pages_l = self._pages_l
        cids_l = self._cids_l
        stores_l = self._stores_l
        n_scalar = self._n_scalar
        short_mode = self._short_mode
        base_scalar = self._scalar_accesses
        accesses = hits = misses = 0
        i = start
        while i < n:
            # ``accesses`` counts exactly the scalar-fallback accesses
            # (bulk paths bypass it): when they dominate, batching is not
            # paying.
            if allow_fallback and base_scalar + accesses > _FALLBACK_SCALAR \
                    and (base_scalar + accesses) * 2 > i:
                return False
            if short_mode and cids_l is not None and stores_l is not None \
                    and pages_l is not None:
                clock = cache._clock
                t = i
                walk_limit = min(n, i + _BULK_MIN_SPAN)
                while t < walk_limit:
                    slot = soc[cids_l[t]]
                    if slot < 0:
                        break
                    last_use[slot] = clock
                    clock += 1
                    if stores_l[t]:
                        dirty[slot] = True
                    t += 1
                cache._clock = clock
                span = t - i
                accesses += span
                hits += span
                i = t
                if i >= n:
                    break
                if span >= _BULK_MIN_SPAN:
                    short_mode = False  # long span emerging: vectorize
                    continue
                # ``i`` is a miss.  Resolve it inline when the run is
                # length 1 (next access resident, duplicate, or absent) —
                # the common case in scattered-miss workloads.
                cid = cids_l[i]
                if capacity > 1 and i + 1 < n_total:
                    c1 = cids_l[i + 1]
                    if c1 != cid and soc[c1] < 0:
                        short_mode = False  # multi-miss run: vectorized
                        continue
                accesses += 1
                misses += 1
                if cache._n_resident >= capacity:
                    evict(by_prefetch=False)
                slot = free.pop()
                page_arr[slot] = pages_l[i]
                clock = cache._clock
                last_use[slot] = clock
                cache._clock = clock + 1
                if stores_l[i]:
                    dirty[slot] = True
                soc[cid] = slot
                cid_of_slot[slot] = cid
                cache._n_resident += 1
                if miss_out is not None:
                    miss_out.append(i)
                i += 1
                continue
            j = first_nonresident(cids, i, n)
            span = j - i
            if span:
                if span >= _BULK_MIN_SPAN:
                    access_run(cids[i:j], stores_arr[i:j])
                else:
                    accesses += span
                    hits += span
                    clock = cache._clock
                    if cids_l is not None and stores_l is not None:
                        for t in range(i, j):
                            slot = soc[cids_l[t]]
                            last_use[slot] = clock
                            clock += 1
                            if stores_l[t]:
                                dirty[slot] = True
                    else:
                        n_scalar += span
                        for t in range(i, j):
                            slot = soc[cids[t]]
                            last_use[slot] = clock
                            clock += 1
                            if stores_arr[t]:
                                dirty[slot] = True
                    cache._clock = clock
                i = j
            if i >= n:
                break
            k = miss_run_length(cids, i, n)
            if k >= _BULK_MIN_RUN:
                fill_run(pages_arr[i:i + k], cids[i:i + k],
                         stores_arr[i:i + k])
            else:
                accesses += k
                misses += k
                clock = cache._clock
                if pages_l is not None and cids_l is not None \
                        and stores_l is not None:
                    for t in range(i, i + k):
                        if cache._n_resident >= capacity:
                            evict(by_prefetch=False)
                        slot = free.pop()
                        page_arr[slot] = pages_l[t]
                        last_use[slot] = clock
                        clock += 1
                        if stores_l[t]:
                            dirty[slot] = True
                        cid = cids_l[t]
                        soc[cid] = slot
                        cid_of_slot[slot] = cid
                        cache._n_resident += 1
                else:
                    n_scalar += k
                    for t in range(i, i + k):
                        if cache._n_resident >= capacity:
                            evict(by_prefetch=False)
                        slot = free.pop()
                        page_arr[slot] = pages_arr[t]
                        last_use[slot] = clock
                        clock += 1
                        if stores_arr[t]:
                            dirty[slot] = True
                        cid = cids[t]
                        soc[cid] = slot
                        cid_of_slot[slot] = cid
                        cache._n_resident += 1
                cache._clock = clock
            if miss_out is not None:
                miss_out.extend(range(i, i + k))
            i += k
            if pages_l is None and n_scalar > _MATERIALIZE_AFTER:
                pages_l = pages_arr.tolist()
                cids_l = cids.tolist()
                stores_l = stores_arr.tolist()
            short_mode = (pages_l is not None and span < _BULK_MIN_SPAN
                          and k < _BULK_MIN_RUN)
        stats.accesses += accesses
        stats.hits += hits
        stats.demand_misses += misses
        self._pages_l = pages_l
        self._cids_l = cids_l
        self._stores_l = stores_l
        self._n_scalar = n_scalar
        self._short_mode = short_mode
        self._scalar_accesses = base_scalar + accesses
        return True


def baseline_misses(trace: Trace, config: SimConfig = SimConfig()) -> SimResult:
    """Run the no-prefetch baseline (Figure 5's denominator)."""
    from .prefetcher import NullPrefetcher

    return simulate(trace, NullPrefetcher(), config)


def span_length_stats(trace: Trace, prefetcher: Prefetcher,
                      config: SimConfig = SimConfig()) -> dict:
    """Measure the hit-run (span) length distribution of a workload.

    Replays the trace with the given prefetcher, then segments the access
    stream into maximal runs of consecutive hits (the spans the batched
    engine accounts in bulk).  Returns mean/median/max span length plus
    the hit/miss totals — the numbers that explain where span batching
    pays (EXPERIMENTS.md PR 4).
    """
    result = simulate(trace, prefetcher, config, record_miss_indices=True)
    n = len(trace)
    misses = np.asarray(result.miss_indices, dtype=np.int64)
    # Span lengths = gaps between consecutive miss indices (minus the miss
    # itself), plus the leading and trailing hit runs.
    boundaries = np.concatenate(([-1], misses, [n]))
    spans = np.diff(boundaries) - 1
    spans = spans[spans > 0]
    return {
        "trace": trace.name,
        "prefetcher": result.prefetcher_name,
        "n_accesses": n,
        "demand_misses": int(len(misses)),
        "n_spans": int(len(spans)),
        "mean_span": float(spans.mean()) if len(spans) else 0.0,
        "median_span": float(np.median(spans)) if len(spans) else 0.0,
        "max_span": int(spans.max()) if len(spans) else 0,
    }
