"""Trace-driven memory simulation (Figure 1's deployment loop).

``simulate`` replays a trace against a :class:`~repro.memsim.pagecache.PageCache`
sized as a fraction of the trace footprint (Figure 5 uses 50%), feeding
every demand miss to a prefetcher and installing its predictions after a
configurable timeliness delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..patterns.trace import Trace
from .events import AccessEvent, MissEvent
from .pagecache import MISS, CacheStats, PageCache
from .prefetch_queue import PrefetchQueue
from .prefetcher import Prefetcher


@dataclass(frozen=True)
class SimConfig:
    """Simulation parameters.

    Attributes:
        page_size: Bytes per page (power of two).
        memory_fraction: Cache capacity as a fraction of the trace's page
            footprint; ignored when ``capacity_pages`` is given.  The paper's
            Figure 5 setup is 0.5.
        capacity_pages: Explicit capacity override.
        prefetch_delay_accesses: Accesses between issuing a prefetch and it
            becoming resident (timeliness, §5.2).  0 = ideal.
        max_prefetches_per_miss: Safety cap on a policy's output width.
    """

    page_size: int = 4096
    memory_fraction: float = 0.5
    capacity_pages: int | None = None
    prefetch_delay_accesses: int = 0
    max_prefetches_per_miss: int = 64

    def __post_init__(self) -> None:
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ValueError("page_size must be a positive power of two")
        if not 0 < self.memory_fraction <= 1 and self.capacity_pages is None:
            raise ValueError("memory_fraction must be in (0, 1]")
        if self.capacity_pages is not None and self.capacity_pages <= 0:
            raise ValueError("capacity_pages must be positive")

    def resolve_capacity(self, trace: Trace) -> int:
        if self.capacity_pages is not None:
            return self.capacity_pages
        footprint = trace.footprint_pages(self.page_size)
        return max(1, int(footprint * self.memory_fraction))


@dataclass
class SimResult:
    """Outcome of one simulation run."""

    trace_name: str
    prefetcher_name: str
    capacity_pages: int
    stats: CacheStats
    config: SimConfig
    miss_indices: list[int] = field(default_factory=list, repr=False)

    @property
    def demand_misses(self) -> int:
        return self.stats.demand_misses

    @property
    def miss_rate(self) -> float:
        return self.stats.miss_rate

    def percent_misses_removed(self, baseline: "SimResult") -> float:
        """Figure 5's metric: % of baseline misses this run eliminated."""
        if baseline.demand_misses == 0:
            return 0.0
        removed = baseline.demand_misses - self.demand_misses
        return 100.0 * removed / baseline.demand_misses


def simulate(trace: Trace, prefetcher: Prefetcher,
             config: SimConfig = SimConfig(),
             record_miss_indices: bool = False) -> SimResult:
    """Replay ``trace`` through a page cache attached to ``prefetcher``."""
    capacity = config.resolve_capacity(trace)
    cache = PageCache(capacity_pages=capacity)
    queue = PrefetchQueue(delay_accesses=config.prefetch_delay_accesses)
    # Materialize the trace columns as plain python lists once: indexing a
    # numpy array element-by-element boxes a fresh scalar per access, which
    # dominates the loop at trace scale.
    pages = trace.pages(config.page_size).tolist()
    stores = (trace.kinds != 0).tolist()  # KIND_STORE marks the page dirty
    on_access = getattr(prefetcher, "on_access", None)
    if on_access is not None and not getattr(prefetcher, "wants_accesses", True):
        # Fast-path protocol: the prefetcher declares it ignores the
        # per-access stream, so skip the callback (it would return None
        # for every access) instead of allocating an event each time.
        on_access = None
    # Fast-path protocol: prefetchers that implement the scalar entry
    # points skip the per-event dataclass allocations entirely.  The
    # event-object path stays for external prefetchers.
    on_miss_fast = getattr(prefetcher, "on_miss_fast", None)
    on_access_fast = (getattr(prefetcher, "on_access_fast", None)
                      if on_access is not None else None)
    is_null = getattr(prefetcher, "is_null", False)
    if is_null and on_access is None:
        addresses = stream_ids = timestamps = None
    else:
        addresses = trace.addresses.tolist()
        stream_ids = trace.stream_ids.tolist()
        timestamps = trace.timestamps.tolist()
    miss_indices: list[int] = []

    access = cache.access
    fill = cache.fill
    insert_prefetch = cache.insert_prefetch
    landed = queue.landed
    issue = queue.issue
    on_miss = prefetcher.on_miss
    max_prefetches = config.max_prefetches_per_miss
    append_miss = miss_indices.append

    for i, page in enumerate(pages):
        if queue.next_landing <= i:
            for landed_page in landed(i):
                insert_prefetch(landed_page)

        store = stores[i]
        outcome = access(page, store)
        hit = outcome is not MISS
        if not hit:
            fill(page, store)
            if record_miss_indices:
                append_miss(i)
            if not is_null:
                if on_miss_fast is not None:
                    predictions = on_miss_fast(i, addresses[i], page,
                                               stream_ids[i], timestamps[i])
                else:
                    predictions = on_miss(MissEvent(
                        index=i,
                        address=addresses[i],
                        page=page,
                        stream_id=stream_ids[i],
                        timestamp=timestamps[i],
                    ))
                if predictions:
                    if len(predictions) > max_prefetches:
                        predictions = predictions[:max_prefetches]
                    for predicted in predictions:
                        if predicted != page:
                            issue(int(predicted), i)
        if on_access is not None:
            if on_access_fast is not None:
                chained = on_access_fast(i, addresses[i], page,
                                         stream_ids[i], timestamps[i], hit)
            else:
                chained = on_access(AccessEvent(
                    index=i,
                    address=addresses[i],
                    page=page,
                    stream_id=stream_ids[i],
                    timestamp=timestamps[i],
                    hit=hit,
                ))
            if chained:
                if len(chained) > max_prefetches:
                    chained = chained[:max_prefetches]
                for predicted in chained:
                    if predicted != page:
                        issue(int(predicted), i)

    return SimResult(
        trace_name=trace.name,
        prefetcher_name=prefetcher.name,
        capacity_pages=capacity,
        stats=cache.stats,
        config=config,
        miss_indices=miss_indices,
    )


def baseline_misses(trace: Trace, config: SimConfig = SimConfig()) -> SimResult:
    """Run the no-prefetch baseline (Figure 5's denominator)."""
    from .prefetcher import NullPrefetcher

    return simulate(trace, NullPrefetcher(), config)
