"""Trace-driven memory simulation (Figure 1's deployment loop).

``simulate`` replays a trace against a :class:`~repro.memsim.pagecache.PageCache`
sized as a fraction of the trace footprint (Figure 5 uses 50%), feeding
every demand miss to a prefetcher and installing its predictions after a
configurable timeliness delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..patterns.trace import Trace
from .events import AccessEvent, MissEvent
from .pagecache import MISS, CacheStats, PageCache
from .prefetch_queue import PrefetchQueue
from .prefetcher import Prefetcher


@dataclass(frozen=True)
class SimConfig:
    """Simulation parameters.

    Attributes:
        page_size: Bytes per page (power of two).
        memory_fraction: Cache capacity as a fraction of the trace's page
            footprint; ignored when ``capacity_pages`` is given.  The paper's
            Figure 5 setup is 0.5.
        capacity_pages: Explicit capacity override.
        prefetch_delay_accesses: Accesses between issuing a prefetch and it
            becoming resident (timeliness, §5.2).  0 = ideal.
        max_prefetches_per_miss: Safety cap on a policy's output width.
    """

    page_size: int = 4096
    memory_fraction: float = 0.5
    capacity_pages: int | None = None
    prefetch_delay_accesses: int = 0
    max_prefetches_per_miss: int = 64

    def __post_init__(self) -> None:
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ValueError("page_size must be a positive power of two")
        if not 0 < self.memory_fraction <= 1 and self.capacity_pages is None:
            raise ValueError("memory_fraction must be in (0, 1]")
        if self.capacity_pages is not None and self.capacity_pages <= 0:
            raise ValueError("capacity_pages must be positive")

    def resolve_capacity(self, trace: Trace) -> int:
        if self.capacity_pages is not None:
            return self.capacity_pages
        footprint = trace.footprint_pages(self.page_size)
        return max(1, int(footprint * self.memory_fraction))


@dataclass
class SimResult:
    """Outcome of one simulation run."""

    trace_name: str
    prefetcher_name: str
    capacity_pages: int
    stats: CacheStats
    config: SimConfig
    miss_indices: list[int] = field(default_factory=list, repr=False)

    @property
    def demand_misses(self) -> int:
        return self.stats.demand_misses

    @property
    def miss_rate(self) -> float:
        return self.stats.miss_rate

    def percent_misses_removed(self, baseline: "SimResult") -> float:
        """Figure 5's metric: % of baseline misses this run eliminated."""
        if baseline.demand_misses == 0:
            return 0.0
        removed = baseline.demand_misses - self.demand_misses
        return 100.0 * removed / baseline.demand_misses


def simulate(trace: Trace, prefetcher: Prefetcher,
             config: SimConfig = SimConfig(),
             record_miss_indices: bool = False) -> SimResult:
    """Replay ``trace`` through a page cache attached to ``prefetcher``."""
    capacity = config.resolve_capacity(trace)
    cache = PageCache(capacity_pages=capacity)
    queue = PrefetchQueue(delay_accesses=config.prefetch_delay_accesses)
    pages = trace.pages(config.page_size)
    kinds = trace.kinds
    on_access = getattr(prefetcher, "on_access", None)
    miss_indices: list[int] = []

    for i in range(len(trace)):
        for landed_page in queue.landed(i):
            cache.insert_prefetch(landed_page)

        page = int(pages[i])
        store = bool(kinds[i])  # KIND_STORE marks the page dirty
        outcome = cache.access(page, store=store)
        hit = outcome != MISS
        if not hit:
            cache.fill(page, store=store)
            event = MissEvent(
                index=i,
                address=int(trace.addresses[i]),
                page=page,
                stream_id=int(trace.stream_ids[i]),
                timestamp=int(trace.timestamps[i]),
            )
            if record_miss_indices:
                miss_indices.append(i)
            predictions = prefetcher.on_miss(event)
            for predicted in predictions[: config.max_prefetches_per_miss]:
                if predicted != page:
                    queue.issue(int(predicted), i)
        if on_access is not None:
            chained = on_access(AccessEvent(
                index=i,
                address=int(trace.addresses[i]),
                page=page,
                stream_id=int(trace.stream_ids[i]),
                timestamp=int(trace.timestamps[i]),
                hit=hit,
            ))
            if chained:
                for predicted in chained[: config.max_prefetches_per_miss]:
                    if predicted != page:
                        queue.issue(int(predicted), i)

    return SimResult(
        trace_name=trace.name,
        prefetcher_name=prefetcher.name,
        capacity_pages=capacity,
        stats=cache.stats,
        config=config,
        miss_indices=miss_indices,
    )


def baseline_misses(trace: Trace, config: SimConfig = SimConfig()) -> SimResult:
    """Run the no-prefetch baseline (Figure 5's denominator)."""
    from .prefetcher import NullPrefetcher

    return simulate(trace, NullPrefetcher(), config)
