"""Parameter quantization (the INT8 arm of Figure 2).

The paper quantizes the LSTM's FP32 parameters to INT8 for inference [29]
and still measures >60 us latency.  We reproduce both halves of that
observation: the *accuracy* effect by round-tripping weights through a
symmetric per-tensor INT8 grid, and the *latency* effect in the cost model
(`repro.nn.costs` prices quantized MACs as integer ops).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .lstm import OnlineLSTM


@dataclass(frozen=True)
class QuantizedTensor:
    """A symmetric per-tensor INT8 quantization of a float array."""

    q: np.ndarray     # int8 values
    scale: float      # float = q * scale

    @classmethod
    def quantize(cls, values: np.ndarray, bits: int = 8) -> "QuantizedTensor":
        if bits < 2 or bits > 16:
            raise ValueError("bits must be in [2, 16]")
        qmax = 2 ** (bits - 1) - 1
        max_abs = float(np.abs(values).max())
        scale = max_abs / qmax if max_abs > 0 else 1.0
        q = np.clip(np.round(values / scale), -qmax - 1, qmax).astype(np.int16)
        return cls(q=q, scale=scale)

    def dequantize(self) -> np.ndarray:
        return self.q.astype(np.float64) * self.scale


def snap_to_grid(values: np.ndarray, scale: float,
                 bits: int = 8) -> np.ndarray:
    """Round ``values`` onto the symmetric ``bits``-bit grid of ``scale``.

    The float-valued counterpart of :class:`QuantizedTensor` for callers
    that keep a *fixed* scale (the Hebbian ``int8`` serving mirror pins
    ``scale = weight_max / 127`` so the grid never moves as weights
    train): every output is ``k * scale`` for an integer ``k`` in
    ``[-qmax, qmax]``, and the elementwise error is at most
    ``scale / 2``.
    """
    if bits < 2 or bits > 16:
        raise ValueError("bits must be in [2, 16]")
    qmax = float(2 ** (bits - 1) - 1)
    return np.clip(np.round(values / scale), -qmax, qmax) * scale


def quantization_error(values: np.ndarray, bits: int = 8) -> float:
    """Relative L2 error introduced by quantizing ``values``."""
    qt = QuantizedTensor.quantize(values, bits)
    norm = float(np.linalg.norm(values))
    if norm == 0:
        return 0.0
    return float(np.linalg.norm(qt.dequantize() - values)) / norm


def quantize_lstm(model: OnlineLSTM, bits: int = 8) -> OnlineLSTM:
    """An inference-equivalent copy with weights snapped to the INT grid.

    The returned model is a normal :class:`OnlineLSTM` (so every evaluation
    path works unchanged); callers treat it as inference-only, matching the
    paper's quantized-inference setup.
    """
    twin = model.clone()
    for key, values in twin.net.params.items():
        twin.net.params[key] = QuantizedTensor.quantize(values, bits).dequantize()
    return twin
