"""The sparse Hebbian prefetch network (§3.1).

The paper's prototype: a single hidden layer of 1000 neurons with 12.5%
connectivity between layers and 10% activation sparsity (k-winner-take-all),
plus a recurrent state for sequence memory.  Learning uses the Hebbian rule
of Eq. 1 — for an active (clamped-to-target) output neuron, weights from
active inputs are increased and weights from inactive inputs decreased:

    dw_ij = (y_j != 0) * [ (x_i != 0) - (x_i == 0) ]

Mapped onto prefetching:

- The *input* is the one-hot encoded miss class (vocabulary shared with the
  LSTM baseline).
- A fixed sparse binary projection (the dentate-gyrus analogue: pattern
  separation) plus a sparse recurrent loop produce the hidden
  pre-activation; k-WTA keeps the top 10%.
- The *readout* weights to the class vocabulary are learned with Eq. 1,
  clamping the output layer to the observed next class.  An optional
  error-driven term also depresses a wrongly predicted class, which
  sharpens convergence without changing the rule's cost profile.

All learned updates touch only masked (connected) weights, and inference
touches only *active* units — this is where the order-of-magnitude op
advantage over the LSTM (Table 2) comes from.  The implementation honors
that cost profile: the projections are stored as precomputed index lists
(CSR-style), so one ``step()`` performs

- a padded gather + ``bincount`` over the ~``k * n * connectivity_rec``
  recurrent edges leaving the active set (instead of a dense
  ``(k, hidden)`` gather-and-sum),
- a per-class connected-row update of the readout column (instead of
  full ``(hidden,)`` temporaries), and
- a ``(k, vocab)`` readout gather.

Hidden codes are additionally memoized per ``(input class, context)``:
the fixed projections make the k-WTA code a pure function of those two,
and real miss streams revisit the same transitions constantly (the same
regularity the prefetcher itself exploits), so steady-state inference
skips the projection entirely.  ``repro.nn.hebbian_reference`` keeps the
original dense masked-array implementation; the kernels here are
bit-identical to it (see ``tests/nn/test_hebbian_equivalence.py``).

Default configuration: vocab 128, hidden 1000, 12.5% in/out connectivity,
1.7% recurrent connectivity — 49k connected weights, the paper's Table 2
figure for the Hebbian network.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .backends import hebbian_kernels, resolve_backend
from .base import evaluate_sequence_probs
from .quantization import snap_to_grid


@dataclass(frozen=True)
class HebbianConfig:
    """Sparse Hebbian network hyperparameters.

    Attributes:
        vocab_size: Number of miss classes.
        hidden_dim: Hidden-layer width (paper: 1000).
        connectivity_in: Input->hidden connection density (paper: 12.5%).
        connectivity_rec: Hidden->hidden recurrent density.
        connectivity_out: Hidden->output density (paper: 12.5%).
        activation_fraction: Fraction of hidden units active (paper: 10%).
        lr: Readout learning-rate (units of weight per update).
        negative_scale: Scale of Eq. 1's depression term (the "-1" applied
            to inactive-but-connected inputs of the clamped target).  At
            1.0 (the paper's rule) a target reached from several different
            contexts — e.g. interleaved streams — has its potentiation and
            depression cancel and never consolidates; real synapses weight
            LTD below LTP for the same reason.  0.25 keeps the
            decorrelation benefit while letting multi-context targets
            saturate.
        weight_max: Readout weights are clipped to [-weight_max, weight_max];
            bounds the scores so confidence stays meaningful and forgetting
            is possible at all.
        recurrent_strength: Scale of the (normalized) recurrent contribution
            to the hidden pre-activation.
        input_gain: Weight of the feed-forward input drive.  Kept above the
            recurrent ceiling so the active set always lies inside the
            input's connected units — the input selects the *support*,
            recurrent context selects the winners within it.  This is what
            makes hidden codes for the same class overlap heavily across
            contexts (pattern completion) while codes for different classes
            stay nearly disjoint (pattern separation).
        punish_wrong: Apply the error-driven depression of a wrong argmax.
        plastic_hidden: Also adapt input/recurrent weights Hebbian-style
            (off by default: the paper's prototype learns the readout).
        input_mode: "onehot" (one input unit per class — input weights grow
            with the vocabulary) or "signature" (each class activates
            ``signature_k`` of ``signature_dim`` input units via fixed
            random hashing).  §5.3 observes that one-hot/embedding input
            layers grow linearly with the address vocabulary; signature
            codes fix the input layer's size regardless of vocabulary,
            at the cost of rare hash collisions and weaker accuracy.
            Pair signature mode with a small ``recurrent_strength``
            (<= 0.1): the signature drive is continuous rather than a hard
            support set, so a strong recurrent term destabilizes the
            winner set instead of merely reordering it.
        signature_dim: Input units in signature mode.
        signature_k: Active input units per class in signature mode.
        seed: Mask/initialization seed.
        backend: Kernel backend for the hot paths — ``"auto"`` (prefer a
            compiled backend, fall back to numpy), ``"numpy"``,
            ``"numba"``, ``"c"``, or ``"int8"``.  All backends except
            ``int8`` are bit-identical to numpy; ``int8`` serves the
            readout from an int8-quantized weight mirror (training stays
            float64) with a per-entry score error bounded by half a
            quantization step per active row — the one accuracy-bounded
            exception to the bit-identity contract.
    """

    vocab_size: int = 128
    hidden_dim: int = 1000
    connectivity_in: float = 0.125
    connectivity_rec: float = 0.017
    connectivity_out: float = 0.125
    activation_fraction: float = 0.10
    lr: float = 1.0
    negative_scale: float = 1.0
    weight_max: float = 8.0
    recurrent_strength: float = 0.5
    input_gain: float = 2.0
    punish_wrong: bool = True
    plastic_hidden: bool = False
    input_mode: str = "onehot"
    signature_dim: int = 256
    signature_k: int = 8
    seed: int = 0
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.backend not in ("auto", "numpy", "numba", "c", "int8"):
            raise ValueError(
                "backend must be 'auto', 'numpy', 'numba', 'c' or 'int8'")
        if self.input_mode not in ("onehot", "signature"):
            raise ValueError("input_mode must be 'onehot' or 'signature'")
        if self.input_mode == "signature":
            if self.signature_k <= 0 or self.signature_k > self.signature_dim:
                raise ValueError("signature_k must be in [1, signature_dim]")
        if not 0 < self.activation_fraction <= 1:
            raise ValueError("activation_fraction must be in (0, 1]")
        for density in (self.connectivity_in, self.connectivity_rec,
                        self.connectivity_out):
            if not 0 < density <= 1:
                raise ValueError("connectivity must be in (0, 1]")
        if min(self.vocab_size, self.hidden_dim) <= 0:
            raise ValueError("dimensions must be positive")

    @property
    def k_winners(self) -> int:
        return max(1, int(round(self.hidden_dim * self.activation_fraction)))


#: Hidden-code memo entries kept before the cache is dropped and rebuilt.
_CODE_CACHE_CAP = 8192

#: Column-delta memo entries kept before that cache is dropped.  Keyed per
#: (code, target, lr_scale), so it can outgrow the code cache on its own.
_DELTA_CACHE_CAP = 65536

#: Sparse-readout index entries kept (two ~connectivity*k*V index arrays
#: per code, so the memory cap is tighter than the code cache's).
_READOUT_IDX_CAP = 4096


class SparseHebbianNetwork:
    """Online sparse Hebbian sequence model (implements ``SequenceModel``)."""

    #: ``train_pairs`` reproduces the sequential ``train_pair`` loop bit
    #: for bit (see its docstring), so replay may batch through it.
    train_pairs_sequential_equivalent = True
    #: ``predict_rollout`` selects each step's top-width with the same
    #: ``np.argpartition(probs, -width)`` call the prefetcher's accuracy
    #: EMA uses, so the first step's membership set may be memoized and
    #: reused verbatim.  (The LSTM's full argsort can pick different
    #: members under boundary ties, so it must not set this.)
    rollout_top_argpartition = True

    def __init__(self, config: HebbianConfig = HebbianConfig()) -> None:
        self.config = config
        self.vocab_size = config.vocab_size
        # Resolve the kernel backend up front (before the first w_out
        # assignment: the setter maintains the serving mirror).  int8
        # reuses the numpy kernels but serves scores from a quantized
        # weight mirror with this fixed symmetric scale.
        self._backend = resolve_backend(config.backend, domain="nn")
        self._q_scale = config.weight_max / 127.0
        rng = np.random.default_rng(config.seed)
        v, n = config.vocab_size, config.hidden_dim
        if config.input_mode == "signature":
            # Fixed k-of-D random codes: the input layer's width is
            # signature_dim regardless of the vocabulary size (§5.3).
            in_rows = config.signature_dim
            self._signatures = np.stack([
                rng.choice(in_rows, size=config.signature_k, replace=False)
                for _ in range(v)])
        else:
            in_rows = v
            self._signatures = None
        self.mask_in = rng.random((in_rows, n)) < config.connectivity_in
        self.mask_rec = rng.random((n, n)) < config.connectivity_rec
        self.mask_out = rng.random((n, v)) < config.connectivity_out
        self.w_in = self.mask_in.astype(np.float64)
        if self._signatures is not None:
            # Per-unit standardization of the signature drive.  Raw hit
            # counts are proportional to a unit's in-degree, so hub units
            # would win the k-WTA under *every* signature and pattern
            # separation would collapse; z-scoring the hits makes the
            # winners signature-specific.
            degree = self.mask_in.sum(axis=0).astype(np.float64)
            p = config.signature_k / config.signature_dim
            self._sig_mu = degree * p
            self._sig_sigma = np.sqrt(np.maximum(degree * p * (1 - p), 1e-6))
        self.w_rec = self.mask_rec.astype(np.float64)
        self.w_out = np.zeros((n, v))
        # Fixed per-unit jitter breaks k-WTA ties deterministically.
        self._tiebreak = rng.uniform(0.0, 1e-3, size=n)
        # Readout scores span roughly +-k * connectivity_out * weight_max at
        # convergence; this temperature maps that span to +-8 logits so the
        # softmax confidence saturates near 1 for a well-learned class.
        score_span = config.k_winners * config.connectivity_out * config.weight_max
        self._temperature = max(0.25, score_span / 8.0)

        self._build_kernels()

        self._prev_class: int | None = None
        self._prev_active: np.ndarray | None = None
        self._prev_pred: int | None = None
        self._last_scores: np.ndarray | None = None
        self._last_active: np.ndarray | None = None
        self._last_probs: np.ndarray | None = None
        self.train_steps = 0

    # ------------------------------------------------------------------
    # Sparse kernels
    # ------------------------------------------------------------------
    def _build_kernels(self) -> None:
        """Precompute the CSR-style index structures the hot path runs on.

        - ``_rec_pad``: per-unit recurrent out-neighbor lists from
          ``mask_rec``, padded to the max out-degree with a sentinel column
          (index ``hidden_dim``) so a whole active set gathers in one
          fancy-index + ``bincount``.  The recurrent projection is binary
          and fixed, so edge *counts* reproduce the dense
          ``w_rec[active].sum(axis=0)`` exactly.
        - ``_pre_base``: per-class feed-forward drive with the tie-break
          jitter folded in — the input projection is fixed (unless
          ``plastic_hidden``), so the k-WTA input term is a row copy.
        - ``_out_rows`` / ``_out_flat``: per-class connected-hidden indices
          of ``w_out`` (and their flattened offsets), so Eq. 1 updates
          touch only the ~``hidden * connectivity_out`` connected entries
          of the target column.
        """
        config = self.config
        v, n = config.vocab_size, config.hidden_dim
        self._k = config.k_winners

        deg = self.mask_rec.sum(axis=1)
        width = int(deg.max()) if deg.size else 0
        rec_pad = np.full((n, max(width, 1)), n, dtype=np.intp)
        rows_idx, cols_idx = np.nonzero(self.mask_rec)
        if rows_idx.size:
            first = np.searchsorted(rows_idx, rows_idx, side="left")
            rec_pad[rows_idx, np.arange(rows_idx.size) - first] = cols_idx
        self._rec_pad = rec_pad
        self._rec_bins = n + 1  # one sentinel bin for the padding

        if config.plastic_hidden:
            # The input projection adapts online; recompute it per call.
            self._pre_base = None
        elif self._signatures is not None:
            hits = np.stack([self.w_in[sig].sum(axis=0)
                             for sig in self._signatures])
            z = (hits - self._sig_mu) / self._sig_sigma
            self._pre_base = (config.input_gain / 3.0) * z + self._tiebreak
        else:
            self._pre_base = config.input_gain * self.w_in + self._tiebreak
        self._pre_buf = np.empty(n)

        self._out_rows = tuple(np.flatnonzero(self.mask_out[:, t])
                               for t in range(v))
        self._out_flat = tuple((rows * v + t).astype(np.intp)
                               for t, rows in enumerate(self._out_rows))
        self._scratch_active = np.zeros(n, dtype=bool)
        self._probs_buf = np.empty(v)
        # (class, context) -> k-WTA code; valid because the projections the
        # code depends on are fixed.  Disabled under plastic_hidden.
        self._code_cache: dict | None = (
            None if config.plastic_hidden else {})
        # id(cache-resident code) -> its boolean membership mask.  Doubles
        # as the registry that lets a cached code serve as a context *key*
        # by object identity instead of a 400-byte ``tobytes()`` hash: ids
        # are unique among live objects, every registered array is kept
        # alive by the cache, and both structures are cleared together.
        self._code_masks: dict[int, np.ndarray] = {}
        # (id(code), target, lr_scale) -> the precomputed Eq. 1 column
        # delta.  Deltas depend only on the code's membership mask and the
        # (fixed) learning-rate constants, never on the weights, so they
        # are reusable verbatim.  Only cache-resident codes are keyed (the
        # cache keeps them alive, making ids stable); cleared with it.
        self._delta_cache: dict[tuple[int, int, float], np.ndarray] = {}
        # id(code) -> (cols, flat) index arrays over the *connected*
        # entries of the code's rows, in row-major order.  Lets the
        # readout gather+accumulate only the ~connectivity_out fraction of
        # each row that can be nonzero (see ``readout`` for the
        # bit-identity argument).  Same id-keyed lifecycle as the masks.
        self._readout_idx: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        # Compiled kernel bundle (None = inline numpy).  Built last: it
        # captures the fixed ``_rec_pad`` structure.  Clones share it —
        # its only mutable state is a scratch that every call rewrites.
        self._kern = hebbian_kernels(self._backend, rec_pad=self._rec_pad,
                                     hidden_dim=config.hidden_dim,
                                     vocab_size=config.vocab_size)

    @property
    def w_out(self) -> np.ndarray:
        return self._w_out

    @w_out.setter
    def w_out(self, value: np.ndarray) -> None:
        # Keep the flat alias (used by the sparse column update) in sync
        # when callers replace the weights wholesale (e.g. the §5.5 noise
        # robustness probe assigns a perturbed copy).
        arr = np.ascontiguousarray(value, dtype=np.float64)
        self._w_out = arr
        self._w_out_flat = arr.reshape(-1)
        if self._backend == "int8":
            # Serving mirror: the readout scores from these quantized
            # values while training keeps updating the float64 weights.
            mirror = snap_to_grid(arr, self._q_scale)
            self._serve_w = mirror
            self._serve_flat = mirror.reshape(-1)
        else:
            self._serve_w = arr
            self._serve_flat = self._w_out_flat

    def _sync_serving(self, flat: np.ndarray) -> None:
        """Refresh the int8 serving mirror at just-written flat offsets.

        A no-op unless the mirror is a distinct array (``backend="int8"``);
        every weight-write site calls this after its scatter.
        """
        if self._serve_flat is self._w_out_flat:
            return
        vals = self._w_out_flat.take(flat)
        self._serve_flat[flat] = snap_to_grid(vals, self._q_scale)

    # ------------------------------------------------------------------
    # Forward pieces
    # ------------------------------------------------------------------
    def hidden_code(self, input_class: int,
                    prev_active: np.ndarray | None = None) -> np.ndarray:
        """k-WTA hidden activation (indices) for an input in a context.

        The returned array may be shared with the internal code memo —
        treat it as read-only.
        """
        has_context = prev_active is not None and prev_active.size
        cache = self._code_cache
        if cache is not None:
            # Content-keyed on purpose: element-equal codes reach here as
            # distinct array objects, and identity keys would fragment the
            # cache into one entry per object.
            key = (input_class,
                   prev_active.tobytes() if has_context else None)
            code = cache.get(key)
            if code is not None:
                return code
        config = self.config
        base = self._pre_base
        if base is not None:
            pre = self._pre_buf
            np.copyto(pre, base[input_class])
        elif self._signatures is not None:
            hits = self.w_in[self._signatures[input_class]].sum(axis=0)
            # standardized overlap: signature-specific, hub-neutral; scaled
            # so the strongest winners sit around input_gain like one-hot
            z = (hits - self._sig_mu) / self._sig_sigma
            pre = (config.input_gain / 3.0) * z + self._tiebreak
        else:
            pre = config.input_gain * self.w_in[input_class] + self._tiebreak
        if has_context:
            # Normalize by the expected number of recurrent hits per unit so
            # the recurrent term peaks around ``recurrent_strength`` and can
            # order units within the input's support without overriding it.
            expected_hits = max(1.0, prev_active.size * config.connectivity_rec)
            scale = config.recurrent_strength / expected_hits
            if self._kern is not None:
                self._kern.pre_accumulate(pre, prev_active, scale)
            else:
                counts = np.bincount(self._rec_pad[prev_active].ravel(),
                                     minlength=self._rec_bins)
                pre += scale * counts[:config.hidden_dim]
        active = pre.argpartition(-self._k)[-self._k:]
        if cache is not None:
            if len(cache) >= _CODE_CACHE_CAP:
                cache.clear()
                self._code_masks.clear()
                self._delta_cache.clear()
                self._readout_idx.clear()
            cache[key] = active
            mask = np.zeros(config.hidden_dim, dtype=bool)
            mask[active] = True
            self._code_masks[id(active)] = mask
        return active

    def readout(self, active: np.ndarray) -> np.ndarray:
        """Class scores from an active hidden set.

        Cache-resident codes take a sparse path: gather only the
        *connected* entries of the active rows and accumulate them per
        class with ``np.bincount``.  This is bit-identical to the dense
        row sum: ``np.add.reduce`` over axis 0 adds the rows elementwise
        in order, bincount adds the row-major-ordered connected values per
        column in the same row order, and the skipped entries are exactly
        ``+0.0`` (``_learn`` never touches unconnected entries and the
        update arithmetic cannot produce ``-0.0``), so dropping them
        changes no bits.  Pinned by tests against the dense reference.
        """
        entry = self._readout_idx.get(id(active))
        if entry is None:
            if id(active) not in self._code_masks:
                # Foreign (non-resident) code: dense row sum, as before.
                # np.add.reduce is what ndarray.sum calls underneath minus
                # a dispatch layer.  (Cold path: stays numpy under every
                # backend; serves from the mirror like the sparse path.)
                return np.add.reduce(self._serve_w.take(active, axis=0),
                                     axis=0)
            rows_i, cols = self.mask_out[active].nonzero()
            flat = (active[rows_i] * self.config.vocab_size
                    + cols).astype(np.intp)
            entry = (cols.astype(np.intp), flat)
            if len(self._readout_idx) >= _READOUT_IDX_CAP:
                self._readout_idx.clear()
            self._readout_idx[id(active)] = entry
        cols, flat = entry
        if self._kern is not None:
            return self._kern.readout_sparse(self._serve_flat, flat, cols)
        return np.bincount(cols, weights=self._serve_flat.take(flat),
                           minlength=self.config.vocab_size)

    def probabilities(self, scores: np.ndarray,
                      out: np.ndarray | None = None) -> np.ndarray:
        # Inline max-shifted softmax over scores / temperature.  ``out``
        # lets hot loops reuse a scratch buffer; the arithmetic (and hence
        # the result, bit for bit) is identical either way.
        x = np.divide(scores, self._temperature, out=out)
        x -= x.max()
        np.exp(x, out=x)
        x /= x.sum()
        return x

    # ------------------------------------------------------------------
    # SequenceModel interface
    # ------------------------------------------------------------------
    def step(self, input_class: int, train: bool = True,
             lr_scale: float = 1.0) -> np.ndarray:
        if not 0 <= input_class < self.vocab_size:
            raise ValueError(
                f"class {input_class} outside vocab [0, {self.vocab_size})")
        prev_active = self._prev_active
        if train and prev_active is not None:
            self._learn(prev_active, input_class, self._prev_pred, lr_scale)
            if self.config.plastic_hidden and self._prev_class is not None:
                self._adapt_hidden(self._prev_class, prev_active, lr_scale)
            self.train_steps += 1

        active = self.hidden_code(input_class, prev_active)
        scores = self.readout(active)
        probs = self.probabilities(scores)

        self._prev_class = input_class
        self._prev_active = active
        # The argmax only feeds the error-driven depression term; without
        # it, ``_learn`` never reads the prediction.
        self._prev_pred = (int(scores.argmax())
                           if self.config.punish_wrong else None)
        self._last_scores = scores
        self._last_active = active
        self._last_probs = probs
        return probs

    def train_pair(self, input_class: int, target_class: int,
                   lr_scale: float = 1.0) -> float:
        self._check_class(input_class)
        self._check_class(target_class)
        active = self.hidden_code(input_class, prev_active=None)
        scores = self.readout(active)
        confidence = float(self.probabilities(scores)[target_class])
        predicted = (int(scores.argmax())
                     if self.config.punish_wrong else None)
        self._learn(active, target_class, predicted, lr_scale)
        if self.config.plastic_hidden:
            self._adapt_hidden(input_class, active, lr_scale)
        return confidence

    def train_pairs(self, pairs: list[tuple[int, int]],
                    lr_scale: float = 1.0) -> None:
        """Batched training, bit-identical to the per-pair loop.

        Eq. 1 updates are local — each pair touches only its target's
        connected column entries — so with the error-driven term and the
        plastic hidden layer off, a pair's update is a pure function of
        its (fixed) hidden code and the pre-batch weights of that column.
        When every target in the batch is distinct, the touched flat
        offsets are disjoint, update order can't matter, and the whole
        batch applies as one gather-update-clip-scatter; the per-pair
        readout/softmax (whose confidences a batch discards anyway) is
        skipped entirely.  Duplicate targets fall back to sequential
        ``_learn`` calls, and punish_wrong/plastic_hidden configurations
        fall back to the full ``train_pair`` loop, so every path matches
        the reference element for element.  (The only divergence is on
        *invalid* input: the vectorized path validates the whole batch
        before applying any update.)
        """
        config = self.config
        if config.punish_wrong or config.plastic_hidden:
            for input_class, target_class in pairs:
                self.train_pair(input_class, target_class, lr_scale=lr_scale)
            return
        targets = [t for _, t in pairs]
        if len(pairs) < 2 or len(set(targets)) != len(targets):
            for input_class, target_class in pairs:
                self._check_class(input_class)
                self._check_class(target_class)
                self._learn(self.hidden_code(input_class), target_class,
                            None, lr_scale)
            return
        lr = config.lr * lr_scale
        neg = -lr * config.negative_scale
        code_masks = self._code_masks
        delta_cache = self._delta_cache
        scratch = self._scratch_active
        flats = []
        deltas = []
        for input_class, target_class in pairs:
            self._check_class(input_class)
            self._check_class(target_class)
            active = self.hidden_code(input_class)
            key = (id(active), target_class, lr_scale)
            delta = delta_cache.get(key)
            if delta is None:
                rows = self._out_rows[target_class]
                mask = code_masks.get(id(active))
                if mask is not None:
                    is_active = mask[rows]
                else:
                    scratch[active] = True
                    is_active = scratch[rows]
                    scratch[active] = False
                delta = np.where(is_active, lr, neg)
                if mask is not None:
                    if len(delta_cache) >= _DELTA_CACHE_CAP:
                        delta_cache.clear()
                    delta_cache[key] = delta
            flats.append(self._out_flat[target_class])
            deltas.append(delta)
        flat = np.concatenate(flats)
        w_flat = self._w_out_flat
        wm = config.weight_max
        if self._kern is not None:
            # Distinct targets => disjoint columns => distinct offsets,
            # so the in-place kernel equals the gather/scatter below.
            self._kern.learn_apply(w_flat, flat, np.concatenate(deltas), wm)
        else:
            vals = w_flat.take(flat)
            vals += np.concatenate(deltas)
            np.minimum(vals, wm, out=vals)
            np.maximum(vals, -wm, out=vals)
            w_flat[flat] = vals
        self._sync_serving(flat)

    def predict_rollout(self, width: int = 1, length: int = 1
                        ) -> list[list[tuple[int, float]]]:
        if self._last_scores is None:
            return []
        out: list[list[tuple[int, float]]] = []
        scores = self._last_scores
        active = self._last_active
        # Fused with step(): the first rollout step reuses the softmax
        # step() just computed over these exact (frozen) scores, so even
        # if training touched the weights in between the result is the
        # same, bit for bit.  Later steps softmax into a scratch buffer.
        probs = self._last_probs
        if probs is None:
            probs = self.probabilities(scores)
        for remaining in range(length - 1, -1, -1):
            if width == 2 and probs.size > 2:
                # Same selection and ordering as the general branch below,
                # with the two-element argsort done as one scalar compare:
                # argsort([v0, v1]) is [0, 1] when v0 <= v1 (numpy's small
                # sorts are insertion sorts, stable on ties), so reversed
                # descending order is [1, 0] exactly then.
                part = probs.argpartition(-2)
                i0 = part.item(-2)
                i1 = part.item(-1)
                v0 = probs.item(i0)
                v1 = probs.item(i1)
                if v0 <= v1:
                    step = [(i1, v1), (i0, v0)]
                else:
                    step = [(i0, v0), (i1, v1)]
            elif width < probs.size:
                # top-width selection, sorted within the slice
                part = probs.argpartition(-width)[-width:]
                vals = probs[part]
                order = vals.argsort()[::-1]
                step = list(zip(part[order].tolist(), vals[order].tolist()))
            else:
                top_arr = probs.argsort()[::-1][:width]
                step = list(zip(top_arr.tolist(), probs[top_arr].tolist()))
            out.append(step)
            if not remaining:
                break  # the next readout would be discarded
            active = self.hidden_code(step[0][0], active)
            scores = self.readout(active)
            probs = self.probabilities(scores, out=self._probs_buf)
        return out

    def reset_state(self) -> None:
        self._prev_class = None
        self._prev_active = None
        self._prev_pred = None
        self._last_scores = None
        self._last_active = None
        self._last_probs = None

    def clone(self) -> "SparseHebbianNetwork":
        """Deep copy of the learned state.

        The fixed structures (masks, signatures, tie-break jitter, and the
        precomputed kernels derived from them) are shared between clones —
        nothing ever mutates them — so cloning costs only the learned
        weight copies instead of a full re-initialization.
        """
        twin = object.__new__(SparseHebbianNetwork)
        twin.__dict__.update(self.__dict__)
        twin.w_in = self.w_in.copy()
        twin.w_out = self._w_out.copy()  # setter rebuilds the flat alias
        twin._pre_buf = np.empty(self.config.hidden_dim)
        twin._probs_buf = np.empty(self.config.vocab_size)
        twin._scratch_active = np.zeros(self.config.hidden_dim, dtype=bool)
        if self.config.plastic_hidden:
            # Plastic clones diverge; give each its own (disabled) cache
            # and recompute the input drive from the copied weights.
            twin._code_cache = None
            twin._code_masks = {}
            twin._delta_cache = {}
            twin._readout_idx = {}
        for src, attr in ((self._prev_active, "_prev_active"),
                          (self._last_scores, "_last_scores"),
                          (self._last_active, "_last_active"),
                          (self._last_probs, "_last_probs")):
            setattr(twin, attr, None if src is None else src.copy())
        return twin

    def restore_state(self, *, w_out: np.ndarray, prev_class: int | None,
                      prev_active: np.ndarray | None, prev_pred: int | None,
                      last_active: np.ndarray | None,
                      last_scores: np.ndarray | None,
                      last_probs: np.ndarray | None,
                      train_steps: int) -> None:
        """Install externally-held learned state wholesale.

        The hand-back half of the :class:`~repro.nn.hebbian_fleet.
        HebbianFleet` adoption protocol: a fleet slot carries this
        network's weights and sequence context while batched stepping
        owns the lane, and returns them here when the lane leaves.  The
        ``w_out`` setter rebuilds the flat (and serving) aliases.
        """
        self.w_out = w_out
        self._prev_class = prev_class
        self._prev_active = prev_active
        self._prev_pred = prev_pred
        self._last_active = last_active
        self._last_scores = last_scores
        self._last_probs = last_probs
        self.train_steps = train_steps

    def evaluate_sequence(self, classes: list[int]) -> float:
        probs = evaluate_sequence_probs(self, classes)
        return float(probs.mean()) if probs.size else 0.0

    # ------------------------------------------------------------------
    # Learning rules
    # ------------------------------------------------------------------
    def _learn(self, active: np.ndarray, target: int, predicted: int | None,
               lr_scale: float) -> None:
        """Eq. 1 with the output clamped to the observed next class.

        Touches only the target column's connected rows (``_out_rows``):
        active-and-connected entries get ``+lr``, the other connected
        entries get the depression term, and the result is clipped —
        element-for-element the same arithmetic as the dense column
        update, without the ``(hidden,)`` temporaries.
        """
        config = self.config
        lr = config.lr * lr_scale
        flat = self._out_flat[target]
        w_flat = self._w_out_flat
        key = (id(active), target, lr_scale)
        delta = self._delta_cache.get(key)
        if delta is None:
            rows = self._out_rows[target]
            mask = self._code_masks.get(id(active))
            if mask is not None:
                is_active = mask[rows]
            else:
                scratch = self._scratch_active
                scratch[active] = True
                is_active = scratch[rows]
                scratch[active] = False
            delta = np.where(is_active, lr, -lr * config.negative_scale)
            if mask is not None:
                if len(self._delta_cache) >= _DELTA_CACHE_CAP:
                    self._delta_cache.clear()
                self._delta_cache[key] = delta
        wm = config.weight_max
        if self._kern is not None:
            # In-place update == gather-modify-scatter: the flat offsets
            # of one connected column are distinct.
            self._kern.learn_apply(w_flat, flat, delta, wm)
        else:
            vals = w_flat.take(flat)
            vals += delta
            np.minimum(vals, wm, out=vals)
            np.maximum(vals, -wm, out=vals)
            w_flat[flat] = vals
        self._sync_serving(flat)

        if config.punish_wrong and predicted is not None and predicted != target:
            wrong = active[self.mask_out[active, predicted]]
            if wrong.size:
                wrong_flat = wrong * config.vocab_size + predicted
                if self._kern is not None:
                    self._kern.punish_apply(w_flat, wrong_flat, lr, wm)
                else:
                    wvals = w_flat.take(wrong_flat)
                    wvals -= lr
                    np.maximum(wvals, -wm, out=wvals)
                    w_flat[wrong_flat] = wvals
                self._sync_serving(wrong_flat)

    def _adapt_hidden(self, input_class: int, active: np.ndarray,
                      lr_scale: float) -> None:
        """Optional Hebbian strengthening of the hidden projection."""
        lr = 0.01 * self.config.lr * lr_scale
        rows = (self._signatures[input_class] if self._signatures is not None
                else np.array([input_class]))
        for row in rows:
            connected = active[self.mask_in[row, active]]
            self.w_in[row, connected] = np.minimum(
                self.w_in[row, connected] + lr, 2.0)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def parameter_count(self) -> int:
        """Connected weights across all three projections (Table 2)."""
        return int(self.mask_in.sum() + self.mask_rec.sum() + self.mask_out.sum())

    def _check_class(self, class_id: int) -> None:
        if not 0 <= class_id < self.vocab_size:
            raise ValueError(f"class {class_id} outside vocab [0, {self.vocab_size})")
