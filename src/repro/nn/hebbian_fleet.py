"""Tenant-axis batched Hebbian stepping for fleets of learners.

:class:`HebbianFleet` stacks T independent copies of one
:class:`~repro.nn.hebbian.SparseHebbianNetwork` prototype into a single
lane-major weight tensor and advances *all* lanes per vectorized
operation.  The fixed structures — projection masks, CSR index lists,
the hidden-code memo, and the Eq. 1 delta cache — are shared with the
prototype (they are identical across lanes by construction), so the
per-step work that remains per lane is exactly the learned-weight
arithmetic:

* **Batched learn** — every lane's Eq. 1 column update (and the
  error-driven punish term) lands in a disjoint block of the flat weight
  tensor, so the whole fleet applies as one ``learn_apply`` /
  ``punish_apply`` call per step.
* **Batched readout** — the per-lane connected-entry gathers concatenate
  into one ``bincount`` (or one ``rk_readout_sparse`` call) over a
  ``T * vocab`` accumulator, reshaped to per-lane score rows.
* **Batched softmax** — one row-wise max-shifted softmax over the
  ``(T, vocab)`` score matrix.

Every batched path is bit-identical to T independent networks stepping
the same class streams (``tests/nn/test_hebbian_fleet.py`` pins this per
backend): lane blocks are disjoint so the update order across lanes
cannot matter, the shared caches are pure memoization over fixed
structures, and the row softmax performs the same elementwise
arithmetic as the scalar one.

Beyond the lockstep ``step_all``, the fleet exposes the *subset* entry
points the cohort miss path needs (only the lanes that missed this
cohort round advance):

* ``acquire_lane``/``release_lane`` adopt a live scalar network into a
  fleet slot and hand its (bit-identical) state back out, so lanes can
  join and leave mid-run as cohort lanes drain and refill.
* ``step_lanes`` steps an arbitrary lane subset with per-lane train
  flags — the batched mirror of ``SparseHebbianNetwork.step``.
* ``train_pairs_lanes`` replays per-lane episode batches — the batched
  mirror of ``train_pairs`` (round-barriered so in-lane pair order is
  preserved exactly).
* ``rollout_lanes`` runs per-lane beam rollouts with one batched
  readout per depth — the mirror of ``predict_rollout``.

Adopted networks may come from *different* :class:`SparseHebbianNetwork`
instances built from an equal config: the fixed structures are then
value-identical (construction is seeded by the config) even though the
cache dicts differ.  The hidden-code memo is content-keyed, and every
id-keyed cache miss (delta, readout indices) falls back to the same
arithmetic it would have cached, so adoption preserves bit-identity.

Out of scope (both raise at construction): ``plastic_hidden`` lanes
diverge in their *fixed* projections, and the ``int8`` serving mirror
would need a per-lane quantized shadow.
"""

from __future__ import annotations

import numpy as np

from .backends import hebbian_kernels
from .hebbian import (
    _DELTA_CACHE_CAP,
    _READOUT_IDX_CAP,
    SparseHebbianNetwork,
)

__all__ = ["HebbianFleet"]


def _select_topk(probs: np.ndarray, width: int) -> list[tuple[int, float]]:
    """One rollout selection step — verbatim ``predict_rollout`` branches.

    Kept as a module function so the fleet's per-lane selection is the
    same code shape (and the same numpy call sequence, hence the same
    bits) as the scalar network's.
    """
    if width == 2 and probs.size > 2:
        part = probs.argpartition(-2)
        i0 = part.item(-2)
        i1 = part.item(-1)
        v0 = probs.item(i0)
        v1 = probs.item(i1)
        if v0 <= v1:
            return [(i1, v1), (i0, v0)]
        return [(i0, v0), (i1, v1)]
    if width < probs.size:
        part = probs.argpartition(-width)[-width:]
        vals = probs[part]
        order = vals.argsort()[::-1]
        return list(zip(part[order].tolist(), vals[order].tolist()))
    top_arr = probs.argsort()[::-1][:width]
    return list(zip(top_arr.tolist(), probs[top_arr].tolist()))


class HebbianFleet:
    """T lanes of one Hebbian prototype, stepped in lockstep.

    Each lane starts from the prototype's *current* learned weights and
    then learns independently.  ``step_all`` is the batched equivalent
    of calling ``step`` on T independent clones with one class per lane.

    With ``reserve=True`` the fleet starts *empty* — every slot is free
    and lanes enter via :meth:`acquire_lane` (the cohort drain/refill
    shape); the prototype then contributes only its fixed structures,
    never its weights.
    """

    def __init__(self, prototype: SparseHebbianNetwork,
                 n_lanes: int, reserve: bool = False) -> None:
        if n_lanes <= 0:
            raise ValueError("n_lanes must be positive")
        config = prototype.config
        if config.plastic_hidden:
            raise ValueError(
                "HebbianFleet requires fixed hidden projections "
                "(plastic_hidden lanes diverge structurally)")
        if prototype._backend == "int8":
            raise ValueError(
                "HebbianFleet does not support the int8 serving mirror")
        self.prototype = prototype
        self.n_lanes = n_lanes
        self.vocab_size = config.vocab_size
        self.hidden_dim = config.hidden_dim
        self._block = self.hidden_dim * self.vocab_size
        # Lane-major stacked weights; the flat alias is what every
        # batched update and readout indexes with +t*block offsets.
        if reserve:
            self.w_out = np.zeros((n_lanes,) + prototype.w_out.shape)
        else:
            self.w_out = np.broadcast_to(
                prototype.w_out, (n_lanes,) + prototype.w_out.shape).copy()
        self._w_flat = self.w_out.reshape(-1)
        # A second kernel bundle over the widened T*vocab accumulator;
        # learn/punish are vocab-independent so it serves those too.
        self._kern = None
        if prototype._kern is not None:
            self._kern = hebbian_kernels(
                prototype._backend, rec_pad=prototype._rec_pad,
                hidden_dim=self.hidden_dim,
                vocab_size=n_lanes * self.vocab_size)
        self._prev_class: list[int | None] = [None] * n_lanes
        self._prev_active: list[np.ndarray | None] = [None] * n_lanes
        self._prev_pred: list[int | None] = [None] * n_lanes
        self._last_active: list[np.ndarray | None] = [None] * n_lanes
        # Per-lane rollout anchors (the scalar net's ``_last_scores`` /
        # ``_last_probs``), stored as rows so subset steps update only
        # their own lanes.  ``_has_last[t]`` distinguishes "never
        # stepped" (scalar: ``_last_scores is None``) from a zero row.
        self._scores_rows = np.zeros((n_lanes, self.vocab_size))
        self._probs_rows = np.zeros((n_lanes, self.vocab_size))
        self._has_last = [False] * n_lanes
        # Lanes continue the prototype's training history, as clones do.
        self.train_steps = np.full(
            n_lanes, 0 if reserve else prototype.train_steps, dtype=np.int64)
        self._free: list[int] = list(range(n_lanes - 1, -1, -1)) if reserve \
            else []

    # ------------------------------------------------------------------
    # Lane adoption (cohort drain/refill)
    # ------------------------------------------------------------------
    def acquire_lane(self, net: SparseHebbianNetwork) -> int:
        """Adopt a live scalar network into a fleet slot; returns it.

        The fleet takes over stepping: the slot carries the network's
        learned weights, sequence context, and rollout anchor, so
        subsequent ``step_lanes`` calls continue it bit-identically.
        ``net`` itself is left untouched until :meth:`release_lane`
        hands the state back.
        """
        if net.config != self.prototype.config:
            raise ValueError("adopted network's config differs from the "
                             "fleet prototype's")
        if not self._free:
            self._grow(self.n_lanes + 1)
        t = self._free.pop()
        self.w_out[t] = net.w_out
        self._prev_class[t] = net._prev_class
        self._prev_active[t] = net._prev_active
        self._prev_pred[t] = net._prev_pred
        self._last_active[t] = net._last_active
        if net._last_scores is not None:
            self._scores_rows[t] = net._last_scores
            probs = net._last_probs
            if probs is None:
                probs = net.probabilities(net._last_scores.copy())
            self._probs_rows[t] = probs
            self._has_last[t] = True
        else:
            self._has_last[t] = False
        self.train_steps[t] = net.train_steps
        return t

    def release_lane(self, lane: int, net: SparseHebbianNetwork) -> None:
        """Hand a slot's state back to ``net`` and free the slot."""
        has_last = self._has_last[lane]
        net.restore_state(
            w_out=self.w_out[lane].copy(),
            prev_class=self._prev_class[lane],
            prev_active=self._prev_active[lane],
            prev_pred=self._prev_pred[lane],
            last_active=self._last_active[lane],
            last_scores=self._scores_rows[lane].copy() if has_last else None,
            last_probs=self._probs_rows[lane].copy() if has_last else None,
            train_steps=int(self.train_steps[lane]))
        self._prev_class[lane] = None
        self._prev_active[lane] = None
        self._prev_pred[lane] = None
        self._last_active[lane] = None
        self._has_last[lane] = False
        self._free.append(lane)

    def _grow(self, min_capacity: int) -> None:
        """Double capacity (at least to ``min_capacity``); existing lane
        state is preserved, new slots join the free list."""
        old = self.n_lanes
        new = max(old * 2, min_capacity)
        w_out = np.zeros((new,) + self.w_out.shape[1:])
        w_out[:old] = self.w_out
        self.w_out = w_out
        self._w_flat = self.w_out.reshape(-1)
        if self._kern is not None:
            self._kern = hebbian_kernels(
                self.prototype._backend, rec_pad=self.prototype._rec_pad,
                hidden_dim=self.hidden_dim,
                vocab_size=new * self.vocab_size)
        grown = new - old
        self._prev_class.extend([None] * grown)
        self._prev_active.extend([None] * grown)
        self._prev_pred.extend([None] * grown)
        self._last_active.extend([None] * grown)
        self._scores_rows = np.vstack(
            [self._scores_rows, np.zeros((grown, self.vocab_size))])
        self._probs_rows = np.vstack(
            [self._probs_rows, np.zeros((grown, self.vocab_size))])
        self._has_last.extend([False] * grown)
        self.train_steps = np.concatenate(
            [self.train_steps, np.zeros(grown, dtype=np.int64)])
        self._free.extend(range(new - 1, old - 1, -1))
        self.n_lanes = new

    # ------------------------------------------------------------------
    # Shared-structure helpers (prototype caches, per-lane offsets)
    # ------------------------------------------------------------------
    def _delta_for(self, active: np.ndarray, target: int,
                   lr_scale: float) -> np.ndarray:
        """Eq. 1 column delta for (code, target) — same memo as scalar.

        Deltas depend only on the code's membership and the fixed
        learning-rate constants, never on lane weights, so one cached
        delta serves every lane.
        """
        proto = self.prototype
        config = proto.config
        lr = config.lr * lr_scale
        key = (id(active), target, lr_scale)
        delta = proto._delta_cache.get(key)
        if delta is None:
            rows = proto._out_rows[target]
            mask = proto._code_masks.get(id(active))
            if mask is not None:
                is_active = mask[rows]
            else:
                scratch = proto._scratch_active
                scratch[active] = True
                is_active = scratch[rows]
                scratch[active] = False
            delta = np.where(is_active, lr, -lr * config.negative_scale)
            if mask is not None:
                if len(proto._delta_cache) >= _DELTA_CACHE_CAP:
                    proto._delta_cache.clear()
                proto._delta_cache[key] = delta
        return delta

    def _readout_entry(self,
                       active: np.ndarray) -> tuple[np.ndarray,
                                                    np.ndarray] | None:
        """(cols, flat) sparse-readout indices, or None for foreign codes
        (which take the scalar path's dense row-sum fallback)."""
        proto = self.prototype
        entry = proto._readout_idx.get(id(active))
        if entry is None:
            if id(active) not in proto._code_masks:
                return None
            rows_i, cols = proto.mask_out[active].nonzero()
            flat = (active[rows_i] * self.vocab_size + cols).astype(np.intp)
            entry = (cols.astype(np.intp), flat)
            if len(proto._readout_idx) >= _READOUT_IDX_CAP:
                proto._readout_idx.clear()
            proto._readout_idx[id(active)] = entry
        return entry

    # ------------------------------------------------------------------
    # The batched step
    # ------------------------------------------------------------------
    def step_all(self, classes: list[int] | np.ndarray, train: bool = True,
                 lr_scale: float = 1.0) -> np.ndarray:
        """Advance every lane one step; returns ``(T, vocab)`` probs.

        Lane ``t`` consumes ``classes[t]``.  Equivalent, bit for bit, to
        ``net_t.step(classes[t], train, lr_scale)`` on T independent
        networks.
        """
        if len(classes) != self.n_lanes:
            raise ValueError(
                f"expected {self.n_lanes} classes, got {len(classes)}")
        lanes = list(range(self.n_lanes))
        return self.step_lanes(lanes, classes,
                               [train] * self.n_lanes, lr_scale)

    def step_lanes(self, lanes: list[int],
                   classes: list[int] | np.ndarray,
                   train: list[bool], lr_scale: float = 1.0) -> np.ndarray:
        """Advance a lane *subset* one step; returns ``(L, vocab)`` probs.

        Row ``i`` of the result is lane ``lanes[i]`` consuming
        ``classes[i]`` with its own train flag — the batched mirror of
        per-lane ``step(classes[i], train[i], lr_scale)`` calls, bit for
        bit (learn order across lanes is free: disjoint weight blocks).
        """
        proto = self.prototype
        config = proto.config
        cls = [int(c) for c in classes]
        for input_class in cls:
            if not 0 <= input_class < self.vocab_size:
                raise ValueError(
                    f"class {input_class} outside vocab "
                    f"[0, {self.vocab_size})")
        trained = [(t, c) for t, c, flag in zip(lanes, cls, train)
                   if flag and self._prev_active[t] is not None]
        if trained:
            self._learn_lanes(trained, lr_scale)
            for t, _ in trained:
                self.train_steps[t] += 1

        actives = [proto.hidden_code(input_class, self._prev_active[t])
                   for t, input_class in zip(lanes, cls)]
        scores = self._readout_lanes(lanes, actives)
        probs = self._probabilities_rows(scores)

        punish = config.punish_wrong
        arg = scores.argmax(axis=1) if punish else None
        for i, (t, input_class) in enumerate(zip(lanes, cls)):
            self._prev_class[t] = input_class
            self._prev_active[t] = actives[i]
            self._prev_pred[t] = int(arg[i]) if punish else None
            self._last_active[t] = actives[i]
            self._has_last[t] = True
        idx = np.asarray(lanes, dtype=np.intp)
        self._scores_rows[idx] = scores
        self._probs_rows[idx] = probs
        return probs

    def _learn_lanes(self, trained: list[tuple[int, int]],
                     lr_scale: float) -> None:
        """One fused Eq. 1 (+punish) application across trained lanes.

        Per-lane offsets live in disjoint ``t * block`` ranges and a
        lane's target and punished columns are distinct, so applying all
        potentiation/depression updates, then all punish updates, equals
        the scalar per-lane interleaving.
        """
        proto = self.prototype
        config = proto.config
        lr = config.lr * lr_scale
        wm = config.weight_max
        vocab = self.vocab_size
        flats: list[np.ndarray] = []
        deltas: list[np.ndarray] = []
        punish_flats: list[np.ndarray] = []
        for t, target in trained:
            prev_active = self._prev_active[t]
            offset = t * self._block
            flats.append(proto._out_flat[target] + offset)
            deltas.append(self._delta_for(prev_active, target, lr_scale))
            predicted = self._prev_pred[t]
            if (config.punish_wrong and predicted is not None
                    and predicted != target):
                wrong = prev_active[proto.mask_out[prev_active, predicted]]
                if wrong.size:
                    punish_flats.append(
                        wrong * vocab + predicted + offset)
        if flats:
            flat = np.concatenate(flats)
            w_flat = self._w_flat
            if self._kern is not None:
                self._kern.learn_apply(w_flat, flat,
                                       np.concatenate(deltas), wm)
            else:
                vals = w_flat.take(flat)
                vals += np.concatenate(deltas)
                np.minimum(vals, wm, out=vals)
                np.maximum(vals, -wm, out=vals)
                w_flat[flat] = vals
        if punish_flats:
            wrong_flat = np.concatenate(punish_flats)
            w_flat = self._w_flat
            if self._kern is not None:
                self._kern.punish_apply(w_flat, wrong_flat, lr, wm)
            else:
                wvals = w_flat.take(wrong_flat)
                wvals -= lr
                np.maximum(wvals, -wm, out=wvals)
                w_flat[wrong_flat] = wvals

    def _readout_lanes(self, lanes: list[int],
                       actives: list[np.ndarray]) -> np.ndarray:
        """(L, vocab) scores via one concatenated sparse accumulation.

        Flat weight offsets use the *global* lane index (each lane's
        block), accumulator columns the *subset-local* row, so an
        L-lane readout costs O(L), not O(capacity).
        """
        vocab = self.vocab_size
        n = len(lanes)
        flats: list[np.ndarray] = []
        cols_list: list[np.ndarray] = []
        dense_rows: list[int] = []
        for i, (t, active) in enumerate(zip(lanes, actives)):
            entry = self._readout_entry(active)
            if entry is None:
                dense_rows.append(i)
                continue
            cols, flat = entry
            flats.append(flat + t * self._block)
            cols_list.append(cols + i * vocab)
        if flats:
            flat_all = np.concatenate(flats)
            cols_all = np.concatenate(cols_list)
            if self._kern is not None:
                # The widened bundle's accumulator spans capacity*vocab;
                # every column index is < L*vocab, so the live scores
                # are the leading slice.
                scores = self._kern.readout_sparse(
                    self._w_flat, flat_all, cols_all)[:n * vocab]
            else:
                scores = np.bincount(cols_all,
                                     weights=self._w_flat.take(flat_all),
                                     minlength=n * vocab)
            scores = scores.reshape(n, vocab)
        else:
            scores = np.zeros((n, vocab))
        for i in dense_rows:
            scores[i] = np.add.reduce(
                self.w_out[lanes[i]].take(actives[i], axis=0), axis=0)
        return scores

    def _probabilities_rows(self, scores: np.ndarray) -> np.ndarray:
        """Row-wise max-shifted softmax, same arithmetic as the scalar
        :meth:`SparseHebbianNetwork.probabilities` per row."""
        x = scores / self.prototype._temperature
        x -= x.max(axis=1, keepdims=True)
        np.exp(x, out=x)
        x /= x.sum(axis=1, keepdims=True)
        return x

    # ------------------------------------------------------------------
    # Batched replay training (the ReplayScheduler mirror)
    # ------------------------------------------------------------------
    def train_pairs_lanes(self, lanes: list[int],
                          pairs_per_lane: list[list[tuple[int, int]]],
                          lr_scales: list[float]) -> None:
        """Replay-train each lane on its own pair batch, batched.

        The batched mirror of per-lane
        ``train_pairs(pairs_per_lane[i], lr_scales[i])`` calls.  Rounds
        are barriers: round ``j`` consumes the ``j``-th pair of every
        lane that has one, so in-lane pair order (which matters for
        duplicate targets and for punish_wrong's pre-update readout) is
        preserved exactly, while cross-lane updates merge freely into
        one ``learn_apply``/``punish_apply`` (disjoint weight blocks).
        Like the scalar ``train_pairs``, this never touches
        ``train_steps`` or the lanes' sequence context.
        """
        proto = self.prototype
        config = proto.config
        punish = config.punish_wrong
        wm = config.weight_max
        vocab = self.vocab_size
        for pairs in pairs_per_lane:
            for input_class, target_class in pairs:
                proto._check_class(input_class)
                proto._check_class(target_class)
        depth = max((len(p) for p in pairs_per_lane), default=0)
        for j in range(depth):
            live = [i for i, pairs in enumerate(pairs_per_lane)
                    if len(pairs) > j]
            actives = [proto.hidden_code(pairs_per_lane[i][j][0], None)
                       for i in live]
            predicted: list[int | None] = [None] * len(live)
            if punish:
                # train_pair reads out (and argmaxes) *before* learning;
                # the softmax confidence it computes is discarded and
                # writes no state, so it is skipped here.
                sub = [lanes[i] for i in live]
                scores = self._readout_lanes(sub, actives)
                arg = scores.argmax(axis=1)
                predicted = [int(a) for a in arg]
            flats: list[np.ndarray] = []
            deltas: list[np.ndarray] = []
            punish_flats: list[np.ndarray] = []
            punish_lrs: list[float] = []
            for row, i in enumerate(live):
                t = lanes[i]
                target = pairs_per_lane[i][j][1]
                active = actives[row]
                offset = t * self._block
                flats.append(proto._out_flat[target] + offset)
                deltas.append(self._delta_for(active, target, lr_scales[i]))
                pred = predicted[row]
                if punish and pred is not None and pred != target:
                    wrong = active[proto.mask_out[active, pred]]
                    if wrong.size:
                        punish_flats.append(wrong * vocab + pred + offset)
                        punish_lrs.append(config.lr * lr_scales[i])
            if flats:
                flat = np.concatenate(flats)
                w_flat = self._w_flat
                if self._kern is not None:
                    self._kern.learn_apply(w_flat, flat,
                                           np.concatenate(deltas), wm)
                else:
                    vals = w_flat.take(flat)
                    vals += np.concatenate(deltas)
                    np.minimum(vals, wm, out=vals)
                    np.maximum(vals, -wm, out=vals)
                    w_flat[flat] = vals
            if punish_flats:
                w_flat = self._w_flat
                # punish_apply takes one scalar lr; group by value so
                # mixed per-lane lr_scales still fuse per group.
                by_lr: dict[float, list[np.ndarray]] = {}
                for arr, plr in zip(punish_flats, punish_lrs):
                    by_lr.setdefault(plr, []).append(arr)
                for plr, arrs in by_lr.items():
                    wrong_flat = np.concatenate(arrs)
                    if self._kern is not None:
                        self._kern.punish_apply(w_flat, wrong_flat, plr, wm)
                    else:
                        wvals = w_flat.take(wrong_flat)
                        wvals -= plr
                        np.maximum(wvals, -wm, out=wvals)
                        w_flat[wrong_flat] = wvals

    # ------------------------------------------------------------------
    # Batched beam rollout (the predict_rollout mirror)
    # ------------------------------------------------------------------
    def rollout_lanes(self, lanes: list[int], widths: list[int],
                      lengths: list[int]
                      ) -> list[list[list[tuple[int, float]]]]:
        """Per-lane beam rollouts with one batched readout per depth.

        Result ``i`` equals ``lane_network(lanes[i]).predict_rollout(
        widths[i], lengths[i])`` bit for bit: selection reuses the
        scalar branch code verbatim, lanes whose beam is exhausted drop
        out *before* the next readout (the scalar early ``break``), and
        never-stepped lanes return ``[]``.
        """
        proto = self.prototype
        out: list[list[list[tuple[int, float]]]] = [[] for _ in lanes]
        live: list[int] = []      # indices into ``lanes``
        actives: list[np.ndarray] = []
        remaining: list[int] = []
        probs_rows: list[np.ndarray] = []
        for i, t in enumerate(lanes):
            if not self._has_last[t] or lengths[i] < 1:
                continue
            live.append(i)
            actives.append(self._last_active[t])
            remaining.append(lengths[i] - 1)
            probs_rows.append(self._probs_rows[t])
        while live:
            survivors: list[int] = []
            for row, i in enumerate(live):
                step = _select_topk(probs_rows[row], widths[i])
                out[i].append(step)
                if remaining[row]:
                    survivors.append(row)
            if not survivors:
                break
            live = [live[r] for r in survivors]
            actives = [proto.hidden_code(out[live_i][-1][0][0], actives[r])
                       for r, live_i in zip(survivors, live)]
            remaining = [remaining[r] - 1 for r in survivors]
            sub = [lanes[i] for i in live]
            scores = self._readout_lanes(sub, actives)
            probs = self._probabilities_rows(scores)
            probs_rows = [probs[r] for r in range(len(live))]
        return out

    # ------------------------------------------------------------------
    # Lane extraction
    # ------------------------------------------------------------------
    def reset_state(self) -> None:
        """Clear every lane's sequence context (weights are kept)."""
        for t in range(self.n_lanes):
            self._prev_class[t] = None
            self._prev_active[t] = None
            self._prev_pred[t] = None
            self._last_active[t] = None
            self._has_last[t] = False

    def lane_weights(self, lane: int) -> np.ndarray:
        """Lane ``lane``'s learned-weight block, as a read-only view.

        The serving layer checksums this to prove a query was answered
        from exactly one deployed weight snapshot (never a torn mix);
        a view keeps that check allocation-free.  Callers must not
        write through it — mutation goes through ``step_lanes`` /
        ``acquire_lane``.
        """
        view = self.w_out[lane]
        view.flags.writeable = False
        return view

    def lane_network(self, lane: int) -> SparseHebbianNetwork:
        """Materialize lane ``lane`` as a standalone scalar network.

        The clone shares the fixed structures with the prototype (as
        ``SparseHebbianNetwork.clone`` does) and carries the lane's
        learned weights and sequence state, so stepping it continues the
        lane bit-identically.
        """
        net = self.prototype.clone()
        has_last = self._has_last[lane]
        net.restore_state(
            w_out=self.w_out[lane].copy(),
            prev_class=self._prev_class[lane],
            prev_active=self._prev_active[lane],
            prev_pred=self._prev_pred[lane],
            last_active=self._last_active[lane],
            last_scores=self._scores_rows[lane].copy() if has_last else None,
            last_probs=self._probs_rows[lane].copy() if has_last else None,
            train_steps=int(self.train_steps[lane]))
        return net
