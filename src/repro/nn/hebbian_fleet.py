"""Tenant-axis batched Hebbian stepping for fleets of learners.

:class:`HebbianFleet` stacks T independent copies of one
:class:`~repro.nn.hebbian.SparseHebbianNetwork` prototype into a single
lane-major weight tensor and advances *all* lanes per vectorized
operation.  The fixed structures — projection masks, CSR index lists,
the hidden-code memo, and the Eq. 1 delta cache — are shared with the
prototype (they are identical across lanes by construction), so the
per-step work that remains per lane is exactly the learned-weight
arithmetic:

* **Batched learn** — every lane's Eq. 1 column update (and the
  error-driven punish term) lands in a disjoint block of the flat weight
  tensor, so the whole fleet applies as one ``learn_apply`` /
  ``punish_apply`` call per step.
* **Batched readout** — the per-lane connected-entry gathers concatenate
  into one ``bincount`` (or one ``rk_readout_sparse`` call) over a
  ``T * vocab`` accumulator, reshaped to per-lane score rows.
* **Batched softmax** — one row-wise max-shifted softmax over the
  ``(T, vocab)`` score matrix.

Every batched path is bit-identical to T independent networks stepping
the same class streams (``tests/nn/test_hebbian_fleet.py`` pins this per
backend): lane blocks are disjoint so the update order across lanes
cannot matter, the shared caches are pure memoization over fixed
structures, and the row softmax performs the same elementwise
arithmetic as the scalar one.

Out of scope (both raise at construction): ``plastic_hidden`` lanes
diverge in their *fixed* projections, and the ``int8`` serving mirror
would need a per-lane quantized shadow.
"""

from __future__ import annotations

import numpy as np

from .backends import hebbian_kernels
from .hebbian import (
    _DELTA_CACHE_CAP,
    _READOUT_IDX_CAP,
    SparseHebbianNetwork,
)

__all__ = ["HebbianFleet"]


class HebbianFleet:
    """T lanes of one Hebbian prototype, stepped in lockstep.

    Each lane starts from the prototype's *current* learned weights and
    then learns independently.  ``step_all`` is the batched equivalent
    of calling ``step`` on T independent clones with one class per lane.
    """

    def __init__(self, prototype: SparseHebbianNetwork,
                 n_lanes: int) -> None:
        if n_lanes <= 0:
            raise ValueError("n_lanes must be positive")
        config = prototype.config
        if config.plastic_hidden:
            raise ValueError(
                "HebbianFleet requires fixed hidden projections "
                "(plastic_hidden lanes diverge structurally)")
        if prototype._backend == "int8":
            raise ValueError(
                "HebbianFleet does not support the int8 serving mirror")
        self.prototype = prototype
        self.n_lanes = n_lanes
        self.vocab_size = config.vocab_size
        self.hidden_dim = config.hidden_dim
        self._block = self.hidden_dim * self.vocab_size
        # Lane-major stacked weights; the flat alias is what every
        # batched update and readout indexes with +t*block offsets.
        self.w_out = np.broadcast_to(
            prototype.w_out, (n_lanes,) + prototype.w_out.shape).copy()
        self._w_flat = self.w_out.reshape(-1)
        # A second kernel bundle over the widened T*vocab accumulator;
        # learn/punish are vocab-independent so it serves those too.
        self._kern = None
        if prototype._kern is not None:
            self._kern = hebbian_kernels(
                prototype._backend, rec_pad=prototype._rec_pad,
                hidden_dim=self.hidden_dim,
                vocab_size=n_lanes * self.vocab_size)
        self._prev_class: list[int | None] = [None] * n_lanes
        self._prev_active: list[np.ndarray | None] = [None] * n_lanes
        self._prev_pred: list[int | None] = [None] * n_lanes
        self._last_scores: np.ndarray | None = None
        self._last_probs: np.ndarray | None = None
        self._last_active: list[np.ndarray | None] = [None] * n_lanes
        # Lanes continue the prototype's training history, as clones do.
        self.train_steps = np.full(n_lanes, prototype.train_steps,
                                   dtype=np.int64)

    # ------------------------------------------------------------------
    # Shared-structure helpers (prototype caches, per-lane offsets)
    # ------------------------------------------------------------------
    def _delta_for(self, active: np.ndarray, target: int,
                   lr_scale: float) -> np.ndarray:
        """Eq. 1 column delta for (code, target) — same memo as scalar.

        Deltas depend only on the code's membership and the fixed
        learning-rate constants, never on lane weights, so one cached
        delta serves every lane.
        """
        proto = self.prototype
        config = proto.config
        lr = config.lr * lr_scale
        key = (id(active), target, lr_scale)
        delta = proto._delta_cache.get(key)
        if delta is None:
            rows = proto._out_rows[target]
            mask = proto._code_masks.get(id(active))
            if mask is not None:
                is_active = mask[rows]
            else:
                scratch = proto._scratch_active
                scratch[active] = True
                is_active = scratch[rows]
                scratch[active] = False
            delta = np.where(is_active, lr, -lr * config.negative_scale)
            if mask is not None:
                if len(proto._delta_cache) >= _DELTA_CACHE_CAP:
                    proto._delta_cache.clear()
                proto._delta_cache[key] = delta
        return delta

    def _readout_entry(self,
                       active: np.ndarray) -> tuple[np.ndarray,
                                                    np.ndarray] | None:
        """(cols, flat) sparse-readout indices, or None for foreign codes
        (which take the scalar path's dense row-sum fallback)."""
        proto = self.prototype
        entry = proto._readout_idx.get(id(active))
        if entry is None:
            if id(active) not in proto._code_masks:
                return None
            rows_i, cols = proto.mask_out[active].nonzero()
            flat = (active[rows_i] * self.vocab_size + cols).astype(np.intp)
            entry = (cols.astype(np.intp), flat)
            if len(proto._readout_idx) >= _READOUT_IDX_CAP:
                proto._readout_idx.clear()
            proto._readout_idx[id(active)] = entry
        return entry

    # ------------------------------------------------------------------
    # The batched step
    # ------------------------------------------------------------------
    def step_all(self, classes: list[int] | np.ndarray, train: bool = True,
                 lr_scale: float = 1.0) -> np.ndarray:
        """Advance every lane one step; returns ``(T, vocab)`` probs.

        Lane ``t`` consumes ``classes[t]``.  Equivalent, bit for bit, to
        ``net_t.step(classes[t], train, lr_scale)`` on T independent
        networks.
        """
        proto = self.prototype
        config = proto.config
        lanes = [int(c) for c in classes]
        if len(lanes) != self.n_lanes:
            raise ValueError(
                f"expected {self.n_lanes} classes, got {len(lanes)}")
        for input_class in lanes:
            if not 0 <= input_class < self.vocab_size:
                raise ValueError(
                    f"class {input_class} outside vocab "
                    f"[0, {self.vocab_size})")
        if train:
            self._learn_all(lanes, lr_scale)

        actives = [proto.hidden_code(input_class, self._prev_active[t])
                   for t, input_class in enumerate(lanes)]
        scores = self._readout_all(actives)
        probs = self._probabilities_all(scores)

        punish = config.punish_wrong
        for t, input_class in enumerate(lanes):
            self._prev_class[t] = input_class
            self._prev_active[t] = actives[t]
            self._prev_pred[t] = (int(scores[t].argmax()) if punish
                                  else None)
            self._last_active[t] = actives[t]
        self._last_scores = scores
        self._last_probs = probs
        return probs

    def _learn_all(self, lanes: list[int], lr_scale: float) -> None:
        """One fused Eq. 1 (+punish) application across all lanes.

        Per-lane offsets live in disjoint ``t * block`` ranges and a
        lane's target and punished columns are distinct, so applying all
        potentiation/depression updates, then all punish updates, equals
        the scalar per-lane interleaving.
        """
        proto = self.prototype
        config = proto.config
        lr = config.lr * lr_scale
        wm = config.weight_max
        vocab = self.vocab_size
        flats: list[np.ndarray] = []
        deltas: list[np.ndarray] = []
        punish_flats: list[np.ndarray] = []
        for t, target in enumerate(lanes):
            prev_active = self._prev_active[t]
            if prev_active is None:
                continue
            offset = t * self._block
            flats.append(proto._out_flat[target] + offset)
            deltas.append(self._delta_for(prev_active, target, lr_scale))
            self.train_steps[t] += 1
            predicted = self._prev_pred[t]
            if (config.punish_wrong and predicted is not None
                    and predicted != target):
                wrong = prev_active[proto.mask_out[prev_active, predicted]]
                if wrong.size:
                    punish_flats.append(
                        wrong * vocab + predicted + offset)
        if flats:
            flat = np.concatenate(flats)
            w_flat = self._w_flat
            if self._kern is not None:
                self._kern.learn_apply(w_flat, flat,
                                       np.concatenate(deltas), wm)
            else:
                vals = w_flat.take(flat)
                vals += np.concatenate(deltas)
                np.minimum(vals, wm, out=vals)
                np.maximum(vals, -wm, out=vals)
                w_flat[flat] = vals
        if punish_flats:
            wrong_flat = np.concatenate(punish_flats)
            w_flat = self._w_flat
            if self._kern is not None:
                self._kern.punish_apply(w_flat, wrong_flat, lr, wm)
            else:
                wvals = w_flat.take(wrong_flat)
                wvals -= lr
                np.maximum(wvals, -wm, out=wvals)
                w_flat[wrong_flat] = wvals

    def _readout_all(self, actives: list[np.ndarray]) -> np.ndarray:
        """(T, vocab) scores via one concatenated sparse accumulation."""
        vocab = self.vocab_size
        flats: list[np.ndarray] = []
        cols_list: list[np.ndarray] = []
        dense_lanes: list[int] = []
        for t, active in enumerate(actives):
            entry = self._readout_entry(active)
            if entry is None:
                dense_lanes.append(t)
                continue
            cols, flat = entry
            flats.append(flat + t * self._block)
            cols_list.append(cols + t * vocab)
        if flats:
            flat_all = np.concatenate(flats)
            cols_all = np.concatenate(cols_list)
            if self._kern is not None:
                scores = self._kern.readout_sparse(
                    self._w_flat, flat_all, cols_all)
            else:
                scores = np.bincount(cols_all,
                                     weights=self._w_flat.take(flat_all),
                                     minlength=self.n_lanes * vocab)
            scores = scores.reshape(self.n_lanes, vocab)
        else:
            scores = np.zeros((self.n_lanes, vocab))
        for t in dense_lanes:
            scores[t] = np.add.reduce(
                self.w_out[t].take(actives[t], axis=0), axis=0)
        return scores

    def _probabilities_all(self, scores: np.ndarray) -> np.ndarray:
        """Row-wise max-shifted softmax, same arithmetic as the scalar
        :meth:`SparseHebbianNetwork.probabilities` per row."""
        x = scores / self.prototype._temperature
        x -= x.max(axis=1, keepdims=True)
        np.exp(x, out=x)
        x /= x.sum(axis=1, keepdims=True)
        return x

    # ------------------------------------------------------------------
    # Lane extraction
    # ------------------------------------------------------------------
    def reset_state(self) -> None:
        """Clear every lane's sequence context (weights are kept)."""
        for t in range(self.n_lanes):
            self._prev_class[t] = None
            self._prev_active[t] = None
            self._prev_pred[t] = None
            self._last_active[t] = None
        self._last_scores = None
        self._last_probs = None

    def lane_network(self, lane: int) -> SparseHebbianNetwork:
        """Materialize lane ``lane`` as a standalone scalar network.

        The clone shares the fixed structures with the prototype (as
        ``SparseHebbianNetwork.clone`` does) and carries the lane's
        learned weights and sequence state, so stepping it continues the
        lane bit-identically.
        """
        net = self.prototype.clone()
        net.w_out = self.w_out[lane].copy()
        net._prev_class = self._prev_class[lane]
        net._prev_active = self._prev_active[lane]
        net._prev_pred = self._prev_pred[lane]
        net._last_active = self._last_active[lane]
        if self._last_scores is not None:
            net._last_scores = self._last_scores[lane].copy()
        else:
            net._last_scores = None
        if self._last_probs is not None:
            net._last_probs = self._last_probs[lane].copy()
        else:
            net._last_probs = None
        net.train_steps = int(self.train_steps[lane])
        return net
