"""Dense reference implementation of the sparse Hebbian network.

This module preserves the original masked-dense-array implementation of
:class:`~repro.nn.hebbian.SparseHebbianNetwork`: every projection is a
full numpy array, the recurrent term is a dense ``(k, hidden)`` gather
and sum, and Eq. 1 updates materialize full ``(hidden,)`` column
temporaries.  It exists for two reasons:

1. **Equivalence testing** — the CSR-style kernels in ``hebbian.py`` must
   produce bit-identical ``step()`` probabilities to this reference
   (``tests/nn/test_hebbian_equivalence.py``).
2. **Performance tracking** — the throughput benchmark
   (``benchmarks/test_perf_throughput.py``) measures the kernelized model
   against this reference on the same machine, which is how the
   before/after numbers in ``BENCH_PR1.json`` are produced.

The arithmetic is the dense mirror of the kernel math: the tie-break
jitter is folded into the feed-forward drive (added before the recurrent
term), and the recurrent normalization uses the simplified
``prev_active.size * connectivity_rec`` expected-hit count.  Keep the two
modules in lockstep when the model's math changes.
"""

from __future__ import annotations

import numpy as np

from .base import evaluate_sequence_probs
from .hebbian import HebbianConfig
from .layers import softmax


class DenseHebbianReference:
    """Dense masked-array Hebbian model (implements ``SequenceModel``)."""

    #: ``train_pairs`` IS the sequential ``train_pair`` loop.
    train_pairs_sequential_equivalent = True

    def __init__(self, config: HebbianConfig = HebbianConfig()) -> None:
        self.config = config
        self.vocab_size = config.vocab_size
        rng = np.random.default_rng(config.seed)
        v, n = config.vocab_size, config.hidden_dim
        if config.input_mode == "signature":
            in_rows = config.signature_dim
            self._signatures = np.stack([
                rng.choice(in_rows, size=config.signature_k, replace=False)
                for _ in range(v)])
        else:
            in_rows = v
            self._signatures = None
        self.mask_in = rng.random((in_rows, n)) < config.connectivity_in
        self.mask_rec = rng.random((n, n)) < config.connectivity_rec
        self.mask_out = rng.random((n, v)) < config.connectivity_out
        self.w_in = self.mask_in.astype(np.float64)
        if self._signatures is not None:
            degree = self.mask_in.sum(axis=0).astype(np.float64)
            p = config.signature_k / config.signature_dim
            self._sig_mu = degree * p
            self._sig_sigma = np.sqrt(np.maximum(degree * p * (1 - p), 1e-6))
        self.w_rec = self.mask_rec.astype(np.float64)
        self.w_out = np.zeros((n, v))
        self._tiebreak = rng.uniform(0.0, 1e-3, size=n)
        score_span = config.k_winners * config.connectivity_out * config.weight_max
        self._temperature = max(0.25, score_span / 8.0)

        self._prev_class: int | None = None
        self._prev_active: np.ndarray | None = None
        self._prev_pred: int | None = None
        self._last_scores: np.ndarray | None = None
        self._last_active: np.ndarray | None = None
        self.train_steps = 0

    # ------------------------------------------------------------------
    def hidden_code(self, input_class: int,
                    prev_active: np.ndarray | None = None) -> np.ndarray:
        if self._signatures is not None:
            hits = self.w_in[self._signatures[input_class]].sum(axis=0)
            z = (hits - self._sig_mu) / self._sig_sigma
            pre = (self.config.input_gain / 3.0) * z + self._tiebreak
        else:
            pre = self.config.input_gain * self.w_in[input_class] + self._tiebreak
        if prev_active is not None and prev_active.size:
            expected_hits = max(1.0, prev_active.size
                                * self.config.connectivity_rec)
            pre = pre + (self.config.recurrent_strength / expected_hits
                         ) * self.w_rec[prev_active].sum(axis=0)
        k = self.config.k_winners
        return np.argpartition(pre, -k)[-k:]

    def readout(self, active: np.ndarray) -> np.ndarray:
        return self.w_out[active].sum(axis=0)

    def probabilities(self, scores: np.ndarray) -> np.ndarray:
        return softmax(scores / self._temperature)

    # ------------------------------------------------------------------
    def step(self, input_class: int, train: bool = True,
             lr_scale: float = 1.0) -> np.ndarray:
        self._check_class(input_class)
        if train and self._prev_active is not None:
            self._learn(self._prev_active, input_class, self._prev_pred, lr_scale)
            if self.config.plastic_hidden and self._prev_class is not None:
                self._adapt_hidden(self._prev_class, self._prev_active, lr_scale)
            self.train_steps += 1

        active = self.hidden_code(input_class, self._prev_active)
        scores = self.readout(active)
        probs = self.probabilities(scores)

        self._prev_class = input_class
        self._prev_active = active
        self._prev_pred = int(np.argmax(scores))
        self._last_scores = scores
        self._last_active = active
        return probs

    def train_pair(self, input_class: int, target_class: int,
                   lr_scale: float = 1.0) -> float:
        self._check_class(input_class)
        self._check_class(target_class)
        active = self.hidden_code(input_class, prev_active=None)
        scores = self.readout(active)
        confidence = float(self.probabilities(scores)[target_class])
        self._learn(active, target_class, int(np.argmax(scores)), lr_scale)
        if self.config.plastic_hidden:
            self._adapt_hidden(input_class, active, lr_scale)
        return confidence

    def train_pairs(self, pairs: list[tuple[int, int]],
                    lr_scale: float = 1.0) -> None:
        for input_class, target_class in pairs:
            self.train_pair(input_class, target_class, lr_scale=lr_scale)

    def predict_rollout(self, width: int = 1, length: int = 1
                        ) -> list[list[tuple[int, float]]]:
        if self._last_scores is None:
            return []
        out: list[list[tuple[int, float]]] = []
        scores = self._last_scores
        active = self._last_active
        for _ in range(length):
            probs = self.probabilities(scores)
            top = np.argsort(probs)[::-1][:width]
            out.append([(int(k), float(probs[k])) for k in top])
            active = self.hidden_code(int(top[0]), active)
            scores = self.readout(active)
        return out

    def reset_state(self) -> None:
        self._prev_class = None
        self._prev_active = None
        self._prev_pred = None
        self._last_scores = None
        self._last_active = None

    def clone(self) -> "DenseHebbianReference":
        twin = DenseHebbianReference(self.config)
        twin.w_in = self.w_in.copy()
        twin.w_rec = self.w_rec.copy()
        twin.w_out = self.w_out.copy()
        twin._prev_class = self._prev_class
        twin._prev_pred = self._prev_pred
        for src, attr in ((self._prev_active, "_prev_active"),
                          (self._last_scores, "_last_scores"),
                          (self._last_active, "_last_active")):
            setattr(twin, attr, None if src is None else src.copy())
        twin.train_steps = self.train_steps
        return twin

    def evaluate_sequence(self, classes: list[int]) -> float:
        probs = evaluate_sequence_probs(self, classes)
        return float(probs.mean()) if probs.size else 0.0

    # ------------------------------------------------------------------
    def _learn(self, active: np.ndarray, target: int, predicted: int | None,
               lr_scale: float) -> None:
        lr = self.config.lr * lr_scale
        connected = self.mask_out[:, target]
        delta = np.where(connected, -lr * self.config.negative_scale, 0.0)
        active_connected = active[connected[active]]
        delta[active_connected] = lr
        column = self.w_out[:, target] + delta
        np.clip(column, -self.config.weight_max, self.config.weight_max, out=column)
        self.w_out[:, target] = column

        if self.config.punish_wrong and predicted is not None and predicted != target:
            wrong = active[self.mask_out[active, predicted]]
            self.w_out[wrong, predicted] = np.maximum(
                self.w_out[wrong, predicted] - lr, -self.config.weight_max)

    def _adapt_hidden(self, input_class: int, active: np.ndarray,
                      lr_scale: float) -> None:
        lr = 0.01 * self.config.lr * lr_scale
        rows = (self._signatures[input_class] if self._signatures is not None
                else np.array([input_class]))
        for row in rows:
            connected = active[self.mask_in[row, active]]
            self.w_in[row, connected] = np.minimum(
                self.w_in[row, connected] + lr, 2.0)

    @property
    def parameter_count(self) -> int:
        return int(self.mask_in.sum() + self.mask_rec.sum() + self.mask_out.sum())

    def _check_class(self, class_id: int) -> None:
        if not 0 <= class_id < self.vocab_size:
            raise ValueError(f"class {class_id} outside vocab [0, {self.vocab_size})")
