"""Small neural-network building blocks (numpy, from scratch).

Everything the LSTM prefetcher (§2.1) needs: parameter initialization,
softmax/cross-entropy, and a plain SGD optimizer with gradient clipping.
No autograd — gradients are derived by hand in ``lstm.py`` and verified
numerically in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def glorot(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def cross_entropy(probs: np.ndarray, targets: np.ndarray) -> float:
    """Mean cross-entropy of row-wise ``probs`` against integer ``targets``."""
    probs = np.atleast_2d(probs)
    targets = np.atleast_1d(targets)
    picked = probs[np.arange(len(targets)), targets]
    return float(-np.log(np.clip(picked, 1e-12, None)).mean())


def sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


@dataclass
class SGD:
    """Vanilla SGD with global-norm gradient clipping.

    Attributes:
        lr: Learning rate.
        clip_norm: Maximum global gradient L2 norm (0 disables clipping).
    """

    lr: float = 0.1
    clip_norm: float = 5.0
    steps: int = field(default=0, init=False)

    def apply(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray],
              lr_scale: float = 1.0) -> None:
        """Update ``params`` in place from ``grads``.

        ``lr_scale`` supports the paper's replay protocol (§3.2), which
        retrains old examples at a 0.1× smaller learning rate.
        """
        if self.clip_norm > 0:
            total = np.sqrt(sum(float((g * g).sum()) for g in grads.values()))
            if total > self.clip_norm:
                scale = self.clip_norm / (total + 1e-12)
                grads = {k: g * scale for k, g in grads.items()}
        step = self.lr * lr_scale
        for key, grad in grads.items():
            params[key] -= step * grad
        self.steps += 1
