"""The sequence-model interface shared by the LSTM and Hebbian learners.

Both prefetch models in the paper consume an online stream of encoded
miss classes and predict the class of the next miss.  The common interface
lets the CLS prefetcher, the replay machinery, and every experiment treat
them interchangeably.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class SequenceModel(Protocol):
    """An online next-class predictor over a fixed vocabulary."""

    vocab_size: int

    def step(self, input_class: int, train: bool = True,
             lr_scale: float = 1.0) -> np.ndarray:
        """Consume one observed class; return next-class probabilities.

        When ``train`` is true the model first trains on the transition
        (previous class -> ``input_class``), then advances its recurrent
        state through ``input_class``.  ``lr_scale`` scales the learning
        rate (the replay protocol of §3.2 uses 0.1).
        """
        ...

    def train_pair(self, input_class: int, target_class: int,
                   lr_scale: float = 1.0) -> float:
        """Train on one (input -> target) transition without touching the
        streaming state.  Returns the model's confidence on the target
        *before* the update.  Used by replay (§3.2)."""
        ...

    def train_pairs(self, pairs: list[tuple[int, int]],
                    lr_scale: float = 1.0) -> None:
        """Train on a batch of (input -> target) transitions (confidences
        are discarded).  Implementations whose batch provably reproduces
        the sequential :meth:`train_pair` loop bit for bit advertise it by
        setting ``train_pairs_sequential_equivalent = True`` (the Hebbian
        models do; the LSTM's is a true batched SGD step and does not).
        Replay routes through this only when the flag is set."""
        ...

    def predict_rollout(self, width: int = 1, length: int = 1
                        ) -> list[list[tuple[int, float]]]:
        """Predict ``length`` future steps; at each step return the top
        ``width`` (class, probability) candidates.  The rollout follows the
        greedy (top-1) path and must not mutate the streaming state."""
        ...

    def reset_state(self) -> None:
        """Clear the recurrent state (e.g., at a stream boundary)."""
        ...

    def clone(self) -> "SequenceModel":
        """Deep copy (weights + state); used by the availability protocol."""
        ...

    def evaluate_sequence(self, classes: list[int]) -> float:
        """Mean probability assigned to each next class of ``classes``,
        scored with frozen weights from a fresh state.  This is the
        "confidence" metric of Figure 3."""
        ...


def evaluate_sequence_probs(model: "SequenceModel", classes: list[int]) -> np.ndarray:
    """Per-transition confidence of ``model`` along ``classes``.

    Helper shared by implementations: rolls a *cloned* model (fresh state,
    frozen weights) over the sequence and records p(correct next class).
    """
    if len(classes) < 2:
        return np.zeros(0)
    probe = model.clone()
    probe.reset_state()
    probs = np.empty(len(classes) - 1)
    for i in range(len(classes) - 1):
        dist = probe.step(classes[i], train=False)
        probs[i] = dist[classes[i + 1]]
    return probs
