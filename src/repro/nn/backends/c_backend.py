"""C backend: kernels compiled with the system C compiler, loaded via cffi.

The kernel source below is embedded as a string, compiled on first use
into ``_build/reprokernels-<sha16>.so`` (hash of the source, so editing
a kernel transparently rebuilds), and loaded through cffi's ABI mode —
no build-time dependency, no setuptools plumbing, and the only runtime
requirements are ``cffi`` (a numpy build dependency, so effectively
always present) and a ``cc``/``gcc`` on PATH.  Any failure along that
path — no compiler, compile error, dlopen error — makes the backend
report unavailable; nothing raises out of :func:`available`.

Bit-identity: every kernel reproduces its numpy counterpart's exact
arithmetic and observable state transitions (see the per-function notes
in the C source).  The compile flags are part of that contract:
``-fno-fast-math -ffp-contract=off`` forbid FMA contraction and
reassociation, so ``a + s * b`` rounds twice exactly like numpy's
multiply-then-add.  k-WTA selection (``argpartition``) and the softmax
stay in numpy under every backend: partial-selection tie order is
implementation-defined and libm's ``exp`` differs from numpy's SIMD
``exp`` in the last ulp, so compiling either would break bit-identity.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
from contextlib import suppress
from pathlib import Path
from typing import Any, Callable

import numpy as np

_SOURCE = r"""
/* Compiled hot-path kernels for the repro simulator and Hebbian network.
 *
 * Bit-identity contract: every function reproduces the exact arithmetic
 * and observable state transitions of its numpy counterpart (see
 * repro/memsim/pagecache.py and repro/nn/hebbian.py).  Must be compiled
 * with -fno-fast-math -ffp-contract=off so the compiler cannot fuse
 * a + s*b into one fma (which rounds once where numpy rounds twice) or
 * reassociate sums.
 */

#include <stdint.h>
#include <string.h>

typedef long long i64;
typedef unsigned char u8;

/* PageCache's free-slot stamp sentinel: np.iinfo(np.int64).max. */
#define FREE_STAMP 9223372036854775807LL

#define VICTIM_BATCH 64

/* ------------------------------------------------------------------ */
/* Simulator kernels                                                  */
/* ------------------------------------------------------------------ */

/* PageCache.first_nonresident: first index in [start, stop) whose page
 * (compact id) has no slot, or stop.  soc is the cid-indexed slot table
 * (-1 = non-resident). */
i64 rk_first_nonresident(const i64 *soc, const i64 *cids, i64 start,
                         i64 stop)
{
    for (i64 i = start; i < stop; i++)
        if (soc[cids[i]] < 0)
            return i;
    return stop;
}

/* PageCache.miss_run_length: length of the bulk-fillable miss run at
 * `start` (a known miss): extends while pages are non-resident and
 * mutually distinct, scanning up to `limit` (the caller applies the
 * capacity/scan-chunk clamp).  The numpy version cuts at the earliest
 * second occurrence of any page; a linear scan that stops at the first
 * repeat of an already-seen cid finds exactly that position.  scratch
 * (one entry per universe cid) + stamp give O(run) seen-set membership:
 * scratch[cid] == stamp  <=>  cid seen in this run. */
i64 rk_miss_run_length(const i64 *soc, const i64 *cids, i64 start,
                       i64 limit, i64 *scratch, i64 stamp)
{
    i64 i = start;
    for (; i < limit; i++) {
        i64 cid = cids[i];
        if (soc[cid] >= 0 || scratch[cid] == stamp)
            break;
        scratch[cid] = stamp;
    }
    return i - start;
}

/* The batched engine's hit walk: replay demand accesses from `start`,
 * stamping LRU recency per access, until the first non-resident access
 * or `stop`; returns the stop index.  Per-access semantics of
 * PageCache.access() restricted to hits (the caller guarantees no
 * landing falls inside [start, stop)).
 *
 * state: [0]=clock  [1]=n_undemanded  [2]=prefetch_hits  [3]=hits
 * ([2] and [3] accumulate; the caller flushes them into CacheStats). */
i64 rk_hit_walk(const i64 *soc, const i64 *cids, const u8 *stores,
                i64 *last_use, u8 *dirty, u8 *undemanded,
                i64 start, i64 stop, i64 *state)
{
    i64 clock = state[0];
    i64 n_und = state[1];
    i64 pf_hits = state[2];
    i64 hits = state[3];
    i64 i = start;
    for (; i < stop; i++) {
        i64 slot = soc[cids[i]];
        if (slot < 0)
            break;
        last_use[slot] = clock++;
        if (stores[i])
            dirty[slot] = 1;
        if (n_und && undemanded[slot]) {
            undemanded[slot] = 0;
            n_und--;
            pf_hits++;
        }
        hits++;
    }
    state[0] = clock;
    state[1] = n_und;
    state[2] = pf_hits;
    state[3] = hits;
    return i;
}

/* Full null-prefetcher replay of accesses [start, stop): per-access
 * hit/miss with exact LRU eviction — the scalar reference algorithm at
 * C speed.  The null prefetcher never issues, so no page is ever
 * undemanded and the out-of-universe dict overlay stays empty; both are
 * provably untouched here.
 *
 * Victim selection mirrors PageCache._refill_victims' lazy-LRU batch:
 * snapshot the VICTIM_BATCH smallest stamps (ascending), drain with a
 * stamp-match check.  A matching entry is the true LRU minimum — every
 * slot outside the snapshot was younger at snapshot time and stamps
 * only grow (or become FREE_STAMP) — so the victim *choice* per miss is
 * exactly the reference's, regardless of batch boundaries.
 *
 * state: [0]=clock [1]=n_resident [2]=free_n [3]=miss_buf_count
 *        [4]=hits [5]=demand_misses [6]=writebacks
 * ([4..6] accumulate; the caller flushes them into CacheStats). */
void rk_null_run(const i64 *cids, const i64 *pages, const u8 *stores,
                 i64 *soc, i64 *page_of_slot, i64 *last_use, u8 *dirty,
                 i64 *cid_of_slot, i64 *free_slots, i64 capacity,
                 i64 start, i64 stop, i64 *miss_idx, i64 record,
                 i64 *state)
{
    i64 clock = state[0];
    i64 n_res = state[1];
    i64 free_n = state[2];
    i64 miss_n = state[3];
    i64 hits = state[4];
    i64 misses = state[5];
    i64 wbacks = state[6];
    i64 vstamp[VICTIM_BATCH];
    i64 vslot[VICTIM_BATCH];
    i64 vn = 0, vi = 0;

    for (i64 i = start; i < stop; i++) {
        i64 cid = cids[i];
        i64 slot = soc[cid];
        if (slot >= 0) {
            last_use[slot] = clock++;
            if (stores[i])
                dirty[slot] = 1;
            hits++;
            continue;
        }
        misses++;
        if (record)
            miss_idx[miss_n] = i;
        miss_n++;
        if (free_n > 0) {
            slot = free_slots[--free_n];
        } else {
            for (;;) {
                if (vi >= vn) {
                    /* Refill: partial selection of the VICTIM_BATCH
                     * smallest stamps, kept sorted ascending by
                     * insertion (free slots carry FREE_STAMP and the
                     * cache is full here, so only live stamps enter). */
                    vn = 0;
                    for (i64 s = 0; s < capacity; s++) {
                        i64 st = last_use[s];
                        i64 p;
                        if (vn == VICTIM_BATCH && st >= vstamp[vn - 1])
                            continue;
                        p = (vn < VICTIM_BATCH) ? vn : vn - 1;
                        while (p > 0 && vstamp[p - 1] > st) {
                            vstamp[p] = vstamp[p - 1];
                            vslot[p] = vslot[p - 1];
                            p--;
                        }
                        vstamp[p] = st;
                        vslot[p] = s;
                        if (vn < VICTIM_BATCH)
                            vn++;
                    }
                    vi = 0;
                }
                {
                    i64 st = vstamp[vi];
                    i64 vs = vslot[vi];
                    vi++;
                    if (st != FREE_STAMP && last_use[vs] == st) {
                        slot = vs;
                        break;
                    }
                }
            }
            if (dirty[slot]) {
                wbacks++;
                dirty[slot] = 0;
            }
            soc[cid_of_slot[slot]] = -1;
            cid_of_slot[slot] = -1;
            last_use[slot] = FREE_STAMP;
            n_res--;
        }
        page_of_slot[slot] = pages[i];
        last_use[slot] = clock++;
        dirty[slot] = stores[i] ? 1 : 0;
        soc[cid] = slot;
        cid_of_slot[slot] = cid;
        n_res++;
    }
    state[0] = clock;
    state[1] = n_res;
    state[2] = free_n;
    state[3] = miss_n;
    state[4] = hits;
    state[5] = misses;
    state[6] = wbacks;
}

/* ------------------------------------------------------------------ */
/* Fleet (tenant-axis) simulator kernels                              */
/* ------------------------------------------------------------------ */

/* The fleet engine's lockstep hit walk: rk_hit_walk per tenant lane
 * over the (tenant, slot) matrices of FleetPageCache.  For each lane t
 * in lanes[0..n_lanes), replays demand accesses from pos[t] until the
 * first non-resident access or limit[t], with per-access semantics of
 * the scalar cache (LRU stamp, dirty, undemanded clear + prefetch hit).
 * su/sl/ss are the row strides of the (T, U) slot table, the (R, L)
 * trace matrices, and the (T, S) slot matrices respectively.  Trace
 * rows are indirected through trace_row (lanes replaying the same
 * trace share one packed row).  Stats are written straight into the
 * cache's per-lane counter vectors, so no state flush is needed after
 * the call. */
void rk_fleet_hit_walk(const i64 *lanes, i64 n_lanes,
                       const i64 *trace_row,
                       const i64 *soc, i64 su,
                       const i64 *cids, const u8 *stores, i64 sl,
                       i64 *last_use, u8 *dirty, u8 *undemanded, i64 ss,
                       i64 *pos, const i64 *limit,
                       i64 *clock, i64 *n_und, i64 *pf_hits, i64 *hits,
                       i64 *accesses)
{
    for (i64 k = 0; k < n_lanes; k++) {
        i64 t = lanes[k];
        i64 r = trace_row[t];
        const i64 *l_soc = soc + t * su;
        const i64 *l_cids = cids + r * sl;
        const u8 *l_stores = stores + r * sl;
        i64 *l_lu = last_use + t * ss;
        u8 *l_dirty = dirty + t * ss;
        u8 *l_und = undemanded + t * ss;
        i64 ck = clock[t];
        i64 nu = n_und[t];
        i64 ph = pf_hits[t];
        i64 h = hits[t];
        i64 start = pos[t];
        i64 stop = limit[t];
        i64 i = start;
        for (; i < stop; i++) {
            i64 slot = l_soc[l_cids[i]];
            if (slot < 0)
                break;
            l_lu[slot] = ck++;
            if (l_stores[i])
                l_dirty[slot] = 1;
            if (nu && l_und[slot]) {
                l_und[slot] = 0;
                nu--;
                ph++;
            }
            h++;
        }
        accesses[t] += i - start;
        pos[t] = i;
        clock[t] = ck;
        n_und[t] = nu;
        pf_hits[t] = ph;
        hits[t] = h;
    }
}

/* Fleet null replay: rk_null_run per tenant lane, each lane driven from
 * pos[t] to completion (n_len[t]) in this one call.  Slot allocation is
 * the fleet cache's virgin-ascending scheme (below capacity the next
 * slot is n_resident; at capacity the evicted slot is reused), which is
 * unobservable vs the free list — see fleet_cache.py.  The per-lane
 * victim snapshot only scans slots [0, capacity[t]): higher slots can
 * never have been occupied.  Trace rows are indirected through
 * trace_row (shared packed rows); miss indices stay lane-indexed and
 * land in the lane's row of the (T, L) miss_idx matrix with count
 * miss_n[t]. */
void rk_fleet_null_run(const i64 *lanes, i64 n_lanes,
                       const i64 *trace_row,
                       i64 *soc, i64 su,
                       const i64 *cids, const i64 *pages, const u8 *stores,
                       i64 sl,
                       i64 *page_of_slot, i64 *last_use, u8 *dirty,
                       i64 *cid_of_slot, i64 ss,
                       const i64 *capacity, const i64 *n_len,
                       i64 *pos, i64 *clock, i64 *n_resident,
                       i64 *hits, i64 *demand_misses, i64 *writebacks,
                       i64 *accesses, i64 *miss_idx, i64 *miss_n,
                       i64 record)
{
    for (i64 k = 0; k < n_lanes; k++) {
        i64 t = lanes[k];
        i64 r = trace_row[t];
        i64 *l_soc = soc + t * su;
        const i64 *l_cids = cids + r * sl;
        const i64 *l_pages = pages + r * sl;
        const u8 *l_stores = stores + r * sl;
        i64 *l_pg = page_of_slot + t * ss;
        i64 *l_lu = last_use + t * ss;
        u8 *l_dirty = dirty + t * ss;
        i64 *l_cos = cid_of_slot + t * ss;
        i64 *l_miss = miss_idx + t * sl;
        i64 cap = capacity[t];
        i64 ck = clock[t];
        i64 n_res = n_resident[t];
        i64 mn = miss_n[t];
        i64 h = hits[t];
        i64 misses = demand_misses[t];
        i64 wbacks = writebacks[t];
        i64 vstamp[VICTIM_BATCH];
        i64 vslot[VICTIM_BATCH];
        i64 vn = 0, vi = 0;
        i64 start = pos[t];
        i64 stop = n_len[t];

        for (i64 i = start; i < stop; i++) {
            i64 cid = l_cids[i];
            i64 slot = l_soc[cid];
            if (slot >= 0) {
                l_lu[slot] = ck++;
                if (l_stores[i])
                    l_dirty[slot] = 1;
                h++;
                continue;
            }
            misses++;
            if (record)
                l_miss[mn] = i;
            mn++;
            if (n_res < cap) {
                slot = n_res;
            } else {
                for (;;) {
                    if (vi >= vn) {
                        vn = 0;
                        for (i64 s = 0; s < cap; s++) {
                            i64 st = l_lu[s];
                            i64 p;
                            if (vn == VICTIM_BATCH && st >= vstamp[vn - 1])
                                continue;
                            p = (vn < VICTIM_BATCH) ? vn : vn - 1;
                            while (p > 0 && vstamp[p - 1] > st) {
                                vstamp[p] = vstamp[p - 1];
                                vslot[p] = vslot[p - 1];
                                p--;
                            }
                            vstamp[p] = st;
                            vslot[p] = s;
                            if (vn < VICTIM_BATCH)
                                vn++;
                        }
                        vi = 0;
                    }
                    {
                        i64 st = vstamp[vi];
                        i64 vs = vslot[vi];
                        vi++;
                        if (st != FREE_STAMP && l_lu[vs] == st) {
                            slot = vs;
                            break;
                        }
                    }
                }
                if (l_dirty[slot]) {
                    wbacks++;
                    l_dirty[slot] = 0;
                }
                l_soc[l_cos[slot]] = -1;
                l_cos[slot] = -1;
                l_lu[slot] = FREE_STAMP;
                n_res--;
            }
            l_pg[slot] = l_pages[i];
            l_lu[slot] = ck++;
            l_dirty[slot] = l_stores[i] ? 1 : 0;
            l_soc[cid] = slot;
            l_cos[slot] = cid;
            n_res++;
        }
        accesses[t] += stop - start;
        pos[t] = stop;
        clock[t] = ck;
        n_resident[t] = n_res;
        miss_n[t] = mn;
        hits[t] = h;
        demand_misses[t] = misses;
        writebacks[t] = wbacks;
    }
}

/* ------------------------------------------------------------------ */
/* Hebbian kernels                                                    */
/* ------------------------------------------------------------------ */

/* hidden_code's recurrent drive: histogram the padded out-neighbor rows
 * of the active set, then pre[j] += scale * count[j].  counts has
 * n + 1 bins; the padding sentinel (index n) lands in the last bin and
 * is never read back — exactly np.bincount(rec_pad[active].ravel())
 * truncated to [:n].  Multiply-then-add rounds like numpy's
 * `pre += scale * counts` (two roundings; no fma under
 * -ffp-contract=off). */
void rk_pre_accumulate(double *pre, const i64 *rec_pad, i64 width,
                       const i64 *prev_active, i64 k, double scale,
                       i64 n, i64 *counts)
{
    memset(counts, 0, (size_t)(n + 1) * sizeof(i64));
    for (i64 r = 0; r < k; r++) {
        const i64 *row = rec_pad + prev_active[r] * width;
        for (i64 t = 0; t < width; t++)
            counts[row[t]]++;
    }
    for (i64 j = 0; j < n; j++)
        pre[j] += scale * (double)counts[j];
}

/* readout's sparse path: out[cols[t]] += w_flat[flat[t]] in index
 * order — np.bincount(cols, weights=w_flat.take(flat)) accumulates its
 * weights in exactly this input order onto a zeroed output. */
void rk_readout_sparse(const double *w_flat, const i64 *flat,
                       const i64 *cols, i64 m, double *out)
{
    for (i64 t = 0; t < m; t++)
        out[cols[t]] += w_flat[flat[t]];
}

/* _learn / train_pairs weight application: w[flat] = clip(w[flat] +
 * delta, +-wm).  The flat offsets within one call are distinct (one
 * connected column, or disjoint columns of distinct targets), so the
 * in-place update equals numpy's gather -> add -> clip -> scatter.
 * min-then-max ordering matches np.minimum/np.maximum. */
void rk_learn_apply(double *w_flat, const i64 *flat, const double *delta,
                    i64 m, double wm)
{
    for (i64 t = 0; t < m; t++) {
        double v = w_flat[flat[t]] + delta[t];
        if (v > wm)
            v = wm;
        if (v < -wm)
            v = -wm;
        w_flat[flat[t]] = v;
    }
}

/* The error-driven depression term: subtract lr, clip below only. */
void rk_punish_apply(double *w_flat, const i64 *flat, i64 m, double lr,
                     double wm)
{
    for (i64 t = 0; t < m; t++) {
        double v = w_flat[flat[t]] - lr;
        if (v < -wm)
            v = -wm;
        w_flat[flat[t]] = v;
    }
}
"""

_CDEF = """
long long rk_first_nonresident(const long long *soc, const long long *cids,
                               long long start, long long stop);
long long rk_miss_run_length(const long long *soc, const long long *cids,
                             long long start, long long limit,
                             long long *scratch, long long stamp);
long long rk_hit_walk(const long long *soc, const long long *cids,
                      const unsigned char *stores, long long *last_use,
                      unsigned char *dirty, unsigned char *undemanded,
                      long long start, long long stop, long long *state);
void rk_null_run(const long long *cids, const long long *pages,
                 const unsigned char *stores, long long *soc,
                 long long *page_of_slot, long long *last_use,
                 unsigned char *dirty, long long *cid_of_slot,
                 long long *free_slots, long long capacity,
                 long long start, long long stop, long long *miss_idx,
                 long long record, long long *state);
void rk_fleet_hit_walk(const long long *lanes, long long n_lanes,
                       const long long *trace_row,
                       const long long *soc, long long su,
                       const long long *cids, const unsigned char *stores,
                       long long sl, long long *last_use,
                       unsigned char *dirty, unsigned char *undemanded,
                       long long ss, long long *pos, const long long *limit,
                       long long *clock, long long *n_und,
                       long long *pf_hits, long long *hits,
                       long long *accesses);
void rk_fleet_null_run(const long long *lanes, long long n_lanes,
                       const long long *trace_row,
                       long long *soc, long long su,
                       const long long *cids, const long long *pages,
                       const unsigned char *stores, long long sl,
                       long long *page_of_slot, long long *last_use,
                       unsigned char *dirty, long long *cid_of_slot,
                       long long ss, const long long *capacity,
                       const long long *n_len, long long *pos,
                       long long *clock, long long *n_resident,
                       long long *hits, long long *demand_misses,
                       long long *writebacks, long long *accesses,
                       long long *miss_idx, long long *miss_n,
                       long long record);
void rk_pre_accumulate(double *pre, const long long *rec_pad,
                       long long width, const long long *prev_active,
                       long long k, double scale, long long n,
                       long long *counts);
void rk_readout_sparse(const double *w_flat, const long long *flat,
                       const long long *cols, long long m, double *out);
void rk_learn_apply(double *w_flat, const long long *flat,
                    const double *delta, long long m, double wm);
void rk_punish_apply(double *w_flat, const long long *flat, long long m,
                     double lr, double wm);
"""

#: Bit-identity depends on these: no fast-math value transformations and
#: no FMA contraction (fuse = one rounding, numpy = two).
_CFLAGS = ("-O2", "-fPIC", "-shared", "-fno-fast-math", "-ffp-contract=off")

_ffi: Any | None = None
_lib: Any | None = None
_load_failed = False


def _build_dir() -> Path:
    return Path(__file__).resolve().parent / "_build"


def _compile(out: Path) -> bool:
    cc = shutil.which("cc") or shutil.which("gcc")
    if cc is None:
        return False
    src_name = so_name = None
    try:
        out.parent.mkdir(parents=True, exist_ok=True)
        fd, src_name = tempfile.mkstemp(suffix=".c", dir=out.parent)
        with os.fdopen(fd, "w") as handle:
            handle.write(_SOURCE)
        fd, so_name = tempfile.mkstemp(suffix=".so.tmp", dir=out.parent)
        os.close(fd)
        proc = subprocess.run([cc, *_CFLAGS, "-o", so_name, src_name],
                              capture_output=True, timeout=120, check=False)
        if proc.returncode != 0:
            return False
        # Atomic publish: concurrent processes race to an identical file.
        os.replace(so_name, out)
        so_name = None
        return True
    except (OSError, subprocess.SubprocessError):
        return False
    finally:
        for leftover in (src_name, so_name):
            if leftover is not None:
                with suppress(OSError):
                    os.unlink(leftover)


def _load() -> tuple[Any, Any] | None:  # repro-lint: zone=init
    """(ffi, lib) or None; compile failures latch to unavailable."""
    global _ffi, _lib, _load_failed
    if _lib is not None:
        return _ffi, _lib
    if _load_failed:
        return None
    try:
        from cffi import FFI
    except ImportError:
        _load_failed = True
        return None
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    out = _build_dir() / f"reprokernels-{digest}.so"
    if not out.exists() and not _compile(out):
        _load_failed = True
        return None
    try:
        ffi = FFI()
        ffi.cdef(_CDEF)
        lib = ffi.dlopen(str(out))
    except (OSError, Exception) as exc:  # cffi raises its own error types
        del exc
        _load_failed = True
        return None
    _ffi, _lib = ffi, lib
    return _ffi, _lib


def available() -> bool:
    return _load() is not None


def _i64(ffi: Any, arr: np.ndarray) -> Any:
    return ffi.from_buffer("long long[]", arr)


def _u8(ffi: Any, arr: np.ndarray) -> Any:
    return ffi.from_buffer("unsigned char[]", arr.view(np.uint8))


def _f64(ffi: Any, arr: np.ndarray) -> Any:
    return ffi.from_buffer("double[]", arr)


class CSimKernels:
    """Simulator kernel bundle (one per ``simulate()`` call).

    ``first_nonresident``/``miss_run_length`` are plain calls (used by
    ``PageCache`` when kernels are attached); the engine inner loops use
    the ``bind_*`` closures, which capture the run-stable arrays' buffer
    pointers once so the per-span/per-segment call passes only scalars.
    """

    name = "c"

    def __init__(self, ffi: Any, lib: Any) -> None:
        self._ffi = ffi
        self._lib = lib

    def first_nonresident(self, soc: np.ndarray, cids: np.ndarray,
                          start: int, stop: int) -> int:
        ffi = self._ffi
        return int(self._lib.rk_first_nonresident(
            _i64(ffi, soc), _i64(ffi, cids), start, stop))

    def miss_run_length(self, soc: np.ndarray, cids: np.ndarray, start: int,
                        limit: int, scratch: np.ndarray, stamp: int) -> int:
        ffi = self._ffi
        return int(self._lib.rk_miss_run_length(
            _i64(ffi, soc), _i64(ffi, cids), start, limit,
            _i64(ffi, scratch), stamp))

    def bind_hit_walk(self, *, soc: np.ndarray, cids: np.ndarray,
                      stores: np.ndarray, last_use: np.ndarray,
                      dirty: np.ndarray, undemanded: np.ndarray,
                      state: np.ndarray) -> Callable[[int, int], int]:
        ffi = self._ffi
        fn = self._lib.rk_hit_walk
        p_soc, p_cids, p_lu, p_state = (_i64(ffi, a) for a in
                                        (soc, cids, last_use, state))
        p_stores, p_dirty, p_und = (_u8(ffi, a) for a in
                                    (stores, dirty, undemanded))

        def run(start: int, stop: int) -> int:
            return int(fn(p_soc, p_cids, p_stores, p_lu, p_dirty, p_und,
                          start, stop, p_state))

        return run

    def bind_null_run(self, *, cids: np.ndarray, pages: np.ndarray,
                      stores: np.ndarray, soc: np.ndarray,
                      page_of_slot: np.ndarray, last_use: np.ndarray,
                      dirty: np.ndarray, cid_of_slot: np.ndarray,
                      free_slots: np.ndarray, capacity: int,
                      miss_idx: np.ndarray,
                      state: np.ndarray) -> Callable[[int, int, int], None]:
        ffi = self._ffi
        fn = self._lib.rk_null_run
        (p_cids, p_pages, p_soc, p_pos, p_lu, p_cos, p_free, p_miss,
         p_state) = (_i64(ffi, a) for a in
                     (cids, pages, soc, page_of_slot, last_use, cid_of_slot,
                      free_slots, miss_idx, state))
        p_stores, p_dirty = _u8(ffi, stores), _u8(ffi, dirty)

        def run(start: int, stop: int, record: int) -> None:
            fn(p_cids, p_pages, p_stores, p_soc, p_pos, p_lu, p_dirty,
               p_cos, p_free, capacity, start, stop, p_miss, record,
               p_state)

        return run

    def bind_fleet_hit_walk(self, *, lanes_buf: np.ndarray,
                            trace_row: np.ndarray, soc: np.ndarray,
                            cids: np.ndarray, stores: np.ndarray,
                            last_use: np.ndarray, dirty: np.ndarray,
                            undemanded: np.ndarray, pos: np.ndarray,
                            limit: np.ndarray, clock: np.ndarray,
                            n_undemanded: np.ndarray,
                            prefetch_hits: np.ndarray, hits: np.ndarray,
                            accesses: np.ndarray) -> Callable[[int], None]:
        """Tenant-axis hit walk over FleetPageCache's (T, slot) matrices.

        The returned closure runs the walk for the first ``n_lanes``
        entries of ``lanes_buf`` (the engine writes the active-lane
        prefix before each call).  Row strides come from the 2-D array
        shapes; lane ``t`` reads trace row ``trace_row[t]``; stats land
        directly in the per-lane counter vectors.
        """
        ffi = self._ffi
        fn = self._lib.rk_fleet_hit_walk
        su = int(soc.shape[1])
        sl = int(cids.shape[1])
        ss = int(last_use.shape[1])
        (p_lanes, p_row, p_soc, p_cids, p_lu, p_pos, p_limit, p_clock,
         p_nund, p_pf, p_hits, p_acc) = (_i64(ffi, a) for a in
                                         (lanes_buf, trace_row, soc, cids,
                                          last_use, pos, limit, clock,
                                          n_undemanded, prefetch_hits,
                                          hits, accesses))
        p_stores, p_dirty, p_und = (_u8(ffi, a) for a in
                                    (stores, dirty, undemanded))

        def run(n_lanes: int) -> None:
            fn(p_lanes, n_lanes, p_row, p_soc, su, p_cids, p_stores, sl,
               p_lu, p_dirty, p_und, ss, p_pos, p_limit, p_clock, p_nund,
               p_pf, p_hits, p_acc)

        return run

    def bind_fleet_null_run(self, *, lanes_buf: np.ndarray,
                            trace_row: np.ndarray, soc: np.ndarray,
                            cids: np.ndarray, pages: np.ndarray,
                            stores: np.ndarray, page_of_slot: np.ndarray,
                            last_use: np.ndarray, dirty: np.ndarray,
                            cid_of_slot: np.ndarray, capacity: np.ndarray,
                            n_len: np.ndarray, pos: np.ndarray,
                            clock: np.ndarray, n_resident: np.ndarray,
                            hits: np.ndarray, demand_misses: np.ndarray,
                            writebacks: np.ndarray, accesses: np.ndarray,
                            miss_idx: np.ndarray,
                            miss_n: np.ndarray) -> Callable[[int, int], None]:
        """Tenant-axis null replay: each listed lane runs to completion."""
        ffi = self._ffi
        fn = self._lib.rk_fleet_null_run
        su = int(soc.shape[1])
        sl = int(cids.shape[1])
        ss = int(last_use.shape[1])
        (p_lanes, p_row, p_soc, p_cids, p_pages, p_pg, p_lu, p_cos, p_cap,
         p_n, p_pos, p_clock, p_nres, p_hits, p_miss, p_wb, p_acc, p_midx,
         p_mn) = (_i64(ffi, a) for a in
                  (lanes_buf, trace_row, soc, cids, pages, page_of_slot,
                   last_use, cid_of_slot, capacity, n_len, pos, clock,
                   n_resident, hits, demand_misses, writebacks, accesses,
                   miss_idx, miss_n))
        p_stores, p_dirty = _u8(ffi, stores), _u8(ffi, dirty)

        def run(n_lanes: int, record: int) -> None:
            fn(p_lanes, n_lanes, p_row, p_soc, su, p_cids, p_pages,
               p_stores, sl, p_pg, p_lu, p_dirty, p_cos, ss, p_cap, p_n,
               p_pos, p_clock, p_nres, p_hits, p_miss, p_wb, p_acc, p_midx,
               p_mn, record)

        return run


class CHebbianKernels:
    """Hebbian kernel bundle bound to one network's fixed structures.

    Clones share the instance (they share the fixed ``rec_pad``); the
    ``counts`` scratch is safe to share because every ``pre_accumulate``
    call fully rewrites it and use is single-threaded.
    """

    name = "c"

    def __init__(self, ffi: Any, lib: Any, rec_pad: np.ndarray,
                 hidden_dim: int, vocab_size: int) -> None:
        self._ffi = ffi
        self._lib = lib
        self._rec_pad = np.ascontiguousarray(rec_pad, dtype=np.int64)
        self._width = int(self._rec_pad.shape[1])
        self._n = hidden_dim
        self._vocab = vocab_size
        self._counts = np.zeros(hidden_dim + 1, dtype=np.int64)
        self._p_rec = _i64(ffi, self._rec_pad)
        self._p_counts = _i64(ffi, self._counts)

    def pre_accumulate(self, pre: np.ndarray, prev_active: np.ndarray,
                       scale: float) -> None:
        ffi = self._ffi
        active = np.ascontiguousarray(prev_active, dtype=np.int64)
        self._lib.rk_pre_accumulate(
            _f64(ffi, pre), self._p_rec, self._width, _i64(ffi, active),
            active.size, scale, self._n, self._p_counts)

    def readout_sparse(self, w_flat: np.ndarray, flat: np.ndarray,
                       cols: np.ndarray) -> np.ndarray:
        ffi = self._ffi
        out = np.zeros(self._vocab)
        self._lib.rk_readout_sparse(_f64(ffi, w_flat), _i64(ffi, flat),
                                    _i64(ffi, cols), flat.size,
                                    _f64(ffi, out))
        return out

    def learn_apply(self, w_flat: np.ndarray, flat: np.ndarray,
                    delta: np.ndarray, wm: float) -> None:
        ffi = self._ffi
        self._lib.rk_learn_apply(_f64(ffi, w_flat), _i64(ffi, flat),
                                 _f64(ffi, delta), flat.size, wm)

    def punish_apply(self, w_flat: np.ndarray, flat: np.ndarray, lr: float,
                     wm: float) -> None:
        ffi = self._ffi
        self._lib.rk_punish_apply(_f64(ffi, w_flat), _i64(ffi, flat),
                                  flat.size, lr, wm)


def make_sim_kernels() -> CSimKernels:
    loaded = _load()
    if loaded is None:
        raise RuntimeError("C backend is not available")
    return CSimKernels(*loaded)


def make_hebbian_kernels(*, rec_pad: np.ndarray, hidden_dim: int,
                         vocab_size: int) -> CHebbianKernels:
    loaded = _load()
    if loaded is None:
        raise RuntimeError("C backend is not available")
    return CHebbianKernels(*loaded, rec_pad=rec_pad, hidden_dim=hidden_dim,
                           vocab_size=vocab_size)
