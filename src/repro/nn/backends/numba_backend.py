"""Numba backend: ``@njit`` mirrors of the C kernels.

Installed via the optional ``repro[numba]`` extra and exercised by the
dedicated CI leg; on numpy-only installs the import guard below makes
:func:`available` return False and the registry falls back.

The kernel bodies are line-for-line ports of the C source in
``c_backend.py`` (see the bit-identity notes there).  Numba's default
``fastmath=False`` mode neither contracts ``a + s * b`` into an fma nor
reassociates sums, so the float arithmetic rounds exactly like numpy's.
``cache=False`` everywhere: on-disk caching trades a few hundred ms of
first-call JIT for a cache-invalidation class of bug we don't want in an
equivalence-tested backend.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

try:
    from numba import njit

    _AVAILABLE = True
except ImportError:  # numpy-only install: registry falls back
    njit = None
    _AVAILABLE = False


def available() -> bool:
    return _AVAILABLE


#: PageCache's free-slot stamp sentinel.
_FREE_STAMP = np.iinfo(np.int64).max

_VICTIM_BATCH = 64


if _AVAILABLE:  # pragma: no cover - exercised only in the numba CI leg

    @njit(cache=False)
    def _first_nonresident(soc, cids, start, stop):
        for i in range(start, stop):
            if soc[cids[i]] < 0:
                return i
        return stop

    @njit(cache=False)
    def _miss_run_length(soc, cids, start, limit, scratch, stamp):
        i = start
        while i < limit:
            cid = cids[i]
            if soc[cid] >= 0 or scratch[cid] == stamp:
                break
            scratch[cid] = stamp
            i += 1
        return i - start

    @njit(cache=False)
    def _hit_walk(soc, cids, stores, last_use, dirty, undemanded,
                  start, stop, state):
        clock = state[0]
        n_und = state[1]
        pf_hits = state[2]
        hits = state[3]
        i = start
        while i < stop:
            slot = soc[cids[i]]
            if slot < 0:
                break
            last_use[slot] = clock
            clock += 1
            if stores[i]:
                dirty[slot] = True
            if n_und and undemanded[slot]:
                undemanded[slot] = False
                n_und -= 1
                pf_hits += 1
            hits += 1
            i += 1
        state[0] = clock
        state[1] = n_und
        state[2] = pf_hits
        state[3] = hits
        return i

    @njit(cache=False)
    def _null_run(cids, pages, stores, soc, page_of_slot, last_use, dirty,
                  cid_of_slot, free_slots, capacity, start, stop, miss_idx,
                  record, state):
        clock = state[0]
        n_res = state[1]
        free_n = state[2]
        miss_n = state[3]
        hits = state[4]
        misses = state[5]
        wbacks = state[6]
        vstamp = np.empty(_VICTIM_BATCH, dtype=np.int64)
        vslot = np.empty(_VICTIM_BATCH, dtype=np.int64)
        vn = 0
        vi = 0
        for i in range(start, stop):
            cid = cids[i]
            slot = soc[cid]
            if slot >= 0:
                last_use[slot] = clock
                clock += 1
                if stores[i]:
                    dirty[slot] = True
                hits += 1
                continue
            misses += 1
            if record:
                miss_idx[miss_n] = i
            miss_n += 1
            if free_n > 0:
                free_n -= 1
                slot = free_slots[free_n]
            else:
                while True:
                    if vi >= vn:
                        vn = 0
                        for s in range(capacity):
                            st = last_use[s]
                            if vn == _VICTIM_BATCH and st >= vstamp[vn - 1]:
                                continue
                            p = vn if vn < _VICTIM_BATCH else vn - 1
                            while p > 0 and vstamp[p - 1] > st:
                                vstamp[p] = vstamp[p - 1]
                                vslot[p] = vslot[p - 1]
                                p -= 1
                            vstamp[p] = st
                            vslot[p] = s
                            if vn < _VICTIM_BATCH:
                                vn += 1
                        vi = 0
                    st = vstamp[vi]
                    vs = vslot[vi]
                    vi += 1
                    if st != _FREE_STAMP and last_use[vs] == st:
                        slot = vs
                        break
                if dirty[slot]:
                    wbacks += 1
                    dirty[slot] = False
                soc[cid_of_slot[slot]] = -1
                cid_of_slot[slot] = -1
                last_use[slot] = _FREE_STAMP
                n_res -= 1
            page_of_slot[slot] = pages[i]
            last_use[slot] = clock
            clock += 1
            dirty[slot] = stores[i]
            soc[cid] = slot
            cid_of_slot[slot] = cid
            n_res += 1
        state[0] = clock
        state[1] = n_res
        state[2] = free_n
        state[3] = miss_n
        state[4] = hits
        state[5] = misses
        state[6] = wbacks

    @njit(cache=False)
    def _fleet_hit_walk(lanes, n_lanes, trace_row, soc, cids, stores,
                        last_use, dirty, undemanded, pos, limit, clock,
                        n_und, pf_hits, hits, accesses):
        for k in range(n_lanes):
            t = lanes[k]
            r = trace_row[t]
            ck = clock[t]
            nu = n_und[t]
            ph = pf_hits[t]
            h = hits[t]
            start = pos[t]
            stop = limit[t]
            i = start
            while i < stop:
                slot = soc[t, cids[r, i]]
                if slot < 0:
                    break
                last_use[t, slot] = ck
                ck += 1
                if stores[r, i]:
                    dirty[t, slot] = True
                if nu and undemanded[t, slot]:
                    undemanded[t, slot] = False
                    nu -= 1
                    ph += 1
                h += 1
                i += 1
            accesses[t] += i - start
            pos[t] = i
            clock[t] = ck
            n_und[t] = nu
            pf_hits[t] = ph
            hits[t] = h

    @njit(cache=False)
    def _fleet_null_run(lanes, n_lanes, trace_row, soc, cids, pages, stores,
                        page_of_slot, last_use, dirty, cid_of_slot,
                        capacity, n_len, pos, clock, n_resident, hits,
                        demand_misses, writebacks, accesses, miss_idx,
                        miss_n, record):
        vstamp = np.empty(_VICTIM_BATCH, dtype=np.int64)
        vslot = np.empty(_VICTIM_BATCH, dtype=np.int64)
        for k in range(n_lanes):
            t = lanes[k]
            r = trace_row[t]
            cap = capacity[t]
            ck = clock[t]
            n_res = n_resident[t]
            mn = miss_n[t]
            h = hits[t]
            misses = demand_misses[t]
            wbacks = writebacks[t]
            vn = 0
            vi = 0
            start = pos[t]
            stop = n_len[t]
            for i in range(start, stop):
                cid = cids[r, i]
                slot = soc[t, cid]
                if slot >= 0:
                    last_use[t, slot] = ck
                    ck += 1
                    if stores[r, i]:
                        dirty[t, slot] = True
                    h += 1
                    continue
                misses += 1
                if record:
                    miss_idx[t, mn] = i
                mn += 1
                if n_res < cap:
                    slot = n_res
                else:
                    while True:
                        if vi >= vn:
                            vn = 0
                            for s in range(cap):
                                st = last_use[t, s]
                                if vn == _VICTIM_BATCH \
                                        and st >= vstamp[vn - 1]:
                                    continue
                                p = vn if vn < _VICTIM_BATCH else vn - 1
                                while p > 0 and vstamp[p - 1] > st:
                                    vstamp[p] = vstamp[p - 1]
                                    vslot[p] = vslot[p - 1]
                                    p -= 1
                                vstamp[p] = st
                                vslot[p] = s
                                if vn < _VICTIM_BATCH:
                                    vn += 1
                            vi = 0
                        st = vstamp[vi]
                        vs = vslot[vi]
                        vi += 1
                        if st != _FREE_STAMP and last_use[t, vs] == st:
                            slot = vs
                            break
                    if dirty[t, slot]:
                        wbacks += 1
                        dirty[t, slot] = False
                    soc[t, cid_of_slot[t, slot]] = -1
                    cid_of_slot[t, slot] = -1
                    last_use[t, slot] = _FREE_STAMP
                    n_res -= 1
                page_of_slot[t, slot] = pages[r, i]
                last_use[t, slot] = ck
                ck += 1
                dirty[t, slot] = stores[r, i]
                soc[t, cid] = slot
                cid_of_slot[t, slot] = cid
                n_res += 1
            accesses[t] += stop - start
            pos[t] = stop
            clock[t] = ck
            n_resident[t] = n_res
            miss_n[t] = mn
            hits[t] = h
            demand_misses[t] = misses
            writebacks[t] = wbacks

    @njit(cache=False)
    def _pre_accumulate(pre, rec_pad, prev_active, scale, n, counts):
        counts[:] = 0
        for r in range(prev_active.size):
            row = prev_active[r]
            for t in range(rec_pad.shape[1]):
                counts[rec_pad[row, t]] += 1
        for j in range(n):
            pre[j] += scale * counts[j]

    @njit(cache=False)
    def _readout_sparse(w_flat, flat, cols, out):
        for t in range(flat.size):
            out[cols[t]] += w_flat[flat[t]]

    @njit(cache=False)
    def _learn_apply(w_flat, flat, delta, wm):
        for t in range(flat.size):
            v = w_flat[flat[t]] + delta[t]
            if v > wm:
                v = wm
            if v < -wm:
                v = -wm
            w_flat[flat[t]] = v

    @njit(cache=False)
    def _punish_apply(w_flat, flat, lr, wm):
        for t in range(flat.size):
            v = w_flat[flat[t]] - lr
            if v < -wm:
                v = -wm
            w_flat[flat[t]] = v


class NumbaSimKernels:
    """Simulator kernel bundle; same interface as ``CSimKernels``."""

    name = "numba"

    def first_nonresident(self, soc: np.ndarray, cids: np.ndarray,
                          start: int, stop: int) -> int:
        return int(_first_nonresident(soc, cids, start, stop))

    def miss_run_length(self, soc: np.ndarray, cids: np.ndarray, start: int,
                        limit: int, scratch: np.ndarray, stamp: int) -> int:
        return int(_miss_run_length(soc, cids, start, limit, scratch, stamp))

    def bind_hit_walk(self, *, soc: np.ndarray, cids: np.ndarray,
                      stores: np.ndarray, last_use: np.ndarray,
                      dirty: np.ndarray, undemanded: np.ndarray,
                      state: np.ndarray) -> Callable[[int, int], int]:
        def run(start: int, stop: int) -> int:
            return int(_hit_walk(soc, cids, stores, last_use, dirty,
                                 undemanded, start, stop, state))

        return run

    def bind_null_run(self, *, cids: np.ndarray, pages: np.ndarray,
                      stores: np.ndarray, soc: np.ndarray,
                      page_of_slot: np.ndarray, last_use: np.ndarray,
                      dirty: np.ndarray, cid_of_slot: np.ndarray,
                      free_slots: np.ndarray, capacity: int,
                      miss_idx: np.ndarray,
                      state: np.ndarray) -> Callable[[int, int, int], None]:
        def run(start: int, stop: int, record: int) -> None:
            _null_run(cids, pages, stores, soc, page_of_slot, last_use,
                      dirty, cid_of_slot, free_slots, capacity, start, stop,
                      miss_idx, record, state)

        return run

    def bind_fleet_hit_walk(self, *, lanes_buf: np.ndarray,
                            trace_row: np.ndarray, soc: np.ndarray,
                            cids: np.ndarray, stores: np.ndarray,
                            last_use: np.ndarray, dirty: np.ndarray,
                            undemanded: np.ndarray, pos: np.ndarray,
                            limit: np.ndarray, clock: np.ndarray,
                            n_undemanded: np.ndarray,
                            prefetch_hits: np.ndarray, hits: np.ndarray,
                            accesses: np.ndarray) -> Callable[[int], None]:
        def run(n_lanes: int) -> None:
            _fleet_hit_walk(lanes_buf, n_lanes, trace_row, soc, cids,
                            stores, last_use, dirty, undemanded, pos, limit,
                            clock, n_undemanded, prefetch_hits, hits,
                            accesses)

        return run

    def bind_fleet_null_run(self, *, lanes_buf: np.ndarray,
                            trace_row: np.ndarray, soc: np.ndarray,
                            cids: np.ndarray, pages: np.ndarray,
                            stores: np.ndarray, page_of_slot: np.ndarray,
                            last_use: np.ndarray, dirty: np.ndarray,
                            cid_of_slot: np.ndarray, capacity: np.ndarray,
                            n_len: np.ndarray, pos: np.ndarray,
                            clock: np.ndarray, n_resident: np.ndarray,
                            hits: np.ndarray, demand_misses: np.ndarray,
                            writebacks: np.ndarray, accesses: np.ndarray,
                            miss_idx: np.ndarray,
                            miss_n: np.ndarray) -> Callable[[int, int], None]:
        def run(n_lanes: int, record: int) -> None:
            _fleet_null_run(lanes_buf, n_lanes, trace_row, soc, cids, pages,
                            stores, page_of_slot, last_use, dirty,
                            cid_of_slot, capacity, n_len, pos, clock,
                            n_resident, hits, demand_misses, writebacks,
                            accesses, miss_idx, miss_n, record)

        return run


class NumbaHebbianKernels:
    """Hebbian kernel bundle; same interface as ``CHebbianKernels``."""

    name = "numba"

    def __init__(self, rec_pad: np.ndarray, hidden_dim: int,
                 vocab_size: int) -> None:
        self._rec_pad = np.ascontiguousarray(rec_pad, dtype=np.int64)
        self._n = hidden_dim
        self._vocab = vocab_size
        self._counts = np.zeros(hidden_dim + 1, dtype=np.int64)

    def pre_accumulate(self, pre: np.ndarray, prev_active: np.ndarray,
                       scale: float) -> None:
        active = np.ascontiguousarray(prev_active, dtype=np.int64)
        _pre_accumulate(pre, self._rec_pad, active, scale, self._n,
                        self._counts)

    def readout_sparse(self, w_flat: np.ndarray, flat: np.ndarray,
                       cols: np.ndarray) -> np.ndarray:
        out = np.zeros(self._vocab)
        _readout_sparse(w_flat, np.ascontiguousarray(flat, dtype=np.int64),
                        np.ascontiguousarray(cols, dtype=np.int64), out)
        return out

    def learn_apply(self, w_flat: np.ndarray, flat: np.ndarray,
                    delta: np.ndarray, wm: float) -> None:
        _learn_apply(w_flat, np.ascontiguousarray(flat, dtype=np.int64),
                     delta, wm)

    def punish_apply(self, w_flat: np.ndarray, flat: np.ndarray, lr: float,
                     wm: float) -> None:
        _punish_apply(w_flat, np.ascontiguousarray(flat, dtype=np.int64),
                      lr, wm)


def make_sim_kernels() -> NumbaSimKernels:
    if not _AVAILABLE:
        raise RuntimeError("numba backend is not available")
    return NumbaSimKernels()


def make_hebbian_kernels(*, rec_pad: np.ndarray, hidden_dim: int,
                         vocab_size: int) -> NumbaHebbianKernels:
    if not _AVAILABLE:
        raise RuntimeError("numba backend is not available")
    return NumbaHebbianKernels(rec_pad, hidden_dim, vocab_size)
