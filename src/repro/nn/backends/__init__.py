"""Backend registry for the compiled hot-path kernels (PR 6).

The bit-identity perf campaign (PRs 1-4) bottomed out at numpy's
~1-3.5 µs-per-call dispatch floor: for the ~200-element arrays the
Hebbian readout and the span-batched simulator operate on, Python/numpy
call overhead — not arithmetic — bounds throughput.  This package breaks
that floor with interchangeable *backends* for the hot kernels:

``numpy``
    The always-available reference: the existing vectorized code paths,
    untouched.  Every other backend is defined (and tested) as
    bit-identical to it.
``numba``
    ``@njit`` versions of the kernels, available when the optional
    ``repro[numba]`` extra is installed.  Exercised by the dedicated CI
    leg; silently skipped everywhere else.
``c``
    The same kernels as a small C file compiled on first use with the
    system C compiler (``cc``/``gcc``) and loaded through ``cffi``'s ABI
    mode.  Compiled with ``-fno-fast-math -ffp-contract=off`` so the
    floating-point arithmetic is exactly numpy's (no FMA contraction, no
    reassociation).
``int8``
    A *serving* mode for the Hebbian readout: scores are read from an
    int8-quantized mirror of the readout weights while training stays
    float64.  This is the one backend that is accuracy-bounded rather
    than bit-identical (see ``nn/quantization.py``); it is never chosen
    by ``auto``.

Selection is by name or ``"auto"`` (prefer ``numba``, then ``c``, else
fall back to ``numpy`` with a one-time warning).  Explicitly requesting
an unavailable backend raises :class:`BackendUnavailableError` — silent
substitution is reserved for ``auto``.

The registry also carries the *ambient default* that ``"auto"`` resolves
to (:func:`set_default_backend`).  The harness plumbs a grid-level
backend choice through this ambient state rather than through cell
specs: backends are bit-identical by contract, so the same spec must map
to the same cache entry regardless of which backend computed it.
"""

from __future__ import annotations

import warnings
from typing import Any

import numpy as np

__all__ = [
    "BackendUnavailableError",
    "NN_BACKENDS",
    "SIM_BACKENDS",
    "available_backends",
    "backend_available",
    "get_default_backend",
    "hebbian_kernels",
    "resolve_backend",
    "set_default_backend",
    "sim_kernels",
]

#: Legal backend names per domain.  ``int8`` only reinterprets the
#: Hebbian serving path, so it has no simulator meaning.
NN_BACKENDS = ("numpy", "numba", "c", "int8")
SIM_BACKENDS = ("numpy", "numba", "c")

#: ``auto`` preference order among the compiled backends.
_AUTO_ORDER = ("numba", "c")

#: Backends force-disabled for this process (test/CI hook: the
#: ``REPRO_DISABLE_COMPILED`` conftest fixture fills this to prove the
#: numpy fallback on machines that do have a compiler).
_disabled: set[str] = set()  # repro-lint: zone=init

_default_backend = "auto"
_warned_fallback = False


class BackendUnavailableError(RuntimeError):
    """An explicitly requested backend cannot run in this environment."""


def _compiled_module(name: str) -> Any:
    if name == "numba":
        from . import numba_backend
        return numba_backend
    if name == "c":
        from . import c_backend
        return c_backend
    raise ValueError(f"no compiled backend named {name!r}")


def _domain_names(domain: str) -> tuple[str, ...]:
    if domain == "nn":
        return NN_BACKENDS
    if domain == "sim":
        return SIM_BACKENDS
    raise ValueError(f"unknown backend domain {domain!r}")


def backend_available(name: str) -> bool:
    """Whether ``name`` can actually run here (imports/compiles cleanly)."""
    if name in _disabled:
        return False
    if name in ("numpy", "int8"):
        return True
    if name in ("numba", "c"):
        return bool(_compiled_module(name).available())
    return False


def available_backends(domain: str = "sim") -> tuple[str, ...]:
    """The usable backend names for ``domain``, in declaration order."""
    return tuple(name for name in _domain_names(domain)
                 if backend_available(name))


def set_default_backend(name: str) -> None:  # repro-lint: zone=init
    """Set the process-wide backend that ``"auto"`` resolves to.

    ``"auto"`` (the initial value) restores availability-based selection.
    A concrete name must be available now — failing early here beats a
    confusing :class:`BackendUnavailableError` from deep inside a grid
    worker later.
    """
    global _default_backend
    if name != "auto":
        if name not in SIM_BACKENDS:
            raise ValueError(
                f"unknown default backend {name!r}; expected one of "
                f"{('auto',) + SIM_BACKENDS}")
        if not backend_available(name):
            raise BackendUnavailableError(
                f"cannot set default backend {name!r}: not available in "
                "this environment")
    _default_backend = name


def get_default_backend() -> str:
    return _default_backend


def _warn_fallback() -> None:  # repro-lint: zone=init
    global _warned_fallback
    if _warned_fallback:
        return
    _warned_fallback = True
    warnings.warn(
        "no compiled kernel backend is available; falling back to the "
        "pure-numpy reference kernels (install the optional 'numba' extra "
        "or make a C compiler available to remove the dispatch floor)",
        RuntimeWarning, stacklevel=4)


def resolve_backend(name: str = "auto", *, domain: str = "sim") -> str:
    """Resolve a requested backend name to a concrete available one.

    ``"auto"`` resolves to the ambient default if one was set, else to
    the first available compiled backend, else to ``"numpy"`` (with a
    one-time :class:`RuntimeWarning`).  Explicit names must exist for the
    domain and be available, or this raises — silently substituting a
    different backend than the one the caller pinned would defeat the
    point of pinning.
    """
    names = _domain_names(domain)
    if name == "auto":
        ambient = _default_backend
        if ambient != "auto":
            return ambient
        for candidate in _AUTO_ORDER:
            if backend_available(candidate):
                return candidate
        _warn_fallback()
        return "numpy"
    if name not in names:
        raise ValueError(
            f"unknown backend {name!r} for domain {domain!r}; expected "
            f"one of {('auto',) + names}")
    if not backend_available(name):
        raise BackendUnavailableError(
            f"backend {name!r} was requested explicitly but is not "
            "available in this environment (install the 'numba' extra for "
            "numba, or ensure a C compiler is on PATH for 'c'); "
            "backend='auto' falls back to numpy instead of raising")
    return name


def hebbian_kernels(name: str, *, rec_pad: np.ndarray, hidden_dim: int,
                    vocab_size: int) -> Any | None:
    """Compiled kernel bundle for one Hebbian network, or None.

    ``None`` means "use the inline numpy code" — both the ``numpy``
    reference and the ``int8`` serving mode run the numpy arithmetic.
    """
    if name in ("numpy", "int8"):
        return None
    return _compiled_module(name).make_hebbian_kernels(
        rec_pad=rec_pad, hidden_dim=hidden_dim, vocab_size=vocab_size)


def sim_kernels(name: str) -> Any | None:
    """Compiled simulator kernel bundle, or None for the numpy engines."""
    if name == "numpy":
        return None
    return _compiled_module(name).make_sim_kernels()
