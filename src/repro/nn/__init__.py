"""Neural substrates: the LSTM baseline and the sparse Hebbian network."""

from .base import SequenceModel, evaluate_sequence_probs
from .costs import (
    DEFAULT_LATENCY_MODEL,
    PAPER_ANCHORS_US,
    LatencyModel,
    OpCount,
    hebbian_inference_ops,
    hebbian_parameter_count,
    hebbian_training_ops,
    lstm_inference_ops,
    lstm_training_ops,
)
from .hebbian import HebbianConfig, SparseHebbianNetwork
from .hebbian_fleet import HebbianFleet
from .layers import SGD, cross_entropy, glorot, sigmoid, softmax
from .lstm import LSTM, LSTMConfig, OnlineLSTM
from .quantization import QuantizedTensor, quantization_error, quantize_lstm

__all__ = [
    "SequenceModel",
    "evaluate_sequence_probs",
    "DEFAULT_LATENCY_MODEL",
    "PAPER_ANCHORS_US",
    "LatencyModel",
    "OpCount",
    "hebbian_inference_ops",
    "hebbian_parameter_count",
    "hebbian_training_ops",
    "lstm_inference_ops",
    "lstm_training_ops",
    "HebbianConfig",
    "HebbianFleet",
    "SparseHebbianNetwork",
    "SGD",
    "cross_entropy",
    "glorot",
    "sigmoid",
    "softmax",
    "LSTM",
    "LSTMConfig",
    "OnlineLSTM",
    "QuantizedTensor",
    "quantization_error",
    "quantize_lstm",
]
